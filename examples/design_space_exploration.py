#!/usr/bin/env python3
"""Design-space exploration with the reliability-aware synthesis flow.

Reproduces the engineering story of the paper's Section V on the 32x32
FIFO:

1. sweep the number of scan chains for CRC-16 and Hamming(7,4)
   monitoring and print the Table I / Table II style cost rows next to
   the paper's published numbers;
2. sweep the Hamming code family (Table III): redundancy versus area
   overhead versus correction capability;
3. drive the reliability-aware synthesizer (Fig. 4) from a textual
   configuration file with an area cap and a latency target, and show
   which configuration it picks.

Run with::

    python examples/design_space_exploration.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FlowConfig, ReliabilityAwareSynthesizer, SyncFIFO
from repro.analysis import paper_data
from repro.analysis.tables import format_family_table, format_measured_vs_paper
from repro.analysis.tradeoff import (
    table1_crc16,
    table2_hamming74,
    table3_hamming_family,
)
from repro.flow.report import format_synthesis_report


def main() -> None:
    fifo = SyncFIFO(32, 32, name="fifo32x32")

    # Part 1: the Table I / Table II sweeps.
    print(format_measured_vs_paper(
        table1_crc16(circuit=fifo), paper_data.TABLE1_CRC16,
        title="Table I -- CRC-16 monitoring cost vs scan-chain count"))
    print()
    print(format_measured_vs_paper(
        table2_hamming74(circuit=fifo), paper_data.TABLE2_HAMMING74,
        title="Table II -- Hamming(7,4) monitoring cost vs scan-chain count"))
    print()

    # Part 2: the Hamming family (Table III).
    print(format_family_table(
        table3_hamming_family(circuit=fifo),
        paper_data.TABLE3_HAMMING_FAMILY,
        title="Table III -- Hamming family: redundancy vs overhead vs "
              "correction capability"))
    print()

    # Part 3: file-driven reliability-aware synthesis (Fig. 4).
    config_text = "\n".join([
        "# quality configuration for the reliability-aware synthesizer",
        "codes = hamming(7,4), crc16",
        "num_chains = auto",
        "candidate_chains = 4, 8, 16, 40, 80",
        "test_width = 4",
        "clock_mhz = 100",
        "target = energy",
        "max_latency_ns = 700",
        "",
    ])
    with tempfile.NamedTemporaryFile("w", suffix=".cfg", delete=False) as fh:
        fh.write(config_text)
        config_path = fh.name
    print("flow configuration file:")
    print(config_text)

    config = FlowConfig.load(config_path)
    synthesizer = ReliabilityAwareSynthesizer(config)
    result = synthesizer.synthesize(fifo)
    print(format_synthesis_report(
        result, title="reliability-aware synthesis result (energy target, "
                      "latency cap 700 ns)"))


if __name__ == "__main__":
    main()
