#!/usr/bin/env python3
"""Rush-current physics and the case for state monitoring.

The failure mechanism behind the paper: when the sleep transistors turn
back on, the discharged domain capacitance draws a rush current whose
step response (an RLC transient) produces a voltage droop on the shared
supply rails -- and that droop can flip the always-on retention latches.

This example:

1. prints the wake-up current/droop waveform for the paper-scale FIFO
   domain and shows how staggered switch turn-on (the mitigation of the
   paper's references [7] and [8]) trades peak droop against wake-up
   time;
2. converts the droop into expected retention upsets for latches of
   different robustness;
3. runs droop-driven sleep/wake cycles on a protected and an
   unprotected design to show that mitigation reduces, but only
   monitoring *repairs*, the resulting corruption.

Run with::

    python examples/rush_current_analysis.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ProtectedDesign
from repro.circuit.generators import make_random_state_circuit
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters, RushCurrentModel


def main() -> None:
    rlc = RLCParameters(vdd=1.2, resistance=2.0, inductance=1e-9,
                        capacitance=1040 * 0.2e-12)

    print("wake-up transient vs number of sleep-transistor turn-on stages")
    print("stages | peak current A | peak droop V | settle time ns")
    print("-" * 58)
    for stages in (1, 2, 4, 8, 16):
        model = RushCurrentModel(rlc, num_switch_stages=stages)
        print(f"{stages:6d} | {model.peak_current():14.3f} "
              f"| {model.peak_droop():12.3f} "
              f"| {model.settle_time() * stages * 1e9:14.1f}")

    print("\nexpected retention upsets per wake-up (1040 latches)")
    print("latch margin V | 1 stage | 4 stages | 16 stages")
    print("-" * 50)
    for margin in (0.05, 0.10, 0.15, 0.25):
        upset = RetentionUpsetModel(nominal_margin=margin)
        row = [f"{margin:14.2f}"]
        for stages in (1, 4, 16):
            droop = RushCurrentModel(rlc, num_switch_stages=stages).peak_droop()
            row.append(f"{upset.expected_upsets(1040, droop):8.1f}")
        print(" | ".join(row))

    print("\ndroop-driven sleep/wake cycles (weak latches, margin 0.10 V)")
    upset_model = RetentionUpsetModel(nominal_margin=0.10, slope=0.02,
                                      seed=99)
    protected_circuit = make_random_state_circuit(512, seed=5,
                                                  name="protected_block")
    unprotected_circuit = make_random_state_circuit(512, seed=5,
                                                    name="unprotected_block")
    protected = ProtectedDesign(protected_circuit,
                                codes=["hamming(7,4)", "crc16"],
                                num_chains=32, rlc=rlc,
                                upset_model=upset_model)
    unprotected = ProtectedDesign(unprotected_circuit,
                                  codes=["hamming(7,4)", "crc16"],
                                  num_chains=32, rlc=rlc,
                                  upset_model=RetentionUpsetModel(
                                      nominal_margin=0.10, slope=0.02,
                                      seed=99))

    print("cycle | upsets | monitored: detected/intact | "
          "unmonitored: silent corruption")
    for cycle in range(5):
        monitored = protected.sleep_wake_cycle()
        baseline = unprotected.unprotected_sleep_wake_cycle()
        print(f"{cycle:5d} | {monitored.injected_errors:6d} | "
              f"{str(monitored.detected):>9s}/{str(monitored.state_intact):<6s}"
              f"     | {baseline.silent_corruption}")

    print("\ntakeaway: staggering shrinks the droop (fewer upsets), but any "
          "upset that still occurs is silent without monitoring; the "
          "scan-based monitor detects every corrupted wake-up and repairs "
          "the single-bit ones.")


if __name__ == "__main__":
    main()
