#!/usr/bin/env python3
"""Quickstart: protect a power-gated FIFO with scan-based state monitoring.

This walks through the core API in five steps:

1. build the circuit to protect (the paper's 32x32 FIFO);
2. wrap it in a :class:`repro.ProtectedDesign` -- this inserts the scan
   chains, the monitoring blocks, the error correction block and the
   monitored power-gating controller;
3. run a clean sleep/wake cycle and confirm the state survives;
4. inject a retention-latch upset during sleep and watch the decode
   pass detect and repair it;
5. print the cost report (area overhead, encode/decode power, latency
   and energy) for this configuration.

Run with::

    python examples/quickstart.py
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ProtectedDesign, SyncFIFO
from repro.faults.patterns import single_error_pattern


def main() -> None:
    # Step 1: the circuit under protection -- the paper's case study.
    fifo = SyncFIFO(width=32, depth=32, name="fifo32x32")
    print(f"circuit: {fifo.name} with {fifo.num_registers} registers")

    # Fill it with some data so there is real state to protect.
    rng = random.Random(2010)
    payload = [rng.getrandbits(32) for _ in range(16)]
    for word in payload:
        fifo.push_int(word)

    # Step 2: the protected design.  80 chains x 13 flops is the paper's
    # FPGA validation configuration; Hamming(7,4) corrects single errors
    # and CRC-16 verifies the corrected state.
    design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                             num_chains=80)
    print(f"protected: {design!r}")
    print(f"  encode/decode latency: "
          f"{design.config.encode_latency_ns:.0f} ns per pass")

    # Step 3: a clean sleep/wake cycle.
    outcome = design.sleep_wake_cycle()
    print("\nclean sleep/wake cycle:")
    print(f"  errors present : {outcome.injected_errors}")
    print(f"  detected       : {outcome.detected}")
    print(f"  state intact   : {outcome.state_intact}")
    print(f"  error code     : {outcome.error_code.value}")

    # Step 4: inject a single retention upset while the domain sleeps.
    pattern = single_error_pattern(design.num_chains, design.chain_length,
                                   random.Random(7))
    outcome = design.sleep_wake_cycle(injection=pattern)
    print("\nsleep/wake cycle with one injected retention upset:")
    print(f"  errors injected : {outcome.injected_errors}")
    print(f"  detected        : {outcome.detected}")
    print(f"  corrections     : {outcome.corrections_applied}")
    print(f"  state intact    : {outcome.state_intact}")
    print(f"  error code      : {outcome.error_code.value}")

    # The FIFO still delivers the original data.
    survived = all(fifo.pop_int() == word for word in payload)
    print(f"  FIFO contents survived: {survived}")

    # Step 5: what did the protection cost?
    cost = design.cost_report()
    print("\ncost report (120 nm model, 100 MHz scan clock):")
    print(f"  total area        : {cost.area_total_um2:.0f} um^2")
    print(f"  area overhead     : {cost.area_overhead_percent:.1f} %")
    print(f"  encode power      : {cost.encode_cost.power_mw:.2f} mW")
    print(f"  decode power      : {cost.decode_cost.power_mw:.2f} mW")
    print(f"  encode latency    : {cost.latency_ns:.0f} ns")
    print(f"  encode energy     : {cost.encode_cost.energy_nj:.2f} nJ")


if __name__ == "__main__":
    main()
