#!/usr/bin/env python3
"""Emit synthesizable Verilog for a protected design.

The paper's flow ends in a synthesizable netlist (the FPGA validation
performs scan insertion in RTL).  This example builds the paper's
protected FIFO configuration, generates the Verilog for its monitoring
blocks, error correction path and monitored power-gating controller,
writes the files to ``build/rtl/`` and prints a trace of one monitored
sleep/wake cycle so the generated control sequence can be compared
against the simulated one.

Run with::

    python examples/emit_rtl.py [output_dir]
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ProtectedDesign, SyncFIFO
from repro.core.trace import trace_cycles
from repro.faults.patterns import single_error_pattern
from repro.rtl import emit_rtl_package


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("build/rtl")

    fifo = SyncFIFO(32, 32, name="fifo32x32")
    design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                             num_chains=80)

    package = emit_rtl_package(design)
    target = package.write_to(output_dir)
    print(f"wrote {len(package.files)} files "
          f"({package.total_lines} lines of RTL) to {target}/")
    for name in package.file_names:
        print(f"  {name}")

    print("\nintegration note:")
    print(package.files["INTEGRATION.MD".lower()
                        if "integration.md" in package.files
                        else "INTEGRATION.md"])

    # Trace one monitored sleep/wake cycle with a single injected error
    # so the control sequence of the generated FSM can be followed.
    pattern = single_error_pattern(design.num_chains, design.chain_length,
                                   random.Random(1))
    outcome = design.sleep_wake_cycle(injection=pattern)
    log = trace_cycles(design, [outcome])
    print(log.render())


if __name__ == "__main__":
    main()
