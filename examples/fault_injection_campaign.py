#!/usr/bin/env python3
"""Reproduce the paper's FPGA validation campaign in software (Section IV).

Builds the Fig. 8 test bench -- a protected FIFO (FIFO_A), an error-free
reference FIFO (FIFO_B), a random stimulus generator, a comparator and
an event counter -- and runs the two campaigns the paper reports:

* single-error injection: one random flip per sleep/wake sequence,
  expected to be detected and corrected every time;
* clustered multi-error injection: a burst per sequence, expected to be
  detected every time but (almost) never corrected by Hamming(7,4).

Run with::

    python examples/fault_injection_campaign.py [num_sequences] [num_workers]
    python examples/fault_injection_campaign.py [num_sequences] [n] --threads
    python examples/fault_injection_campaign.py [num_sequences] --batched
    python examples/fault_injection_campaign.py [num_sequences] --simd
    python examples/fault_injection_campaign.py [num_sequences] --array

With ``num_workers > 1`` both campaigns are submitted as jobs of one
:class:`~repro.campaigns.scheduler.CampaignScheduler` and run
concurrently, fair-share, over a single shared worker pool (the path
toward the paper's 10^8-sequence scale): O(1)-memory counter
statistics, per-job progress with live throughput/ETA, and results
that are bit-identical for any worker count and executor kind
(``--threads`` swaps the process pool for a thread pool).  With
``--batched`` they run on the bit-plane batched engine
(:mod:`repro.engines.bitplane`), which simulates 256 sequences per
pass; with ``--simd`` on the numpy word-packed SIMD engine
(:mod:`repro.engines.simd`), whose fully vectorised decode keeps that
throughput even when every sequence carries errors -- exactly the
regime of the clustered multi-error experiment below.  ``--array``
additionally switches the campaign bookkeeping to the columnar summary
path (vectorised pattern sampling, ndarray counter ingestion -- see
the README's "Campaign throughput guide"), the fastest full-cycle
configuration and the target of the profiling recipes.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ProtectedDesign, SyncFIFO
from repro.campaigns import CampaignScheduler, FIFOValidationCampaignTask
from repro.validation.campaign import (
    run_multiple_error_campaign,
    run_sharded_multiple_error_campaign,
    run_sharded_single_error_campaign,
    run_single_error_campaign,
)
from repro.validation.testbench import FIFOTestbench


def progress_printer(label: str):
    """A per-job progress callback printing throughput and ETA.

    Both estimates come straight off :class:`~repro.campaigns.runner.\
CampaignProgress` -- computed in the parent process, restored
    checkpoint chunks excluded from the rate.
    """
    def progress(event):
        eta = event.eta_seconds
        eta_text = "--" if eta is None else f"{eta:5.1f}s"
        print(f"  [{label}] {event.sequences_completed}/"
              f"{event.total_sequences} sequences  "
              f"{event.sequences_per_second:8.1f} seq/s  eta {eta_text}",
              flush=True)
    return progress


def main_sharded(num_sequences: int, num_workers: int,
                 executor: str = "process") -> None:
    """Both campaigns as concurrent jobs of one CampaignScheduler."""
    print(f"running {num_sequences} sequences per campaign, both "
          f"campaigns interleaved fair-share over one shared "
          f"{executor}-pool of {num_workers} workers (packed engine, "
          f"streaming stats)\n")
    scheduler = CampaignScheduler(executor=executor,
                                  num_workers=num_workers)
    common = dict(width=32, depth=32, num_chains=80,
                  words_per_sequence=16, engine="packed")
    single_job = scheduler.submit(
        FIFOValidationCampaignTask(pattern="single", **common),
        num_sequences, seed=20100308,
        progress_callback=progress_printer("single"))
    multi_job = scheduler.submit(
        FIFOValidationCampaignTask(pattern="burst", burst_size=4, **common),
        num_sequences, seed=20100308,
        progress_callback=progress_printer("burst"))
    scheduler.run()

    print()
    print("=" * 60)
    print("experiment 1: single error per test sequence (scheduled)")
    print("=" * 60)
    print(single_job.result.summary())

    print()
    print("=" * 60)
    print("experiment 2: clustered multi-bit errors (scheduled)")
    print("=" * 60)
    print(multi_job.result.summary())

    # The scheduler memoizes merged results: resubmitting the same
    # campaign (task fingerprint, seed, size) is served from cache.
    rerun = scheduler.submit(
        FIFOValidationCampaignTask(pattern="single", **common),
        num_sequences, seed=20100308)
    assert rerun.from_cache and rerun.result == single_job.result
    print("\nresubmitted the single-error campaign: served from the "
          "scheduler's result cache, no chunks executed")


def main_batched(num_sequences: int, num_workers: int = 1,
                 engine: str = "batched",
                 sampler: str = "scalar") -> None:
    """The same two campaigns on a batch engine (bit-plane or SIMD)."""
    batch = min(1024 if sampler == "array" else 256, num_sequences)
    mode = " + columnar summary path" if sampler == "array" else ""
    print(f"running {num_sequences} sequences per campaign on the "
          f"{engine} engine{mode} ({batch} sequences per pass, "
          f"{num_workers} worker(s))\n")
    for title, runner in (
            ("single error per test sequence",
             run_sharded_single_error_campaign),
            ("clustered multi-bit errors",
             lambda n, **kw: run_sharded_multiple_error_campaign(
                 n, burst_size=4, clustered=True, **kw))):
        print("=" * 60)
        print(f"experiment: {title} ({engine}{mode})")
        print("=" * 60)
        result = runner(num_sequences, width=32, depth=32, num_chains=80,
                        words_per_sequence=16, engine=engine,
                        batch_size=batch, sampler=sampler,
                        num_workers=num_workers)
        print(result.summary())
        print()


def main() -> None:
    flags = [a for a in sys.argv[1:] if a.startswith("--")]
    unknown = [f for f in flags if f not in ("--batched", "--simd",
                                             "--array", "--threads")]
    if unknown:
        raise SystemExit(f"unknown option(s): {', '.join(unknown)} "
                         f"(supported: --batched, --simd, --array, "
                         f"--threads)")
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    num_sequences = int(args[0]) if args else 50
    num_workers = int(args[1]) if len(args) > 1 else 1
    if "--array" in flags:
        main_batched(num_sequences, num_workers, engine="simd",
                     sampler="array")
        return
    if "--simd" in flags:
        main_batched(num_sequences, num_workers, engine="simd")
        return
    if "--batched" in flags:
        main_batched(num_sequences, num_workers)
        return
    if num_workers > 1 or "--threads" in flags:
        main_sharded(num_sequences, num_workers,
                     executor="thread" if "--threads" in flags
                     else "process")
        return

    # FIFO_A: the paper's 32x32 FIFO in the 80-chain configuration,
    # with Hamming(7,4) correction and CRC-16 verification.
    fifo_a = SyncFIFO(32, 32, name="fifo_a")
    design = ProtectedDesign(fifo_a, codes=["hamming(7,4)", "crc16"],
                             num_chains=80)
    testbench = FIFOTestbench(design, seed=20100308, words_per_sequence=16)

    print(f"test bench: {design!r}")
    print(f"running {num_sequences} sequences per campaign\n")

    print("=" * 60)
    print("experiment 1: single error per test sequence")
    print("=" * 60)
    single = run_single_error_campaign(testbench,
                                       num_sequences=num_sequences)
    print(single.summary())
    print("paper result: all single errors detected and corrected; no "
          "mismatch reported by the comparator")

    print()
    print("=" * 60)
    print("experiment 2: clustered multi-bit errors per test sequence")
    print("=" * 60)
    multiple = run_multiple_error_campaign(testbench,
                                           num_sequences=num_sequences,
                                           burst_size=4, clustered=True)
    print(multiple.summary())
    print("paper result: none corrected (bursts defeat Hamming), but all "
          "accurately detected and reported")


if __name__ == "__main__":
    main()
