#!/usr/bin/env python3
"""Reproduce the paper's FPGA validation campaign in software (Section IV).

Builds the Fig. 8 test bench -- a protected FIFO (FIFO_A), an error-free
reference FIFO (FIFO_B), a random stimulus generator, a comparator and
an event counter -- and runs the two campaigns the paper reports:

* single-error injection: one random flip per sleep/wake sequence,
  expected to be detected and corrected every time;
* clustered multi-error injection: a burst per sequence, expected to be
  detected every time but (almost) never corrected by Hamming(7,4).

Run with::

    python examples/fault_injection_campaign.py [num_sequences] [num_workers]

With ``num_workers > 1`` the campaigns run through the sharded
streaming runner of :mod:`repro.campaigns` (the path toward the
paper's 10^8-sequence scale): multiprocessing workers, O(1)-memory
counter statistics, and results that are bit-identical for any worker
count.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ProtectedDesign, SyncFIFO
from repro.validation.campaign import (
    run_multiple_error_campaign,
    run_sharded_multiple_error_campaign,
    run_sharded_single_error_campaign,
    run_single_error_campaign,
)
from repro.validation.testbench import FIFOTestbench


def main_sharded(num_sequences: int, num_workers: int) -> None:
    """The same two campaigns, fanned out over worker processes."""
    print(f"running {num_sequences} sequences per campaign over "
          f"{num_workers} workers (packed engine, streaming stats)\n")

    def progress(event):
        print(f"  ... {event.sequences_completed}/{event.total_sequences} "
              f"sequences", flush=True)

    print("=" * 60)
    print("experiment 1: single error per test sequence (sharded)")
    print("=" * 60)
    single = run_sharded_single_error_campaign(
        num_sequences, width=32, depth=32, num_chains=80,
        words_per_sequence=16, engine="packed", num_workers=num_workers,
        progress_callback=progress)
    print(single.summary())

    print()
    print("=" * 60)
    print("experiment 2: clustered multi-bit errors (sharded)")
    print("=" * 60)
    multiple = run_sharded_multiple_error_campaign(
        num_sequences, burst_size=4, clustered=True, width=32, depth=32,
        num_chains=80, words_per_sequence=16, engine="packed",
        num_workers=num_workers, progress_callback=progress)
    print(multiple.summary())


def main() -> None:
    num_sequences = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    num_workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    if num_workers > 1:
        main_sharded(num_sequences, num_workers)
        return

    # FIFO_A: the paper's 32x32 FIFO in the 80-chain configuration,
    # with Hamming(7,4) correction and CRC-16 verification.
    fifo_a = SyncFIFO(32, 32, name="fifo_a")
    design = ProtectedDesign(fifo_a, codes=["hamming(7,4)", "crc16"],
                             num_chains=80)
    testbench = FIFOTestbench(design, seed=20100308, words_per_sequence=16)

    print(f"test bench: {design!r}")
    print(f"running {num_sequences} sequences per campaign\n")

    print("=" * 60)
    print("experiment 1: single error per test sequence")
    print("=" * 60)
    single = run_single_error_campaign(testbench,
                                       num_sequences=num_sequences)
    print(single.summary())
    print("paper result: all single errors detected and corrected; no "
          "mismatch reported by the comparator")

    print()
    print("=" * 60)
    print("experiment 2: clustered multi-bit errors per test sequence")
    print("=" * 60)
    multiple = run_multiple_error_campaign(testbench,
                                           num_sequences=num_sequences,
                                           burst_size=4, clustered=True)
    print(multiple.summary())
    print("paper result: none corrected (bursts defeat Hamming), but all "
          "accurately detected and reported")


if __name__ == "__main__":
    main()
