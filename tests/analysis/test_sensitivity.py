"""Tests for the sensitivity and break-even analyses."""

import pytest

from repro.analysis.sensitivity import (
    format_break_even_table,
    library_scaling_sensitivity,
    sleep_break_even,
)
from repro.circuit.generators import make_random_state_circuit

CIRCUIT = make_random_state_circuit(208, seed=31, name="sens208")


class TestLibraryScalingSensitivity:
    def test_orderings_hold_across_scalings(self):
        outcomes = library_scaling_sensitivity(circuit=CIRCUIT,
                                               num_chains=16)
        assert len(outcomes) == 4
        for outcome in outcomes:
            assert outcome.orderings_hold, outcome.scale_label

    def test_uniform_area_scaling_preserves_overhead_percent(self):
        nominal, scaled = library_scaling_sensitivity(
            scales=(("nominal", 1.0, 1.0), ("shrunk", 0.5, 1.0)),
            circuit=CIRCUIT, num_chains=16)
        # Overhead is a ratio of areas, so a uniform area scale cancels.
        assert scaled.crc_overhead_percent == pytest.approx(
            nominal.crc_overhead_percent, rel=1e-6)
        assert scaled.hamming_overhead_percent == pytest.approx(
            nominal.hamming_overhead_percent, rel=1e-6)

    def test_energy_scaling_does_not_change_power_ratio_much(self):
        nominal, scaled = library_scaling_sensitivity(
            scales=(("nominal", 1.0, 1.0), ("hot", 1.0, 2.0)),
            circuit=CIRCUIT, num_chains=16)
        assert scaled.power_ratio == pytest.approx(nominal.power_ratio,
                                                   rel=0.05)


class TestSleepBreakEven:
    def test_break_even_points_structure(self):
        points = sleep_break_even(codes=("crc16", "hamming(7,4)"),
                                  chain_counts=(4, 16), circuit=CIRCUIT)
        assert len(points) == 4
        for point in points:
            assert point.overhead_energy_nj > 0
            assert point.leakage_saved_mw > 0
            assert point.break_even_us > 0

    def test_more_chains_shorter_break_even(self):
        points = sleep_break_even(codes=("hamming(7,4)",),
                                  chain_counts=(4, 16), circuit=CIRCUIT)
        by_chains = {p.num_chains: p for p in points}
        # Shorter chains -> less encode/decode energy -> gating pays off
        # for shorter sleep intervals.
        assert (by_chains[16].break_even_us < by_chains[4].break_even_us)

    def test_crc_breaks_even_no_later_than_hamming(self):
        points = sleep_break_even(codes=("crc16", "hamming(7,4)"),
                                  chain_counts=(16,), circuit=CIRCUIT)
        by_code = {p.code: p for p in points}
        assert (by_code["crc16"].overhead_energy_nj
                <= by_code["hamming(7,4)"].overhead_energy_nj)

    def test_table_formatting(self):
        points = sleep_break_even(codes=("crc16",), chain_counts=(4,),
                                  circuit=CIRCUIT)
        text = format_break_even_table(points)
        assert "break-even" in text
        assert "crc16" in text
