"""Tests for the analysis sweeps (Tables I-III, Fig. 9, Fig. 10)."""

import pytest

from repro.analysis import paper_data
from repro.analysis.correction_capability import (
    analytic_correction_probability,
    correction_capability_curve,
    fig10_curves,
)
from repro.analysis.tables import (
    format_family_table,
    format_fig10_table,
    format_measured_vs_paper,
)
from repro.analysis.tradeoff import (
    fig9_series,
    sweep_code_configurations,
    table3_hamming_family,
)
from repro.circuit.generators import make_random_state_circuit
from repro.codes.hamming import HammingCode

# A small stand-in circuit keeps the sweep tests fast; the full-FIFO
# sweeps are exercised by the benchmark harness.
SMALL_CIRCUIT = make_random_state_circuit(208, seed=99, name="block208")
SMALL_SWEEP = (4, 8, 16)


class TestTradeoffSweeps:
    def test_sweep_produces_one_report_per_chain_count(self):
        reports = sweep_code_configurations("crc16", SMALL_SWEEP,
                                            circuit=SMALL_CIRCUIT)
        assert [r.config.num_chains for r in reports] == list(SMALL_SWEEP)

    def test_latency_inversely_proportional_to_chain_count(self):
        reports = sweep_code_configurations("crc16", (4, 8, 16),
                                            circuit=SMALL_CIRCUIT)
        latencies = [r.latency_ns for r in reports]
        assert latencies[0] == pytest.approx(2 * latencies[1], rel=0.01)
        assert latencies[1] == pytest.approx(2 * latencies[2], rel=0.01)

    def test_area_increases_and_energy_decreases_with_chains(self):
        for code in ("crc16", "hamming(7,4)"):
            reports = sweep_code_configurations(code, SMALL_SWEEP,
                                                circuit=SMALL_CIRCUIT)
            areas = [r.area_total_um2 for r in reports]
            energies = [r.encode_cost.energy_nj for r in reports]
            assert areas == sorted(areas)
            assert energies == sorted(energies, reverse=True)

    def test_hamming_overhead_larger_than_crc_everywhere(self):
        crc = sweep_code_configurations("crc16", SMALL_SWEEP,
                                        circuit=SMALL_CIRCUIT)
        ham = sweep_code_configurations("hamming(7,4)", SMALL_SWEEP,
                                        circuit=SMALL_CIRCUIT)
        for crc_row, ham_row in zip(crc, ham):
            assert (ham_row.area_overhead_percent
                    > crc_row.area_overhead_percent)
            assert ham_row.encode_cost.power_mw > crc_row.encode_cost.power_mw
            # Latency depends only on the chain length, not on the code.
            assert ham_row.latency_ns == pytest.approx(crc_row.latency_ns)

    def test_family_table_ordering(self):
        # The overhead-versus-capability ordering is a property of the
        # paper's register-dominated case study, so use a circuit of the
        # same size (1040 registers) with the paper's chain counts.
        circuit = make_random_state_circuit(1040, seed=7, name="block1040")
        rows = table3_hamming_family(circuit=circuit)
        overheads = [row.area_overhead_percent for row in rows]
        capabilities = [row.correction_capability_percent for row in rows]
        # Higher redundancy -> more overhead and more capability.
        assert overheads == sorted(overheads, reverse=True)
        assert capabilities == sorted(capabilities, reverse=True)

    def test_fig9_series_structure(self):
        series = fig9_series(SMALL_SWEEP, circuit=SMALL_CIRCUIT)
        assert set(series) == {"crc16", "hamming(7,4)"}
        for data in series.values():
            assert len(data["chains"]) == len(SMALL_SWEEP)
            assert len(data["latency_ns"]) == len(SMALL_SWEEP)
        # Both codes share the same latency series (Fig. 9(b) overlap).
        assert series["crc16"]["latency_ns"] == pytest.approx(
            series["hamming(7,4)"]["latency_ns"])


class TestCorrectionCapability:
    def test_single_error_always_corrected(self):
        curve = correction_capability_curve(HammingCode(7, 4),
                                            error_counts=(1,),
                                            sequences=200, seed=1)
        assert curve[0].corrected_fraction == 1.0

    def test_rate_decreases_with_more_errors(self):
        curve = correction_capability_curve(HammingCode(63, 57),
                                            error_counts=(1, 4, 10),
                                            sequences=500, seed=2)
        rates = [point.corrected_fraction for point in curve]
        assert rates[0] >= rates[1] >= rates[2]

    def test_smaller_codewords_correct_more(self):
        curves = fig10_curves(error_counts=(6,), sequences=500, seed=3)
        rate_74 = curves[(7, 4)][0].corrected_fraction
        rate_6357 = curves[(63, 57)][0].corrected_fraction
        assert rate_74 > rate_6357

    def test_monte_carlo_matches_analytic_expectation(self):
        code = HammingCode(15, 11)
        analytic = analytic_correction_probability(code, 1000, 5)
        curve = correction_capability_curve(code, error_counts=(5,),
                                            num_bits=1000, sequences=3000,
                                            seed=4)
        assert curve[0].corrected_fraction == pytest.approx(analytic,
                                                            abs=0.03)

    def test_analytic_edge_cases(self):
        code = HammingCode(7, 4)
        assert analytic_correction_probability(code, 1000, 0) == 1.0
        assert analytic_correction_probability(code, 1000, 1) == 1.0
        with pytest.raises(ValueError):
            analytic_correction_probability(code, 0, 1)

    def test_too_many_errors_rejected(self):
        with pytest.raises(ValueError):
            correction_capability_curve(HammingCode(7, 4), error_counts=(11,),
                                        num_bits=10, sequences=10)

    def test_fig10_reference_shape_reproduced(self):
        # Compare against the two anchor points the paper quotes:
        # Hamming(7,4) stays in the mid-90s at 10 errors, Hamming(63,57)
        # falls to roughly half.
        curves = fig10_curves(error_counts=(2, 10), sequences=3000, seed=5)
        h74 = {p.num_errors: p.corrected_percent for p in curves[(7, 4)]}
        h6357 = {p.num_errors: p.corrected_percent
                 for p in curves[(63, 57)]}
        assert h74[2] == pytest.approx(
            paper_data.FIG10_REFERENCE[(7, 4)][2], abs=3.0)
        assert h74[10] == pytest.approx(
            paper_data.FIG10_REFERENCE[(7, 4)][10], abs=5.0)
        assert h6357[10] == pytest.approx(
            paper_data.FIG10_REFERENCE[(63, 57)][10], abs=12.0)


class TestTableFormatting:
    def test_measured_vs_paper_table(self):
        reports = sweep_code_configurations("crc16", (4, 8),
                                            circuit=SMALL_CIRCUIT)
        text = format_measured_vs_paper(reports, paper_data.TABLE1_CRC16,
                                        title="Table I")
        assert "Table I" in text
        assert "measured" in text
        assert "paper" in text

    def test_family_table(self):
        rows = table3_hamming_family(circuit=SMALL_CIRCUIT,
                                     chains_per_code={(7, 4): 8, (15, 11): 11,
                                                      (31, 26): 13,
                                                      (63, 57): 16})
        text = format_family_table(rows, paper_data.TABLE3_HAMMING_FAMILY)
        assert "(7,4)" in text and "(63,57)" in text

    def test_fig10_table(self):
        curves = fig10_curves(error_counts=(1, 2), sequences=100, seed=6)
        text = format_fig10_table(curves, title="fig10")
        assert "fig10" in text
        assert "(7,4) %" in text

    def test_fig10_table_requires_curves(self):
        with pytest.raises(ValueError):
            format_fig10_table({})


class TestPaperData:
    def test_table_shapes(self):
        assert len(paper_data.TABLE1_CRC16) == 5
        assert len(paper_data.TABLE2_HAMMING74) == 5
        assert len(paper_data.TABLE3_HAMMING_FAMILY) == 4

    def test_paper_energy_consistency(self):
        # Sanity of the transcription: energy ~= power x latency.
        for row in paper_data.TABLE1_CRC16 + paper_data.TABLE2_HAMMING74:
            expected = row["enc_power_mw"] * row["latency_ns"] * 1e-3
            assert row["enc_energy_nj"] == pytest.approx(expected, rel=0.05)
