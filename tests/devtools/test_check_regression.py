"""Benchmark-tooling guard rails: check_regression degrades readably.

The CI regression guard must fail with a *message*, never a
traceback, on the common decay modes of the committed bench files:
malformed JSON, a fresh file missing a guarded metric, an empty or
absent history trajectory.  The companion ``record_bench`` writer must
stamp the array-backend metadata (numpy version + backend name) into
every envelope and history row so cross-machine numbers are never
compared silently.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_module(name: str, path: Path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def guard(tmp_path, monkeypatch):
    """check_regression rewired to a scratch repo layout."""
    module = _load_module("check_regression_under_test",
                          REPO_ROOT / "benchmarks" / "check_regression.py")
    monkeypatch.setattr(module, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(module, "FRESH_DIR", tmp_path / "results")
    monkeypatch.setattr(module, "HISTORY_PATH",
                        tmp_path / "BENCH_history.jsonl")
    (tmp_path / "results").mkdir()
    return module


def _write(path: Path, payload) -> None:
    path.write_text(json.dumps(payload) if not isinstance(payload, str)
                    else payload, encoding="utf-8")


def _bench_payload(results) -> dict:
    return {"bench": "engines", "results": results}


def test_clean_pass(guard, capsys):
    results = {"summary": {"seq_per_s": 100.0, "floors": {"seq_per_s": 50.0}}}
    _write(guard.REPO_ROOT / "BENCH_engines.json", _bench_payload(results))
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload(results))
    assert guard.main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "no committed history" in out


def test_malformed_committed_json_is_a_message_not_a_traceback(guard):
    _write(guard.REPO_ROOT / "BENCH_engines.json", "{truncated")
    _write(guard.FRESH_DIR / "BENCH_engines.json",
           _bench_payload({"s": {"m": 1.0, "floors": {"m": 0.5}}}))
    failures = guard.check_bench("engines")
    assert len(failures) == 1
    assert "unreadable" in failures[0]


def test_missing_results_mapping_is_named(guard):
    _write(guard.REPO_ROOT / "BENCH_engines.json", {"bench": "engines"})
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload({}))
    failures = guard.check_bench("engines")
    assert "no 'results' mapping" in failures[0]
    assert "record_bench" in failures[0]


def test_missing_metric_in_fresh_results_is_named(guard):
    _write(guard.REPO_ROOT / "BENCH_engines.json", _bench_payload(
        {"campaign_delta_path": {"speedup": 3.0,
                                 "floors": {"speedup": 2.0}}}))
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload(
        {"campaign_delta_path": {}}))
    failures = guard.check_bench("engines")
    assert "campaign_delta_path/speedup" in failures[0]
    assert "did the benchmark that records it run" in failures[0]


def test_missing_section_with_absent_requirement_skips(guard, capsys):
    """A committed section declaring ``requires`` on a module that is
    not importable here reports 'skipped, not regressed' when the
    fresh run never produced it (the optional benchmark could not have
    run), and the guard passes."""
    _write(guard.REPO_ROOT / "BENCH_engines.json", _bench_payload(
        {"campaign_jit_path": {"speedup": 3.2,
                               "requires": ["definitely_not_a_module"],
                               "floors": {"speedup": 2.0}}}))
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload({}))
    assert guard.check_bench("engines") == []
    assert guard.main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "skipped, not regressed" in out
    assert "definitely_not_a_module" in out


def test_missing_section_with_satisfied_requirement_still_fails(guard):
    """When every required module *is* importable, a missing section
    is a real regression -- the benchmark should have run."""
    _write(guard.REPO_ROOT / "BENCH_engines.json", _bench_payload(
        {"campaign_jit_path": {"speedup": 3.2, "requires": ["json"],
                               "floors": {"speedup": 2.0}}}))
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload({}))
    failures = guard.check_bench("engines")
    assert len(failures) == 1
    assert "did the benchmark that records it run" in failures[0]


def test_present_section_with_requires_is_gated_normally(guard):
    """``requires`` only excuses absence: a section the fresh run did
    produce is floor-checked like any other, requirements or not."""
    committed = {"campaign_jit_path": {
        "speedup": 3.2, "requires": ["definitely_not_a_module"],
        "floors": {"speedup": 2.0}}}
    _write(guard.REPO_ROOT / "BENCH_engines.json",
           _bench_payload(committed))
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload(
        {"campaign_jit_path": {"speedup": 1.1}}))
    failures = guard.check_bench("engines")
    assert "regressed below the committed floor" in failures[0]


def test_all_sections_skipped_is_not_nothing_to_guard(guard, capsys):
    """A bench whose every floored section legitimately skipped must
    not trip the 'declares no floors' backstop."""
    _write(guard.REPO_ROOT / "BENCH_jitonly.json", {
        "bench": "jitonly",
        "results": {"s": {"m": 3.0, "requires": ["definitely_not_a_module"],
                          "floors": {"m": 2.0}}}})
    _write(guard.FRESH_DIR / "BENCH_jitonly.json",
           {"bench": "jitonly", "results": {}})
    assert guard.check_bench("jitonly") == []


def test_regression_below_floor_fails(guard):
    _write(guard.REPO_ROOT / "BENCH_engines.json", _bench_payload(
        {"s": {"m": 3.0, "floors": {"m": 2.0}}}))
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload(
        {"s": {"m": 1.5}}))
    failures = guard.check_bench("engines")
    assert "regressed below the committed floor" in failures[0]


def test_empty_history_prints_note_and_still_gates(guard, capsys):
    guard.HISTORY_PATH.write_text("")
    results = {"s": {"m": 3.0, "floors": {"m": 2.0}}}
    _write(guard.REPO_ROOT / "BENCH_engines.json", _bench_payload(results))
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload(results))
    assert guard.main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "missing or empty" in out


def test_corrupt_history_lines_are_skipped(guard, capsys):
    guard.HISTORY_PATH.write_text(
        "not-json\n"
        + json.dumps({"bench": "engines", "section": "s",
                      "recorded_at": "2026-01-01T00:00:00Z",
                      "metrics": {"m": 2.0}}) + "\n")
    results = {"s": {"m": 3.0, "floors": {"m": 2.0}}}
    _write(guard.REPO_ROOT / "BENCH_engines.json", _bench_payload(results))
    _write(guard.FRESH_DIR / "BENCH_engines.json", _bench_payload(results))
    assert guard.main(["engines"]) == 0
    assert "+50.0% vs 2026-01-01T00:00:00Z" in capsys.readouterr().out


def test_non_numeric_history_value_degrades_to_note(guard):
    assert guard.format_delta(3.0, ("fast", "t")) == "no committed history"
    assert guard.format_delta(3.0, (True, "t")) == "no committed history"
    assert guard.format_delta(3.0, (0, "t")) == "no committed history"
    assert guard.format_delta(3.0, None) == "no committed history"


@pytest.fixture
def recorder(tmp_path, monkeypatch):
    """benchmarks/conftest.py's record_bench rewired to tmp dirs."""
    benchmarks = REPO_ROOT / "benchmarks"
    monkeypatch.syspath_prepend(str(benchmarks))
    module = _load_module("bench_conftest_under_test",
                          benchmarks / "conftest.py")
    monkeypatch.setattr(module, "BENCH_SCRATCH_DIR", tmp_path / "results")
    monkeypatch.setattr(module, "BENCH_REFERENCE_DIR", tmp_path)
    monkeypatch.setattr(module, "_WRITTEN_THIS_RUN", set())
    return module


def test_record_bench_embeds_backend_metadata(recorder, tmp_path):
    """Satellite: every envelope and history row carries the numpy
    version and the default backend name."""
    recorder.record_bench("engines", {"seq_per_s": 10.0},
                          section="campaign_delta_path")
    payload = json.loads(
        (tmp_path / "results" / "BENCH_engines.json").read_text())
    assert "numpy" in payload and "backend" in payload
    row = json.loads(
        (tmp_path / "results" / "BENCH_history.jsonl").read_text()
        .splitlines()[-1])
    assert "numpy" in row and "backend" in row
    assert row["section"] == "campaign_delta_path"
    # The numba version rides along the same way: the installed
    # version string, or null where the [jit] extra is absent.
    for record in (payload, row):
        assert "numba" in record
        if importlib.util.find_spec("numba") is None:
            assert record["numba"] is None
        else:  # pragma: no cover - jit-smoke installs only
            assert isinstance(record["numba"], str)
    if importlib.util.find_spec("numpy") is not None:
        import numpy
        assert payload["numpy"] == numpy.__version__
        assert payload["backend"] == "numpy"
        assert row["numpy"] == numpy.__version__
        assert row["backend"] == "numpy"
    else:  # pragma: no cover - pure-stdlib install
        assert payload["numpy"] is None


def test_engine_metadata_never_raises(recorder, monkeypatch):
    """A broken backend import degrades to None entries (benchmarks
    must record even on a pure-stdlib install)."""
    import builtins

    original = builtins.__import__

    def failing(name, *args, **kwargs):
        if name.startswith(("numpy", "repro")):
            raise ImportError(name)
        return original(name, *args, **kwargs)

    for mod in [m for m in list(sys.modules)
                if m.startswith(("numpy", "repro"))]:
        monkeypatch.delitem(sys.modules, mod)
    monkeypatch.setattr(builtins, "__import__", failing)
    assert recorder._engine_metadata() == {"numpy": None, "backend": None,
                                           "numba": None}
