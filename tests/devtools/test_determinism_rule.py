"""Fixture tests of the ``determinism`` rule."""

import textwrap

import pytest

from repro.devtools.lint.rules.determinism import RULE


def _messages(findings):
    return [f.message for f in findings]


class TestGlobalRandomState:
    def test_flags_global_random_call(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            import random
            def draw():
                return random.random()
            """), "repro/engines/fixture.py")
        assert len(findings) == 1
        assert "global instance" in findings[0].message
        assert findings[0].line == 3

    def test_flags_aliased_module(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            import random as rnd
            def draw():
                return rnd.randint(0, 7)
            """), "repro/faults/fixture.py")
        assert len(findings) == 1

    def test_flags_from_import_member(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            from random import randint as ri
            def draw():
                return ri(0, 7)
            """), "repro/codes/fixture.py")
        assert len(findings) == 1
        assert "imported as ri" in findings[0].message

    def test_flags_unseeded_random_instance(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            import random
            def make():
                return random.Random()
            """), "repro/campaigns/fixture.py")
        assert _messages(findings) == [
            "unseeded random.Random(): results will differ between "
            "runs; derive the seed from the campaign root "
            "(repro.campaigns.seeding.child_seed)"]

    def test_flags_system_random(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            import random
            def root():
                return random.SystemRandom().getrandbits(64)
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "OS entropy" in findings[0].message

    def test_seeded_random_is_quiet(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            import random
            def make(seed):
                return random.Random(seed)
            """), "repro/campaigns/fixture.py")
        assert findings == []


class TestNumpyRandomState:
    def test_flags_legacy_global(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            import numpy as np
            def setup():
                np.random.seed(42)
                return np.random.rand(4)
            """), "repro/engines/fixture.py")
        assert len(findings) == 2

    def test_flags_unseeded_default_rng(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            import numpy as np
            def make():
                return np.random.default_rng()
            """), "repro/faults/fixture.py")
        assert len(findings) == 1
        assert "unseeded np.random.default_rng" in findings[0].message

    def test_seeded_default_rng_is_quiet(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            import numpy as np
            def make(seed):
                return np.random.default_rng(seed)
            """), "repro/faults/fixture.py")
        assert findings == []


class TestWallClock:
    @pytest.mark.parametrize("call", [
        "time.time()",
        "time.time_ns()",
        "datetime.datetime.now()",
        "datetime.date.today()",
    ])
    def test_flags_clock_reads(self, run_rule, call):
        findings = run_rule(
            RULE,
            f"import time\nimport datetime\nSTAMP = {call}\n",
            "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message

    def test_perf_counter_is_quiet(self, run_rule):
        findings = run_rule(
            RULE, "import time\nT0 = time.perf_counter()\n",
            "repro/campaigns/fixture.py")
        assert findings == []


class TestSetIterationOrder:
    def test_flags_for_over_set_literal(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            def walk(a, b):
                for item in {a, b}:
                    print(item)
            """), "repro/codes/fixture.py")
        assert len(findings) == 1
        assert "hash randomization" in findings[0].message

    def test_flags_list_of_set_call(self, run_rule):
        findings = run_rule(
            RULE, "def order(xs):\n    return list(set(xs))\n",
            "repro/campaigns/fixture.py")
        assert len(findings) == 1

    def test_sorted_set_is_quiet(self, run_rule):
        findings = run_rule(
            RULE, "def order(xs):\n    return sorted(set(xs))\n",
            "repro/campaigns/fixture.py")
        assert findings == []


class TestScope:
    def test_out_of_scope_package_is_quiet(self, run_rule):
        source = "import random\nX = random.random()\n"
        assert run_rule(RULE, source, "repro/analysis/fixture.py") == []
        assert run_rule(RULE, source, "repro/validation/fixture.py") == []

    def test_scope_matches_directory_not_filename(self, run_rule):
        # A file *named* engines.py outside the packages is out of
        # scope; a file inside engines/ is in scope.
        source = "import random\nX = random.random()\n"
        assert run_rule(RULE, source, "repro/engines.py") == []
        assert len(run_rule(RULE, source, "repro/engines/x.py")) == 1

    def test_jit_engine_module_is_in_scope(self, run_rule):
        # The conditionally-registered jit engine rides the engines/
        # directory scope like every other engine module.
        source = "import random\nX = random.random()\n"
        assert len(run_rule(RULE, source, "repro/engines/jit.py")) == 1
