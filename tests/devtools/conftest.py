"""Shared fixtures of the linter test suite.

The per-rule tests run rules over in-memory fixture sources (no disk
round-trip): ``run_rule`` parses a source string under a chosen
project-relative path and returns the findings of one rule's
``check_file`` pass.
"""

import pytest

from lint_fixtures import make_file, make_project


@pytest.fixture
def run_rule():
    """``run_rule(rule, source, relpath)`` -> list of findings."""

    def run(rule, source, relpath="repro/campaigns/fixture.py"):
        file = make_file(source, relpath)
        project = make_project(file)
        return list(rule.check_file(project, file))

    return run
