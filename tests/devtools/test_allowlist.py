"""Tests of the explicit allowlist mechanism."""

from lint_fixtures import make_file

from repro.devtools.lint.allowlist import (
    Allow,
    DEFAULT_ALLOWLIST,
    apply_allowlist,
)
from repro.devtools.lint.findings import Finding


def _finding(rule="determinism", path="repro/campaigns/runner.py",
             line=2, message="probe"):
    return Finding(rule=rule, path=path, line=line, message=message)


def _file(source, relpath):
    return make_file(source, relpath)


class TestMatching:
    def test_matching_entry_suppresses(self):
        file = _file("import random\n"
                     "root = random.SystemRandom().getrandbits(64)\n",
                     "repro/campaigns/runner.py")
        allow = Allow(rule="determinism", path="campaigns/runner.py",
                      snippet="random.SystemRandom().getrandbits(64)",
                      justification="test")
        result = apply_allowlist([_finding()], [file], [allow])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_wrong_rule_does_not_suppress(self):
        file = _file("import random\n"
                     "root = random.SystemRandom().getrandbits(64)\n",
                     "repro/campaigns/runner.py")
        allow = Allow(rule="dtype", path="campaigns/runner.py",
                      snippet="random.SystemRandom().getrandbits(64)",
                      justification="test")
        result = apply_allowlist([_finding()], [file], [allow])
        assert len(result.findings) == 2  # the finding + stale entry

    def test_snippet_must_be_on_the_flagged_line(self):
        # Same file, same rule, but the offending line is different
        # code: the entry must NOT silence it.
        file = _file("import random\n"
                     "x = random.random()\n",
                     "repro/campaigns/runner.py")
        allow = Allow(rule="determinism", path="campaigns/runner.py",
                      snippet="random.SystemRandom().getrandbits(64)",
                      justification="test")
        result = apply_allowlist([_finding()], [file], [allow])
        assert len(result.findings) == 2

    def test_path_matches_on_suffix(self):
        file = _file("import random\n"
                     "root = random.SystemRandom().getrandbits(64)\n",
                     "src/repro/campaigns/runner.py")
        allow = Allow(rule="determinism", path="campaigns/runner.py",
                      snippet="random.SystemRandom().getrandbits(64)",
                      justification="test")
        finding = _finding(path="src/repro/campaigns/runner.py")
        result = apply_allowlist([finding], [file], [allow])
        assert result.findings == []


class TestStaleEntries:
    def test_unused_entry_in_scanned_file_is_reported(self):
        file = _file("X = 1\n", "repro/campaigns/runner.py")
        allow = Allow(rule="determinism", path="campaigns/runner.py",
                      snippet="random.SystemRandom().getrandbits(64)",
                      justification="test")
        result = apply_allowlist([], [file], [allow])
        assert result.unused == [allow]
        assert len(result.findings) == 1
        assert result.findings[0].rule == "allowlist"

    def test_unused_entry_outside_scan_is_silent(self):
        # Scanning a fixture directory must not flag the project
        # allowlist as stale.
        file = _file("X = 1\n", "fixtures/sample.py")
        allow = Allow(rule="determinism", path="campaigns/runner.py",
                      snippet="random.SystemRandom().getrandbits(64)",
                      justification="test")
        result = apply_allowlist([], [file], [allow])
        assert result.unused == []
        assert result.findings == []


class TestDefaultAllowlist:
    def test_entries_are_specific_and_justified(self):
        for allow in DEFAULT_ALLOWLIST:
            assert allow.rule, allow
            assert allow.path.endswith(".py"), allow
            assert allow.snippet.strip(), allow
            assert len(allow.justification) > 40, (
                "allowlist justifications must actually justify")

    def test_no_blanket_entries(self):
        # The design rule: an entry silences one kind of line in one
        # file, never a whole rule or directory.
        for allow in DEFAULT_ALLOWLIST:
            assert "/" in allow.path or allow.path.endswith(".py")
            assert allow.snippet != ""
