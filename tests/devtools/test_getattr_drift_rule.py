"""Fixture and reflection tests of the ``getattr-drift`` rule."""

from repro.devtools.lint.rules.getattr_drift import (
    GetattrDriftRule,
    code_class_attributes,
    circuit_class_attributes,
)

CODE_ATTRS = frozenset({"encoder_xor_count", "name", "signature_bits"})
CIRCUIT_ATTRS = frozenset({"corrupt_retention"})


def _rule():
    # Injected attribute sets keep the fixture tests hermetic (no
    # dependency on which code classes the registry currently ships).
    return GetattrDriftRule(code_attrs=CODE_ATTRS,
                            circuit_attrs=CIRCUIT_ATTRS)


class TestWatchedStrings:
    def test_live_cost_attribute_is_quiet(self, run_rule):
        findings = run_rule(
            _rule(),
            'count = getattr(code, "encoder_xor_count", None)\n',
            "repro/core/fixture.py")
        assert findings == []

    def test_renamed_cost_attribute_fires(self, run_rule):
        findings = run_rule(
            _rule(),
            'count = getattr(code, "encoder2_xor_count", None)\n',
            "repro/core/fixture.py")
        assert len(findings) == 1
        assert "estimate fallback" in findings[0].message

    def test_renamed_gate_count_fires(self, run_rule):
        findings = run_rule(
            _rule(),
            'count = getattr(code, "fixer_gate_count", None)\n',
            "repro/core/fixture.py")
        assert len(findings) == 1

    def test_circuit_protocol_string_is_checked(self, run_rule):
        quiet = run_rule(
            _rule(),
            'fn = getattr(flop, "corrupt_retention", None)\n',
            "repro/faults/fixture.py")
        assert quiet == []
        drifted = run_rule(
            GetattrDriftRule(code_attrs=CODE_ATTRS,
                             circuit_attrs=frozenset()),
            'fn = getattr(flop, "corrupt_retention", None)\n',
            "repro/faults/fixture.py")
        assert len(drifted) == 1
        assert "repro.circuit" in drifted[0].message

    def test_unwatched_strings_are_ignored(self, run_rule):
        findings = run_rule(
            _rule(),
            'x = getattr(obj, "whatever_attribute", None)\n'
            'y = getattr(obj, attribute_variable, None)\n'
            "z = getattr(obj)\n",
            "repro/core/fixture.py")
        assert findings == []


class TestLiveReflection:
    def test_every_watched_string_in_tree_resolves(self):
        """The attributes the cost/injection paths getattr-probe exist
        on the live classes -- the drift the rule guards against."""
        codes = code_class_attributes()
        for name in ("encoder_xor_count", "decoder_xor_count",
                     "feedback_xor_count", "corrector_gate_count",
                     "name", "signature_bits"):
            assert name in codes, name
        assert "corrupt_retention" in circuit_class_attributes()
