"""Fixture tests of the ``dtype`` rule."""

import textwrap

import pytest

from repro.devtools.lint.rules.dtype import RULE, SCOPED_FILES


class TestDtypeDiscipline:
    @pytest.mark.parametrize("relpath",
                             [f"repro/{s}" for s in SCOPED_FILES])
    def test_missing_dtype_fires_in_every_scoped_file(self, run_rule,
                                                      relpath):
        findings = run_rule(
            RULE, "import numpy as np\nX = np.zeros((4, 4))\n", relpath)
        assert len(findings) == 1
        assert "dtype" in findings[0].message

    def test_explicit_dtype_is_quiet(self, run_rule):
        findings = run_rule(
            RULE,
            "import numpy as np\n"
            "X = np.zeros((4, 4), dtype=np.uint64)\n",
            "repro/engines/simd.py")
        assert findings == []

    def test_from_import_member_is_tracked(self, run_rule):
        findings = run_rule(
            RULE,
            "from numpy import asarray\nX = asarray([1, 2])\n",
            "repro/engines/simd.py")
        assert len(findings) == 1

    def test_like_constructors_are_exempt(self, run_rule):
        findings = run_rule(
            RULE,
            "import numpy as np\n"
            "def f(a):\n"
            "    return np.zeros_like(a), np.flatnonzero(a)\n",
            "repro/engines/simd.py")
        assert findings == []

    def test_out_of_scope_file_is_quiet(self, run_rule):
        findings = run_rule(
            RULE, "import numpy as np\nX = np.zeros(4)\n",
            "repro/engines/bitplane.py")
        assert findings == []

    def test_real_word_pipeline_modules_are_clean(self):
        from pathlib import Path

        from repro.devtools.lint import run_rules, scan

        src = Path(__file__).resolve().parents[2] / "src"
        project = scan([src / "repro" / "engines",
                        src / "repro" / "faults"])
        assert run_rules(project, rules=[RULE], reflection=False) == []
