"""Fixture and reflection tests of the ``capability`` rule."""

import importlib.util
import textwrap

from repro.devtools.lint.rules.capabilities import (
    RULE,
    check_conditional_registration,
    check_registered_engines,
)
from repro.engines.base import EngineCapabilities, SimulationEngine
from repro.engines.registry import (
    CONDITIONAL_ENGINES,
    available_engines,
    register_engine,
    unregister_engine,
)

FIXTURE_HEADER = """\
from repro.engines.base import EngineCapabilities, SimulationEngine
"""


class TestAstPass:
    def test_batch_flag_without_methods_fires(self, run_rule):
        findings = run_rule(RULE, FIXTURE_HEADER + textwrap.dedent("""\
            class Broken(SimulationEngine):
                capabilities = EngineCapabilities(batch=True)

                def encode_pass(self, design):
                    pass

                def decode_pass(self, design):
                    pass
            """), "repro/engines/fixture.py")
        assert len(findings) == 1
        assert "batch=True" in findings[0].message
        assert "encode_pass_batch" in findings[0].message

    def test_summary_flag_without_method_fires(self, run_rule):
        findings = run_rule(RULE, FIXTURE_HEADER + textwrap.dedent("""\
            class Broken(SimulationEngine):
                capabilities = EngineCapabilities(summary=True)

                def encode_pass(self, design):
                    pass

                def decode_pass(self, design):
                    pass
            """), "repro/engines/fixture.py")
        assert len(findings) == 1
        assert "run_batch_summary" in findings[0].message

    def test_implemented_method_behind_false_flag_fires(self, run_rule):
        findings = run_rule(RULE, FIXTURE_HEADER + textwrap.dedent("""\
            class DeadCode(SimulationEngine):
                capabilities = EngineCapabilities(summary=False)

                def encode_pass(self, design):
                    pass

                def decode_pass(self, design):
                    pass

                def run_batch_summary(self, design, planes, patterns):
                    pass
            """), "repro/engines/fixture.py")
        assert len(findings) == 1
        assert "dead code" in findings[0].message

    def test_consistent_engine_is_quiet(self, run_rule):
        findings = run_rule(RULE, FIXTURE_HEADER + textwrap.dedent("""\
            class Fine(SimulationEngine):
                capabilities = EngineCapabilities(batch=True,
                                                  summary=True)

                def encode_pass(self, design):
                    pass

                def decode_pass(self, design):
                    pass

                def encode_pass_batch(self, design, planes):
                    pass

                def decode_pass_batch(self, design, planes):
                    pass

                def run_batch_summary(self, design, planes, patterns):
                    pass
            """), "repro/engines/fixture.py")
        assert findings == []

    def test_computed_flags_defer_to_reflection(self, run_rule):
        # Non-literal capability values cannot be judged from the AST;
        # the registry reflection pass owns those.
        findings = run_rule(RULE, FIXTURE_HEADER + textwrap.dedent("""\
            HAVE_NUMPY = True

            class Computed(SimulationEngine):
                capabilities = EngineCapabilities(batch=HAVE_NUMPY)

                def encode_pass(self, design):
                    pass

                def decode_pass(self, design):
                    pass
            """), "repro/engines/fixture.py")
        assert findings == []


class _InconsistentEngine(SimulationEngine):
    """Declares summary support it does not implement."""

    capabilities = EngineCapabilities(summary=True)

    def encode_pass(self, design):
        pass

    def decode_pass(self, design):
        pass


class TestRegistryReflection:
    def test_all_registered_engines_are_consistent(self):
        """The regression the rule exists for: every engine the
        registry serves matches its own capability flags."""
        assert list(check_registered_engines()) == []

    def test_every_builtin_engine_is_covered(self):
        names = available_engines()
        assert "reference" in names and "packed" in names \
            and "batched" in names

    def test_inconsistent_registration_fires(self):
        register_engine("lint_probe_bad",
                        lambda design: _InconsistentEngine())
        try:
            findings = list(check_registered_engines(
                engine_names=("lint_probe_bad",)))
        finally:
            unregister_engine("lint_probe_bad")
        assert len(findings) == 1
        assert "summary=True" in findings[0].message
        assert "run_batch_summary" in findings[0].message


class TestConditionalRegistration:
    def test_live_registry_is_consistent(self):
        """Whatever this install has (numpy/cupy/numba present or
        not), gate and registry must agree -- in particular, an absent
        numba must NOT fire on the unregistered jit engine."""
        assert list(check_conditional_registration()) == []

    def test_jit_is_in_the_conditional_table(self):
        assert CONDITIONAL_ENGINES["jit"][0] == "numba"
        assert ("jit" in available_engines()) == (
            importlib.util.find_spec("numba") is not None)

    def test_importable_gate_without_registration_fires(self):
        """The rot the pass exists for: the dependency is installed
        but the engine never registered."""
        findings = list(check_conditional_registration(
            conditional={"ghost": ("json", "stdlib, always importable")},
            engine_names=()))
        assert len(findings) == 1
        assert "ghost" in findings[0].message
        assert "has rotted" in findings[0].message

    def test_registration_without_importable_gate_fires(self):
        findings = list(check_conditional_registration(
            conditional={"ghost": ("definitely_not_a_module", "extra")},
            engine_names=("ghost",)))
        assert len(findings) == 1
        assert "ImportError at first use" in findings[0].message

    def test_absent_gate_and_absent_engine_is_silent(self):
        """Graceful degradation: nothing installed, nothing registered,
        nothing reported."""
        findings = list(check_conditional_registration(
            conditional={"ghost": ("definitely_not_a_module", "extra")},
            engine_names=()))
        assert findings == []
