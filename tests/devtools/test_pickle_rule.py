"""Fixture tests of the ``pickle`` rule."""

import textwrap

from repro.devtools.lint.rules.pickle_safety import RULE

HEADER = """\
from dataclasses import dataclass, field
from typing import Callable, Optional
from repro.campaigns.runner import CampaignTask
"""


class TestFieldHazards:
    def test_callable_annotation_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class CallbackTask(CampaignTask):
                factory: Optional[Callable[[int], int]] = None
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "Callable" in findings[0].message

    def test_lambda_default_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class LambdaTask(CampaignTask):
                scale = lambda x: x + 1
                width: object = lambda: 4
            """), "repro/campaigns/fixture.py")
        assert any("lambda" in f.message for f in findings)

    def test_plain_value_fields_are_quiet(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class PlainTask(CampaignTask):
                width: int = 4
                codes: tuple = ("hamming(7,4)",)
            """), "repro/campaigns/fixture.py")
        assert findings == []


class TestSelfAssignmentHazards:
    def test_self_lambda_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            class SneakyTask(CampaignTask):
                def configure(self):
                    self.transform = lambda x: x
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "self.transform" in findings[0].message

    def test_self_open_handle_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            class LoggingTask(CampaignTask):
                def configure(self, path):
                    self.log = open(path, "a")
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "open" in findings[0].message

    def test_local_handles_inside_methods_are_quiet(self, run_rule):
        # Opening inside the method body without storing on self is
        # exactly the recommended pattern.
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            class FineTask(CampaignTask):
                def run_chunk(self, start, size, root_seed):
                    with open("data") as handle:
                        return handle.read()
            """), "repro/campaigns/fixture.py")
        assert findings == []


class TestWorkerCacheScope:
    """In the worker-cache module *every* class is in scope.

    Cached worker-side state outlives chunks inside warm persistent
    workers, so the pickle/handle hazards apply to any class defined
    there -- not only CampaignTask subclasses.
    """

    FIXTURE = textwrap.dedent("""\
        class ChunkWorkspace:
            def __init__(self, task):
                self.transform = lambda x: x

        class TraceSink:
            def attach(self, path):
                self.handle = open(path, "a")
        """)

    def test_plain_classes_fire_in_worker_cache_module(self, run_rule):
        findings = run_rule(RULE, self.FIXTURE,
                            "repro/campaigns/worker_cache.py")
        assert len(findings) == 2
        assert any("ChunkWorkspace" in f.message and "lambda" in f.message
                   for f in findings)
        assert any("TraceSink" in f.message and "open" in f.message
                   for f in findings)

    def test_same_classes_quiet_elsewhere(self, run_rule):
        # Outside the worker-cache module only CampaignTask
        # subclasses are checked; these plain classes never cross a
        # process boundary there.
        findings = run_rule(RULE, self.FIXTURE,
                            "repro/campaigns/fixture.py")
        assert findings == []

    def test_shipped_worker_cache_module_is_clean(self):
        """The real module must satisfy its own widened rule."""
        from pathlib import Path

        import repro.campaigns.worker_cache as module
        from lint_fixtures import make_file, make_project

        path = Path(module.__file__)
        file = make_file(path.read_text(),
                         "repro/campaigns/worker_cache.py")
        project = make_project(file)
        assert list(RULE.check_file(project, file)) == []


class TestRealTaskClasses:
    def test_shipped_tasks_pickle_cleanly(self):
        """Cross-check the rule's claim against the real pickler."""
        import pickle

        from repro.campaigns.tasks import FIFOValidationCampaignTask

        task = FIFOValidationCampaignTask(width=8, depth=8,
                                          codes=("hamming(7,4)",),
                                          num_chains=8)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
