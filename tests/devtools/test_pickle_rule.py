"""Fixture tests of the ``pickle`` rule."""

import textwrap

from repro.devtools.lint.rules.pickle_safety import RULE

HEADER = """\
from dataclasses import dataclass, field
from typing import Callable, Optional
from repro.campaigns.runner import CampaignTask
"""


class TestFieldHazards:
    def test_callable_annotation_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class CallbackTask(CampaignTask):
                factory: Optional[Callable[[int], int]] = None
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "Callable" in findings[0].message

    def test_lambda_default_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class LambdaTask(CampaignTask):
                scale = lambda x: x + 1
                width: object = lambda: 4
            """), "repro/campaigns/fixture.py")
        assert any("lambda" in f.message for f in findings)

    def test_plain_value_fields_are_quiet(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class PlainTask(CampaignTask):
                width: int = 4
                codes: tuple = ("hamming(7,4)",)
            """), "repro/campaigns/fixture.py")
        assert findings == []


class TestSelfAssignmentHazards:
    def test_self_lambda_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            class SneakyTask(CampaignTask):
                def configure(self):
                    self.transform = lambda x: x
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "self.transform" in findings[0].message

    def test_self_open_handle_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            class LoggingTask(CampaignTask):
                def configure(self, path):
                    self.log = open(path, "a")
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "open" in findings[0].message

    def test_local_handles_inside_methods_are_quiet(self, run_rule):
        # Opening inside the method body without storing on self is
        # exactly the recommended pattern.
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            class FineTask(CampaignTask):
                def run_chunk(self, start, size, root_seed):
                    with open("data") as handle:
                        return handle.read()
            """), "repro/campaigns/fixture.py")
        assert findings == []


class TestRealTaskClasses:
    def test_shipped_tasks_pickle_cleanly(self):
        """Cross-check the rule's claim against the real pickler."""
        import pickle

        from repro.campaigns.tasks import FIFOValidationCampaignTask

        task = FIFOValidationCampaignTask(width=8, depth=8,
                                          codes=("hamming(7,4)",),
                                          num_chains=8)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
