"""In-memory fixture-source helpers for the linter tests."""

import ast
from pathlib import Path

from repro.devtools.lint.findings import Project, SourceFile


def make_file(source: str, relpath: str) -> SourceFile:
    """Parse a fixture source string as if it lived at ``relpath``."""
    return SourceFile(path=Path(relpath), relpath=relpath,
                      source=source, tree=ast.parse(source))


def make_project(*files: SourceFile) -> Project:
    return Project(root=Path("."), files=list(files))
