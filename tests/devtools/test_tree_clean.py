"""The linter's own acceptance gate: the shipped tree is clean, and
each seed defect class makes the CLI exit non-zero again.

The first half is the CI tripwire (``run_lint`` over ``src/`` must
produce no findings, with every allowlist entry earning its keep); the
second half re-introduces one representative of each defect class the
rules were written for -- in a scratch tree -- and asserts the CLI
fails on it.
"""

import textwrap
from pathlib import Path

from repro.devtools.lint import main, run_lint
from repro.devtools.lint.allowlist import DEFAULT_ALLOWLIST
from repro.devtools.lint.rules import ALL_RULES, rules_by_id

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


class TestTreeClean:
    def test_src_tree_has_no_findings(self):
        result = run_lint([SRC])
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.findings == [], f"lint findings:\n{rendered}"

    def test_every_allowlist_entry_is_used(self):
        result = run_lint([SRC])
        assert result.unused == []
        assert len(result.suppressed) >= len(DEFAULT_ALLOWLIST)

    def test_cli_exits_zero_on_src(self, capsys):
        assert main([str(SRC), "-q"]) == 0

    def test_rule_registry_is_complete(self):
        ids = set(rules_by_id())
        assert ids == {"determinism", "capability", "fingerprint",
                       "dtype", "pickle", "getattr-drift"}
        assert len(ALL_RULES) == len(ids)


def _write(tree: Path, relpath: str, source: str) -> Path:
    path = tree / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestSeedDefectsFailTheCli:
    """Each reverted seed defect class must flip the exit status."""

    def test_unseeded_random_in_engines(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/engines/noise.py", """\
            import random

            def jitter():
                return random.random()
            """)
        assert main([str(tmp_path / "src"), "--no-reflection",
                     "-q"]) == 1
        assert "[determinism]" in capsys.readouterr().out

    def test_task_field_missing_from_fingerprint(self, tmp_path,
                                                 capsys):
        _write(tmp_path, "src/repro/campaigns/bad_task.py", """\
            from dataclasses import dataclass
            from repro.campaigns.runner import CampaignTask

            @dataclass(frozen=True)
            class BadTask(CampaignTask):
                width: int = 4
                sampler: str = "scalar"

                def fingerprint(self):
                    return f"bad:{self.width}"
            """)
        assert main([str(tmp_path / "src"), "--no-reflection",
                     "-q"]) == 1
        assert "[fingerprint]" in capsys.readouterr().out

    def test_dtype_less_constructor_in_simd(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/engines/simd.py", """\
            import numpy as np

            SCRATCH = np.zeros((4, 4))
            """)
        assert main([str(tmp_path / "src"), "--no-reflection",
                     "-q"]) == 1
        assert "[dtype]" in capsys.readouterr().out

    def test_summary_flag_without_implementation(self, tmp_path,
                                                 capsys):
        _write(tmp_path, "src/repro/engines/broken.py", """\
            from repro.engines.base import (
                EngineCapabilities,
                SimulationEngine,
            )

            class BrokenEngine(SimulationEngine):
                capabilities = EngineCapabilities(summary=True)

                def encode_pass(self, design):
                    pass

                def decode_pass(self, design):
                    pass
            """)
        assert main([str(tmp_path / "src"), "--no-reflection",
                     "-q"]) == 1
        assert "[capability]" in capsys.readouterr().out

    def test_clean_scratch_tree_passes(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/engines/fine.py", """\
            import random

            def jitter(rng: random.Random) -> float:
                return rng.random()
            """)
        assert main([str(tmp_path / "src"), "--no-reflection",
                     "-q"]) == 0


class TestCliInterface:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_select_unknown_rule_is_usage_error(self, tmp_path):
        import pytest

        _write(tmp_path, "src/x.py", "X = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "src"), "--select", "nonsense"])
        assert excinfo.value.code == 2

    def test_select_narrows_rules(self, tmp_path, capsys):
        # A determinism violation is invisible to a dtype-only run.
        _write(tmp_path, "src/repro/engines/noise.py", """\
            import random
            X = random.random()
            """)
        assert main([str(tmp_path / "src"), "--select", "dtype",
                     "--no-reflection", "-q"]) == 0

    def test_missing_path_is_usage_error(self):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["definitely/not/a/path"])
        assert excinfo.value.code == 2

    def test_no_allowlist_surfaces_sanctioned_sites(self, capsys):
        # Audit mode: the sanctioned draws become visible findings.
        assert main([str(SRC), "--no-allowlist", "--select",
                     "determinism", "--no-reflection", "-q"]) == 1
        out = capsys.readouterr().out
        assert "campaigns/runner.py" in out
        assert "campaigns/scheduler.py" in out
        assert "faults/patterns.py" in out
