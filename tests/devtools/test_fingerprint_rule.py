"""Fixture tests of the ``fingerprint`` rule."""

import textwrap

from repro.devtools.lint.rules.fingerprint import RULE

HEADER = """\
from dataclasses import dataclass, field
from repro.campaigns.runner import CampaignTask
"""


class TestDefaultFingerprintPath:
    def test_clean_dataclass_is_quiet(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class GoodTask(CampaignTask):
                width: int = 4
                depth: int = 4
            """), "repro/campaigns/fixture.py")
        assert findings == []

    def test_repr_false_field_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class LeakyTask(CampaignTask):
                width: int = 4
                batch_size: int = field(default=64, repr=False)
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "batch_size" in findings[0].message
        assert "repr=False" in findings[0].message

    def test_non_dataclass_with_fields_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            class PlainTask(CampaignTask):
                width: int = 4
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "not a dataclass" in findings[0].message


class TestOverrideFingerprintPath:
    def test_override_covering_all_fields_is_quiet(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class CustomTask(CampaignTask):
                width: int = 4
                depth: int = 4

                def fingerprint(self):
                    return f"custom:{self.width}x{self.depth}"
            """), "repro/campaigns/fixture.py")
        assert findings == []

    def test_override_missing_a_field_fires(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class ForgetfulTask(CampaignTask):
                width: int = 4
                sampler: str = "scalar"

                def fingerprint(self):
                    return f"forgetful:{self.width}"
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "'sampler'" in findings[0].message

    def test_string_key_mention_counts(self, run_rule):
        # Dict-key style fingerprints mention fields as string
        # literals; that must satisfy the rule.
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class DictTask(CampaignTask):
                width: int = 4

                def fingerprint(self):
                    return repr({"width": getattr(self, "width")})
            """), "repro/campaigns/fixture.py")
        assert findings == []


class TestSubclassDiscovery:
    def test_aliased_import_is_followed(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            from repro.campaigns.runner import CampaignTask as Base

            class Hidden(Base):
                width: int = 4
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1

    def test_in_file_subclass_chain_is_followed(self, run_rule):
        findings = run_rule(RULE, HEADER + textwrap.dedent("""\
            @dataclass(frozen=True)
            class Mid(CampaignTask):
                width: int = 4

            @dataclass(frozen=True)
            class Leaf(Mid):
                depth: int = field(default=4, repr=False)
            """), "repro/campaigns/fixture.py")
        assert len(findings) == 1
        assert "Leaf.depth" in findings[0].message

    def test_unrelated_dataclass_is_ignored(self, run_rule):
        findings = run_rule(RULE, textwrap.dedent("""\
            from dataclasses import dataclass, field

            @dataclass
            class NotATask:
                hidden: int = field(default=0, repr=False)
            """), "repro/campaigns/fixture.py")
        assert findings == []


class TestRealTaskClasses:
    def test_project_task_modules_are_clean(self):
        """The shipped task definitions pass the rule (the PR 3/PR 5
        batch_size/sampler incidents stay fixed)."""
        from pathlib import Path

        from repro.devtools.lint import run_rules, scan

        src = Path(__file__).resolve().parents[2] / "src"
        project = scan([src / "repro" / "campaigns",
                        src / "repro" / "analysis"])
        findings = [f for f in run_rules(project, rules=[RULE],
                                         reflection=False)]
        assert findings == []
