"""Equivalence of PackedScanChain against the bit-serial ScanChain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.flipflop import ScanFlipFlop
from repro.circuit.scan import ScanChain
from repro.codes.base import bits_to_int
from repro.fastpath.packed_chain import (
    PackedScanChain,
    pack_state,
    unpack_state,
)

tri_bits = st.one_of(st.none(), st.integers(min_value=0, max_value=1))


def tri_lists(min_size=1, max_size=24):
    return st.lists(tri_bits, min_size=min_size, max_size=max_size)


def make_reference(values):
    return ScanChain([ScanFlipFlop(name=f"ff{i}", init=v)
                      for i, v in enumerate(values)])


class TestPacking:
    @given(tri_lists())
    def test_pack_unpack_round_trip(self, values):
        state, known = pack_state(values)
        assert unpack_state(state, known, len(values)) == values
        assert state & ~known == 0

    def test_pack_rejects_non_bits(self):
        with pytest.raises(ValueError):
            pack_state([0, 2, 1])

    @given(tri_lists())
    def test_from_scan_chain_round_trip(self, values):
        packed = PackedScanChain.from_scan_chain(make_reference(values))
        assert packed.read_state() == values
        target = make_reference([0] * len(values))
        packed.write_to(target)
        assert target.read_state() == values


class TestShiftEquivalence:
    @given(tri_lists(), st.lists(tri_bits, min_size=0, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_shift_matches_reference(self, values, in_bits):
        reference = make_reference(values)
        packed = PackedScanChain.from_values(values)
        for bit in in_bits:
            assert packed.scan_out == reference.scan_out
            assert packed.shift(bit) == reference.shift(bit)
        assert packed.read_state() == reference.read_state()

    @given(tri_lists(), st.lists(st.integers(0, 1), min_size=0, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_shift_many_matches_reference(self, values, in_bits):
        reference = make_reference(values)
        packed = PackedScanChain.from_values(values)
        ref_out = reference.shift_many(in_bits)
        count = len(in_bits)
        out, out_known = packed.shift_many(bits_to_int(in_bits), count)
        # The packed out stream is MSB first in time; unknown reference
        # bits (None) appear as 0 data with a cleared known bit.
        for t in range(count):
            bit = (out >> (count - 1 - t)) & 1
            known = (out_known >> (count - 1 - t)) & 1
            assert (bit if known else None) == ref_out[t]
        assert packed.read_state() == reference.read_state()

    @given(tri_lists())
    def test_circulate_matches_reference(self, values):
        reference = make_reference(values)
        packed = PackedScanChain.from_values(values)
        observed = reference.circulate()
        assert packed.circulate_bits() == observed
        stream, known = packed.circulate()
        # State unchanged and the packed stream is the state integer.
        assert (stream, known) == (packed.state, packed.known)
        assert packed.read_state() == reference.read_state() == values

    def test_shift_many_longer_than_chain(self):
        values = [1, 0, 1]
        in_bits = [0, 1, 1, 0, 1, 0, 0, 1]
        reference = make_reference(values)
        packed = PackedScanChain.from_values(values)
        ref_out = reference.shift_many(in_bits)
        out, _known = packed.shift_many(bits_to_int(in_bits), len(in_bits))
        assert list(map(int, ref_out)) == [
            (out >> (len(in_bits) - 1 - t)) & 1 for t in range(len(in_bits))]
        assert packed.read_state() == reference.read_state()


class TestValidation:
    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            PackedScanChain(0)

    def test_rejects_state_outside_known(self):
        with pytest.raises(ValueError):
            PackedScanChain(4, state=0b1010, known=0b0010)

    def test_rejects_oversized_state(self):
        with pytest.raises(ValueError):
            PackedScanChain(3, state=0b1000)

    def test_load_state_validates_length(self):
        packed = PackedScanChain(3)
        with pytest.raises(ValueError):
            packed.load_state([0, 1])

    def test_shift_rejects_non_bits(self):
        with pytest.raises(ValueError):
            PackedScanChain(3).shift(2)


class TestApplyFlips:
    def test_flips_known_bits_only(self):
        packed = PackedScanChain.from_values([1, None, 0, 1])
        packed.apply_flips(0b1111)
        assert packed.read_state() == [0, None, 1, 0]
