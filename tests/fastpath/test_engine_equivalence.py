"""Bit-exact equivalence of the packed engine against the reference.

Two identically built :class:`~repro.core.protected.ProtectedDesign`
instances -- one per engine -- are driven through the same sleep/wake
cycles with the same injections; every observable (outcome fields,
per-block reports including correction events, final register state)
must match bit for bit.
"""

import random
import zlib

import pytest

from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.fastpath.engine import PackedMonitorEngine
from repro.faults.patterns import (
    ErrorPattern,
    burst_error_pattern,
    multi_error_pattern,
    single_error_pattern,
)


def _pair(seed, num_registers, codes, num_chains):
    designs = []
    for engine in ("reference", "packed"):
        circuit = make_random_state_circuit(num_registers, seed=seed)
        designs.append(ProtectedDesign(circuit, codes=codes,
                                       num_chains=num_chains, engine=engine))
    return designs


def _assert_equivalent(outcome_ref, outcome_packed, design_ref,
                       design_packed):
    assert outcome_packed.injected_errors == outcome_ref.injected_errors
    assert outcome_packed.detected == outcome_ref.detected
    assert outcome_packed.corrected_claim == outcome_ref.corrected_claim
    assert outcome_packed.state_intact == outcome_ref.state_intact
    assert outcome_packed.residual_errors == outcome_ref.residual_errors
    assert outcome_packed.error_code == outcome_ref.error_code
    assert outcome_packed.corrections_applied == \
        outcome_ref.corrections_applied
    assert outcome_packed.reports == outcome_ref.reports
    states_ref = [chain.read_state() for chain in design_ref.chains]
    states_packed = [chain.read_state() for chain in design_packed.chains]
    assert states_packed == states_ref


CONFIGS = [
    ("hamming_crc", ["hamming(7,4)", "crc16"], 8, 56),
    ("hamming_only", "hamming(7,4)", 4, 20),
    ("crc_only", "crc16", 4, 36),
    ("secded", "secded(8,4)", 8, 40),
    ("wide_hamming", ["hamming(15,11)", "crc16-ccitt"], 11, 77),
]


@pytest.mark.parametrize("label,codes,num_chains,num_registers", CONFIGS)
def test_randomized_campaign_equivalence(label, codes, num_chains,
                                         num_registers):
    rng = random.Random(zlib.crc32(label.encode()))
    design_ref, design_packed = _pair(42, num_registers, codes, num_chains)
    w, l = design_ref.num_chains, design_ref.chain_length
    for trial in range(8):
        kind = rng.choice(["none", "single", "burst", "multi"])
        prng = random.Random(trial)
        if kind == "none":
            pattern = None
        elif kind == "single":
            pattern = single_error_pattern(w, l, prng)
        elif kind == "burst":
            pattern = burst_error_pattern(w, l, 4, prng)
        else:
            pattern = multi_error_pattern(w, l, 3, prng)
        phase = rng.choice(["sleep", "post_wake"])
        outcome_ref = design_ref.sleep_wake_cycle(injection=pattern,
                                                  inject_phase=phase)
        outcome_packed = design_packed.sleep_wake_cycle(injection=pattern,
                                                        inject_phase=phase)
        _assert_equivalent(outcome_ref, outcome_packed, design_ref,
                           design_packed)


def test_overlapping_correcting_blocks():
    """Two block codes covering the same chains (the reference lets the
    last block's feedback win) must still match bit for bit."""
    codes = ["hamming(7,4)", "hamming(15,11)"]
    design_ref, design_packed = _pair(7, 44, codes, 4)
    engine = design_packed._get_packed_engine()
    assert engine._overlapping_correctors
    w, l = design_ref.num_chains, design_ref.chain_length
    for trial in range(6):
        prng = random.Random(trial * 13)
        pattern = multi_error_pattern(w, l, prng.randint(1, 3), prng)
        outcome_ref = design_ref.sleep_wake_cycle(injection=pattern)
        outcome_packed = design_packed.sleep_wake_cycle(injection=pattern)
        _assert_equivalent(outcome_ref, outcome_packed, design_ref,
                           design_packed)


def test_unknown_bits_are_reloaded_as_zero():
    """Both engines turn X (None) bits into driven zeros on decode."""
    designs = _pair(3, 20, ["hamming(7,4)", "crc16"], 4)
    for design in designs:
        design.chains[1].flops[2].force(None)
        design.chains[3].flops[0].force(None)
    outcome_ref = designs[0].sleep_wake_cycle()
    outcome_packed = designs[1].sleep_wake_cycle()
    _assert_equivalent(outcome_ref, outcome_packed, *designs)
    assert all(bit is not None
               for chain in designs[1].chains
               for bit in chain.read_state())


def test_engine_selection_api():
    circuit = make_random_state_circuit(20, seed=1)
    design = ProtectedDesign(circuit, codes="crc16", num_chains=4)
    assert design.engine == "reference"
    design.set_engine("packed")
    assert design.engine == "packed"
    with pytest.raises(ValueError):
        design.set_engine("verilog")
    with pytest.raises(ValueError):
        ProtectedDesign(circuit, codes="crc16", num_chains=4,
                        engine="quantum")


def test_switching_engines_mid_campaign():
    """The same design can alternate engines between cycles."""
    circuit = make_random_state_circuit(30, seed=9)
    design = ProtectedDesign(circuit, codes=["hamming(7,4)", "crc16"],
                             num_chains=6)
    reference = make_random_state_circuit(30, seed=9)
    shadow = ProtectedDesign(reference, codes=["hamming(7,4)", "crc16"],
                             num_chains=6)
    rng = random.Random(2)
    for trial in range(6):
        design.set_engine(rng.choice(["reference", "packed"]))
        pattern = single_error_pattern(design.num_chains,
                                       design.chain_length,
                                       random.Random(trial))
        outcome = design.sleep_wake_cycle(injection=pattern)
        expected = shadow.sleep_wake_cycle(injection=pattern)
        _assert_equivalent(expected, outcome, shadow, design)


def test_decode_before_encode_raises():
    circuit = make_random_state_circuit(20, seed=4)
    design = ProtectedDesign(circuit, codes="crc16", num_chains=4,
                             engine="packed")
    engine = design._get_packed_engine()
    states, knowns = design._pack_chains()
    with pytest.raises(RuntimeError):
        engine.decode_pass(states, knowns)


def test_engine_validates_geometry():
    circuit = make_random_state_circuit(20, seed=4)
    design = ProtectedDesign(circuit, codes="crc16", num_chains=4,
                             engine="packed")
    engine = design._get_packed_engine()
    with pytest.raises(ValueError):
        engine.encode_pass([0, 0], [0, 0])  # wrong chain count
    bad_state = [1 << design.chain_length] + [0] * (design.num_chains - 1)
    full = [(1 << design.chain_length) - 1] * design.num_chains
    with pytest.raises(ValueError):
        engine.encode_pass(bad_state, full)
