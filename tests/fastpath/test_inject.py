"""Packed batch fault injection equivalence and mask semantics."""

import random

import pytest

from repro.circuit.flipflop import ScanFlipFlop
from repro.circuit.scan import ScanChain
from repro.faults.injector import ScanErrorInjector
from repro.faults.patterns import ErrorPattern, multi_error_pattern
from repro.fastpath.inject import (
    PackedErrorInjector,
    pattern_masks,
    row_column_masks,
)
from repro.fastpath.packed_chain import PackedScanChain


def _chains(rng, num_chains, length):
    reference = []
    packed = []
    for c in range(num_chains):
        values = [rng.randint(0, 1) for _ in range(length)]
        reference.append(ScanChain(
            [ScanFlipFlop(name=f"c{c}f{i}", init=v)
             for i, v in enumerate(values)], name=f"chain{c}"))
        packed.append(PackedScanChain.from_values(values, name=f"chain{c}"))
    return reference, packed


class TestPatternMasks:
    def test_masks_set_the_named_positions(self):
        pattern = ErrorPattern(locations=frozenset({(0, 1), (0, 3), (2, 0)}))
        masks = pattern_masks(pattern, num_chains=3, chain_length=5)
        assert masks == {0: 0b01010, 2: 0b00001}

    def test_row_column_masks(self):
        pattern = ErrorPattern(locations=frozenset({(0, 1), (2, 4)}))
        row, column = row_column_masks(pattern, num_chains=3, chain_length=5)
        assert row == 0b101
        assert column == 0b10010

    def test_out_of_range_locations_rejected(self):
        pattern = ErrorPattern(locations=frozenset({(3, 0)}))
        with pytest.raises(ValueError):
            pattern_masks(pattern, num_chains=3, chain_length=5)
        with pytest.raises(ValueError):
            row_column_masks(pattern, num_chains=3, chain_length=5)


class TestPackedInjector:
    def test_matches_reference_inject_direct(self):
        rng = random.Random(21)
        reference, packed = _chains(rng, 4, 9)
        ref_injector = ScanErrorInjector(reference)
        packed_injector = PackedErrorInjector(packed)
        for trial in range(10):
            pattern = multi_error_pattern(4, 9, rng.randint(1, 5),
                                          random.Random(trial))
            plan = ref_injector.inject_direct(pattern)
            flipped = packed_injector.inject(pattern)
            assert flipped == plan.num_flipped
            for ref_chain, packed_chain in zip(reference, packed):
                assert packed_chain.read_state() == ref_chain.read_state()

    def test_skips_unknown_bits(self):
        packed = [PackedScanChain.from_values([1, None, 0])]
        injector = PackedErrorInjector(packed)
        pattern = ErrorPattern(locations=frozenset({(0, 0), (0, 1)}))
        assert injector.inject(pattern) == 1
        assert packed[0].read_state() == [0, None, 0]

    def test_row_column_injection_is_full_conjunction(self):
        rng = random.Random(8)
        _, packed = _chains(rng, 3, 5)
        before = [chain.read_state() for chain in packed]
        injector = PackedErrorInjector(packed)
        flipped = injector.inject_row_column(row_mask=0b101,
                                             column_mask=0b00011)
        assert flipped == 4  # 2 selected chains x 2 selected positions
        for c, chain in enumerate(packed):
            for p, bit in enumerate(chain.read_state()):
                expected = before[c][p] ^ (1 if (0b101 >> c) & 1
                                           and (0b00011 >> p) & 1 else 0)
                assert bit == expected

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PackedErrorInjector([])
        with pytest.raises(ValueError):
            PackedErrorInjector([PackedScanChain(3), PackedScanChain(4)])
        injector = PackedErrorInjector([PackedScanChain(3)])
        with pytest.raises(ValueError):
            injector.inject_row_column(0b10, 0b1)
        with pytest.raises(ValueError):
            injector.inject_row_column(0b1, 0b1000)
