"""Bit-exact equivalence of the packed codes against the references."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.base import CodeError, bits_to_int, int_to_bits
from repro.codes.crc import CRC_POLYNOMIALS, CRCCode
from repro.codes.hamming import PAPER_HAMMING_CODES, HammingCode
from repro.codes.interleave import InterleavedCode
from repro.codes.packed import (
    PackedBlockAdapter,
    PackedCRC,
    PackedHamming,
    PackedParity,
    PackedSECDED,
    PackedStreamAdapter,
    packed_block_code,
    packed_stream_code,
)
from repro.codes.parity import ParityCode
from repro.codes.secded import SECDEDCode


class TestPackedCRC:
    @given(st.sampled_from(sorted(CRC_POLYNOMIALS)),
           st.lists(st.integers(0, 1), min_size=0, max_size=130))
    @settings(max_examples=120, deadline=None)
    def test_signature_matches_reference(self, name, stream):
        code = CRCCode.from_name(name)
        packed = PackedCRC(code)
        expected = code.signature_int(stream)
        assert packed.signature_int(bits_to_int(stream),
                                    len(stream)) == expected

    def test_non_byte_aligned_lengths(self):
        code = CRCCode.from_name("crc16")
        packed = PackedCRC(code)
        rng = random.Random(3)
        for nbits in range(0, 40):
            stream = [rng.randint(0, 1) for _ in range(nbits)]
            assert packed.signature_int(bits_to_int(stream), nbits) == \
                code.signature_int(stream)

    def test_incremental_fold_matches_whole_stream(self):
        code = CRCCode.from_name("crc32")
        packed = PackedCRC(code)
        rng = random.Random(4)
        stream = [rng.randint(0, 1) for _ in range(77)]
        register = packed.init
        for start in (0, 13, 40):
            end = {0: 13, 13: 40, 40: 77}[start]
            chunk = stream[start:end]
            register = packed.fold(register, bits_to_int(chunk), len(chunk))
        assert register == code.signature_int(stream)

    def test_stream_adapter_fallback(self):
        code = CRCCode.from_name("crc16-ccitt")
        adapter = PackedStreamAdapter(code)
        rng = random.Random(5)
        stream = [rng.randint(0, 1) for _ in range(50)]
        assert adapter.signature_int(bits_to_int(stream), len(stream)) == \
            code.signature_int(stream)

    def test_factory_picks_table_implementation(self):
        assert isinstance(packed_stream_code(CRCCode.from_name("crc16")),
                          PackedCRC)

    def test_fold_rejects_oversized_stream(self):
        packed = PackedCRC(CRCCode.from_name("crc8"))
        with pytest.raises(CodeError):
            packed.fold(0, 0b100, 2)


class TestPackedHamming:
    @given(st.sampled_from(PAPER_HAMMING_CODES), st.data())
    @settings(max_examples=80, deadline=None)
    def test_parity_matches_reference(self, params, data):
        n, k = params
        code = HammingCode(n, k)
        packed = PackedHamming(code)
        word = data.draw(st.integers(0, (1 << k) - 1))
        assert packed.parity(word) == bits_to_int(
            code.parity_bits(int_to_bits(word, k)))

    @given(st.sampled_from(PAPER_HAMMING_CODES), st.data())
    @settings(max_examples=80, deadline=None)
    def test_decode_matches_reference(self, params, data):
        n, k = params
        code = HammingCode(n, k)
        packed = PackedHamming(code)
        word = data.draw(st.integers(0, (1 << k) - 1))
        stored = packed.parity(word)
        nflips = data.draw(st.integers(0, 3))
        flip_positions = data.draw(
            st.lists(st.integers(0, n - 1), min_size=nflips,
                     max_size=nflips, unique=True))
        received_data, received_parity = word, stored
        for pos in flip_positions:
            if pos < k:
                received_data ^= 1 << (k - 1 - pos)
            else:
                received_parity ^= 1 << (n - 1 - pos)
        expected = code.check(int_to_bits(received_data, k),
                              int_to_bits(received_parity, n - k))
        status, corrected, positions = packed.decode_slice(received_data,
                                                           received_parity)
        assert status is expected.status
        assert corrected == bits_to_int(expected.data)
        assert positions == expected.corrected_positions

    def test_rejects_secded_subclass(self):
        with pytest.raises(CodeError):
            PackedHamming(SECDEDCode(7, 4))


class TestPackedSECDED:
    @pytest.mark.parametrize("params", [(7, 4), (15, 11)])
    def test_all_zero_one_and_two_bit_errors(self, params):
        n, k = params
        code = SECDEDCode(n, k)
        packed = PackedSECDED(code)
        rng = random.Random(11)
        for _ in range(20):
            word = rng.getrandbits(k)
            stored = packed.parity(word)
            assert stored == bits_to_int(
                code.parity_bits(int_to_bits(word, k)))
            total = code.n  # extended codeword length
            error_sets = [()] + [(i,) for i in range(total)] + [
                tuple(rng.sample(range(total), 2)) for _ in range(6)]
            for errors in error_sets:
                received_data, received_parity = word, stored
                for pos in errors:
                    if pos < k:
                        received_data ^= 1 << (k - 1 - pos)
                    else:
                        received_parity ^= 1 << (total - 1 - pos)
                expected = code.check(
                    int_to_bits(received_data, k),
                    int_to_bits(received_parity, total - k))
                status, corrected, positions = packed.decode_slice(
                    received_data, received_parity)
                assert status is expected.status
                assert corrected == bits_to_int(expected.data)
                assert positions == expected.corrected_positions


class TestPackedParityAndAdapters:
    @given(st.integers(2, 12), st.booleans(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_parity_code(self, k, odd, data):
        code = ParityCode(k, odd=odd)
        packed = PackedParity(code)
        word = data.draw(st.integers(0, (1 << k) - 1))
        stored = packed.parity(word)
        assert stored == bits_to_int(code.parity_bits(int_to_bits(word, k)))
        flip = data.draw(st.integers(0, k - 1))
        received = word ^ (1 << (k - 1 - flip))
        expected = code.check(int_to_bits(received, k),
                              int_to_bits(stored, 1))
        status, corrected, positions = packed.decode_slice(received, stored)
        assert status is expected.status
        assert corrected == bits_to_int(expected.data)

    def test_block_adapter_runs_interleaved_codes(self):
        inner = HammingCode(7, 4)
        code = InterleavedCode(inner, depth=2)
        packed = packed_block_code(code)
        assert isinstance(packed, PackedBlockAdapter)
        rng = random.Random(17)
        for _ in range(20):
            word = rng.getrandbits(code.k)
            stored = packed.parity(word)
            assert stored == bits_to_int(
                code.parity_bits(int_to_bits(word, code.k)))
            received = word ^ (1 << rng.randrange(code.k))
            expected = code.check(int_to_bits(received, code.k),
                                  int_to_bits(stored, code.r))
            status, corrected, positions = packed.decode_slice(received,
                                                               stored)
            assert status is expected.status
            assert corrected == bits_to_int(expected.data)
            assert positions == expected.corrected_positions

    def test_factory_dispatch(self):
        assert isinstance(packed_block_code(HammingCode(7, 4)),
                          PackedHamming)
        assert isinstance(packed_block_code(SECDEDCode(7, 4)),
                          PackedSECDED)
        assert isinstance(packed_block_code(ParityCode(8)), PackedParity)
