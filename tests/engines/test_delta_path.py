"""Property suite: the sparse-delta summary path is bit-identical to
the dense path.

``run_batch_summary(..., path="delta")`` must produce exactly the
arrays of ``path="dense"`` -- every field of
:class:`BatchOutcomeArrays` -- across all registered code families,
geometries with and without padding, batch sizes including B=1 and
non-multiples of 64, and fault densities on both sides of (and exactly
at) the crossover threshold, including zero-flip sequences and
unknown-cell holes.  The suite also pins the automatic path selection
(``last_summary_path``), the forced-delta failure mode on unsupported
monitor structure, and the process-wide sharing of the correction /
verdict lookup tables.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.circuit.fifo import SyncFIFO                         # noqa: E402
from repro.circuit.generators import make_random_state_circuit  # noqa: E402
from repro.core.protected import ProtectedDesign                # noqa: E402
from repro.engines.base import BatchOutcomeArrays               # noqa: E402
from repro.engines.delta import (                               # noqa: E402
    DELTA_CROSSOVER_FLIPS_PER_SEQ,
    correction_lut,
    verdict_lut,
)
from repro.engines.registry import get_engine                   # noqa: E402
from repro.faults.batch import sample_pattern_batch             # noqa: E402

#: Code/geometry matrix: every registered family, correcting and
#: detecting codes alone and stacked, padded tails, plus the paper's
#: 32x32 FIFO configuration.
CONFIGS = [
    ("hamming74_crc16", ["hamming(7,4)", "crc16"], 8, 56),
    ("hamming74_padded", ["hamming(7,4)"], 5, 33),
    ("hamming6357_crc32", ["hamming(63,57)", "crc32"], 6, 80),
    ("secded84", ["secded(8,4)"], 8, 40),
    ("secded84_crc16", ["secded(8,4)", "crc16"], 6, 24),
    ("parity8", ["parity(8)"], 4, 16),
    ("parity12_ccitt", ["parity(12)", "crc16-ccitt"], 6, 36),
    ("crc8_only", ["crc8"], 3, 21),
]

#: 1 exercises the single-word degenerate case; 100 and 257 are not
#: multiples of 64, so the word-packed tails matter.
BATCH_SIZES = (1, 64, 100, 257)


def _design(codes, num_chains, num_registers, seed=11):
    circuit = make_random_state_circuit(num_registers, seed=seed)
    return ProtectedDesign(circuit, codes=list(codes),
                           num_chains=num_chains, engine="simd",
                           lfsr_seed=5)


def _paper_design():
    fifo = SyncFIFO(32, 32, name="fifo32x32")
    return ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                           num_chains=80, engine="simd", lfsr_seed=7)


def _pack(design):
    from repro.engines.packing import pack_chains
    states, knowns = pack_chains(design.chains)
    return list(states), list(knowns)


def _punch_holes(states, knowns):
    """Clear a couple of known bits on every 7th chain (unknown cells
    contribute to neither residuals nor syndromes)."""
    states = list(states)
    knowns = list(knowns)
    for c in range(0, len(knowns), 7):
        knowns[c] &= ~0b101
        states[c] &= knowns[c]
    return states, knowns


def _both_paths(design, flips, batch_size, states=None, knowns=None):
    engine = get_engine("simd", design)
    if states is None:
        states, knowns = _pack(design)
    dense = engine.run_batch_summary(states, knowns, flips, batch_size,
                                     path="dense")
    assert engine.last_summary_path == "dense"
    delta = engine.run_batch_summary(states, knowns, flips, batch_size,
                                     path="delta")
    assert engine.last_summary_path == "delta"
    return dense, delta


def assert_identical(dense: BatchOutcomeArrays, delta: BatchOutcomeArrays):
    assert np.array_equal(dense.injected, delta.injected)
    assert np.array_equal(dense.detected, delta.detected)
    assert np.array_equal(dense.corrected_claim, delta.corrected_claim)
    assert np.array_equal(dense.state_intact, delta.state_intact)
    assert np.array_equal(dense.corrections_applied,
                          delta.corrections_applied)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize(
    "codes,num_chains,num_registers",
    [config[1:] for config in CONFIGS],
    ids=[config[0] for config in CONFIGS])
@pytest.mark.parametrize("kind", ("single", "burst", "multiple", "none"))
def test_delta_matches_dense(codes, num_chains, num_registers, kind,
                             batch_size):
    design = _design(codes, num_chains, num_registers)
    rng = np.random.default_rng(20100308 + batch_size)
    sampled = sample_pattern_batch(kind, design.num_chains,
                                   design.chain_length, batch_size, rng,
                                   num_errors=4)
    assert_identical(*_both_paths(design, sampled, batch_size))


@pytest.mark.parametrize("kind", ("single", "multiple"))
def test_delta_matches_dense_paper_config(kind):
    """The paper's 32x32 FIFO / 80-chain configuration, the geometry
    the committed campaign_delta_path benchmark runs on."""
    design = _paper_design()
    rng = np.random.default_rng(42)
    sampled = sample_pattern_batch(kind, design.num_chains,
                                   design.chain_length, 257, rng,
                                   num_errors=3)
    assert_identical(*_both_paths(design, sampled, 257))


def test_delta_matches_dense_dict_flips():
    """The legacy dict-of-masks flips form goes through the same
    coordinate extraction."""
    design = _design(["secded(8,4)", "crc16"], 6, 24)
    length = design.chain_length
    flips = {(0, 1): 0b1011, (1, 3): 0b10, (2, 0): 1 << (length - 1),
             (5, 2): 0b1000}
    assert_identical(*_both_paths(design, flips, 9))


def test_delta_matches_dense_empty_batch():
    """Zero flips everywhere: the delta path does no LUT work at all
    yet must still report the clean verdicts and intact state."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    dense, delta = _both_paths(design, {}, 65)
    assert_identical(dense, delta)
    assert not dense.detected.any()
    assert dense.state_intact.all()


@pytest.mark.parametrize("batch_size", (1, 100))
def test_delta_matches_dense_with_unknown_cells(batch_size):
    """Unknown (tied-off / non-scanned) cells are excluded from both
    syndromes and residual comparison on both paths."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    states, knowns = _punch_holes(*_pack(design))
    rng = np.random.default_rng(7)
    sampled = sample_pattern_batch("multiple", design.num_chains,
                                   design.chain_length, batch_size, rng,
                                   num_errors=4)
    assert_identical(*_both_paths(design, sampled, batch_size,
                                  states=states, knowns=knowns))


def test_auto_selects_delta_below_crossover():
    """A single-error batch sits far below the crossover, so "auto"
    takes the delta path."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    engine = get_engine("simd", design)
    states, knowns = _pack(design)
    rng = np.random.default_rng(3)
    sampled = sample_pattern_batch("single", design.num_chains,
                                   design.chain_length, 64, rng)
    engine.run_batch_summary(states, knowns, sampled, 64)
    assert engine.last_summary_path == "delta"


def test_auto_selects_dense_above_crossover():
    """A batch denser than the crossover falls back to the dense
    fold (here by lowering the instance crossover under the sampled
    density instead of sampling thousands of flips)."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    engine = get_engine("simd", design)
    states, knowns = _pack(design)
    rng = np.random.default_rng(3)
    sampled = sample_pattern_batch("multiple", design.num_chains,
                                   design.chain_length, 64, rng,
                                   num_errors=4)
    engine.delta_crossover = 0.5
    engine.run_batch_summary(states, knowns, sampled, 64)
    assert engine.last_summary_path == "dense"


def test_auto_takes_delta_exactly_at_threshold():
    """num_flips == crossover * batch_size is still the delta path
    (the comparison is <=, not <)."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    engine = get_engine("simd", design)
    engine.delta_crossover = 1.0
    states, knowns = _pack(design)
    batch = 16
    flips = {}
    for b in range(batch):
        key = (b % design.num_chains, 0)
        flips[key] = flips.get(key, 0) | (1 << b)
    total = sum(bin(mask).count("1") for mask in flips.values())
    assert total == engine.delta_crossover * batch
    engine.run_batch_summary(states, knowns, flips, batch)
    assert engine.last_summary_path == "delta"
    # One flip more tips it over.
    flips[(0, 1)] = flips.get((0, 1), 0) | 0b10
    engine.run_batch_summary(states, knowns, flips, batch)
    assert engine.last_summary_path == "dense"


def test_default_crossover_is_module_constant():
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    engine = get_engine("simd", design)
    assert engine.delta_crossover == DELTA_CROSSOVER_FLIPS_PER_SEQ


def test_forced_delta_on_unsupported_structure_raises():
    """Overlapping correcting blocks replay with last-block-wins
    semantics the superposition cannot reproduce: auto must silently
    take the dense path, forced "delta" must fail loudly."""
    design = _design(["hamming(7,4)", "secded(8,4)"], 8, 56)
    engine = get_engine("simd", design)
    if engine._delta_plan_for().supported:
        pytest.skip("structure unexpectedly delta-capable")
    states, knowns = _pack(design)
    engine.run_batch_summary(states, knowns, {(0, 0): 1}, 4)
    assert engine.last_summary_path == "dense"
    with pytest.raises(ValueError, match="delta"):
        engine.run_batch_summary(states, knowns, {(0, 0): 1}, 4,
                                 path="delta")


def test_unknown_path_name_rejected():
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    engine = get_engine("simd", design)
    states, knowns = _pack(design)
    with pytest.raises(ValueError, match="path"):
        engine.run_batch_summary(states, knowns, {}, 4, path="fast")
    with pytest.raises(ValueError, match="path"):
        design.sleep_wake_cycle_batch_summary({}, 4, path="fast")


def test_design_level_path_forwarding():
    """sleep_wake_cycle_batch_summary forwards forced paths to the
    engine and the results agree field for field."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    rng = np.random.default_rng(5)
    sampled = sample_pattern_batch("burst", design.num_chains,
                                   design.chain_length, 33, rng,
                                   num_errors=3)
    dense = design.sleep_wake_cycle_batch_summary(sampled, 33,
                                                  path="dense")
    delta = design.sleep_wake_cycle_batch_summary(sampled, 33,
                                                  path="delta")
    assert_identical(dense, delta)


def test_correction_luts_are_shared_and_frozen():
    """Satellite: the syndrome->position tables are memoised
    process-wide on the code parameters -- two engines over the same
    code family share the very same (read-only) ndarray."""
    from repro.codes.registry import get_code

    lut_a = correction_lut(get_code("hamming(7,4)"))
    lut_b = correction_lut(get_code("hamming(7,4)"))
    assert lut_a is lut_b
    assert not lut_a.flags.writeable
    assert correction_lut(get_code("hamming(15,11)")) is not lut_a
    code_a, code_b = get_code("secded(8,4)"), get_code("secded(8,4)")
    assert verdict_lut(code_a) is verdict_lut(code_b)
    assert not verdict_lut(code_a).flags.writeable
