"""Regression: engine instances must track the monitoring structure.

Historically ``ProtectedDesign`` built its packed engine lazily and
never invalidated it, so replacing the monitor bank (or re-balancing
the chains) silently kept simulating the *old* structure.  The engine
cache is now keyed on the bank object and the chain geometry; these
tests pin that behaviour down.
"""

import random

from repro.circuit.generators import make_random_state_circuit
from repro.circuit.scan import ScanChain
from repro.core.monitor import MonitorBank, build_monitor_blocks
from repro.core.protected import ProtectedDesign
from repro.codes.registry import get_code
from repro.faults.patterns import single_error_pattern


def _design(engine, num_registers=44, codes=("hamming(7,4)", "crc16"),
            num_chains=4, seed=11):
    circuit = make_random_state_circuit(num_registers, seed=seed)
    return ProtectedDesign(circuit, codes=list(codes),
                           num_chains=num_chains, engine=engine)


def _swap_bank(design, code_names):
    """Replace the design's monitor bank with freshly built blocks."""
    blocks = []
    next_index = 0
    for name in code_names:
        code = get_code(name)
        width = getattr(code, "k", design.num_chains)
        for block in build_monitor_blocks(code, design.num_chains, width):
            block.block_index = next_index
            next_index += 1
            blocks.append(block)
    design.monitor_bank = MonitorBank(blocks)


def _outcome_tuple(outcome):
    return (outcome.injected_errors, outcome.detected,
            outcome.corrected_claim, outcome.state_intact,
            outcome.residual_errors, outcome.error_code,
            outcome.corrections_applied, outcome.reports)


class TestEngineCacheInvalidation:
    def test_packed_engine_rebuilt_when_bank_is_replaced(self):
        design = _design("packed")
        design.sleep_wake_cycle()
        stale = design._get_packed_engine()
        _swap_bank(design, ["hamming(15,11)", "crc16-ccitt"])
        rebuilt = design._get_packed_engine()
        assert rebuilt is not stale

    def test_results_follow_the_new_bank(self):
        """After a bank swap, every engine must simulate the *new*
        monitoring structure -- all engines agree with the reference."""
        designs = {name: _design(name) for name in
                   ("reference", "packed", "batched")}
        for design in designs.values():
            design.sleep_wake_cycle()  # populate the engine caches
            _swap_bank(design, ["hamming(15,11)", "crc16-ccitt"])
        outcomes = {}
        for name, design in designs.items():
            pattern = single_error_pattern(design.num_chains,
                                           design.chain_length,
                                           random.Random(3))
            outcomes[name] = _outcome_tuple(
                design.sleep_wake_cycle(injection=pattern))
        assert outcomes["packed"] == outcomes["reference"]
        assert outcomes["batched"] == outcomes["reference"]

    def test_cache_survives_engine_switching(self):
        """Switching engines back and forth reuses cached instances as
        long as the structure is unchanged."""
        design = _design("packed")
        design.sleep_wake_cycle()
        first = design._get_packed_engine()
        design.set_engine("batched")
        design.sleep_wake_cycle()
        design.set_engine("packed")
        design.sleep_wake_cycle()
        assert design._get_packed_engine() is first

    def test_chain_geometry_change_invalidates(self):
        """Re-balancing the chains (same bank object) rebuilds engines."""
        design = _design("packed", num_registers=48, codes=("crc16",),
                         num_chains=4)
        design.sleep_wake_cycle()
        stale = design._get_packed_engine()
        # Re-balance the same flops into 6 chains of length 8.
        flops = [flop for chain in design.chains for flop in chain.flops]
        design.chains = [ScanChain(flops[i * 8:(i + 1) * 8],
                                   name=f"rebal{i}") for i in range(6)]
        _swap_bank(design, ["crc16"])
        rebuilt = design._get_packed_engine()
        assert rebuilt is not stale
        assert rebuilt.num_chains == 6
        assert rebuilt.chain_length == 8
