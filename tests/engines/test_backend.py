"""Array-backend registry and workspace contract.

The backend layer is stdlib-importable: registration costs nothing
(factories import their array module lazily), the ``cuda`` entry only
appears when CuPy is importable, and a missing CuPy degrades to
*silence* -- no registry entry, no error -- in both the backend and the
engine registry.  The workspace contract (same key + shape -> same
buffer, shape change -> fresh allocation) is what lets the summary
pipeline run a whole campaign on one set of arrays.
"""

import importlib.util

import pytest

from repro.engines.backend import (
    ArrayBackend,
    Workspace,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
)

HAVE_NUMPY = importlib.util.find_spec("numpy") is not None
HAVE_CUPY = importlib.util.find_spec("cupy") is not None


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
def test_numpy_backend_is_registered_and_default():
    assert "numpy" in available_backends()
    assert default_backend_name() == "numpy"
    backend = get_backend()
    assert backend is get_backend("numpy")
    assert backend.name == "numpy"
    import numpy
    assert backend.xp is numpy
    # The host round-trip is the identity on the numpy backend.
    array = numpy.zeros(3, dtype=numpy.uint64)
    assert backend.asarray(array) is array
    assert backend.to_host(array) is array


@pytest.mark.skipif(HAVE_CUPY, reason="CuPy present")
def test_without_cupy_no_cuda_entry_anywhere():
    """Graceful degradation: neither the backend registry nor the
    engine registry grows a 'cuda' entry, and asking for it is a clear
    ValueError rather than an ImportError."""
    assert "cuda" not in available_backends()
    with pytest.raises(ValueError, match="unknown array backend"):
        get_backend("cuda")
    if HAVE_NUMPY:
        from repro.engines.registry import available_engines
        assert "cuda" not in available_engines()


def test_get_backend_unknown_name():
    with pytest.raises(ValueError, match="no-such-backend"):
        get_backend("no-such-backend")


def test_register_unregister_round_trip():
    calls = []

    def factory():
        calls.append(1)
        return ArrayBackend("stub", object(), lambda a: a, lambda a: a)

    register_backend("stub", factory)
    try:
        assert "stub" in available_backends()
        # Name resolution is case-insensitive; the instance is cached
        # (the factory runs once per process).
        assert get_backend("STUB") is get_backend("stub")
        assert len(calls) == 1
        with pytest.raises(ValueError, match="already registered"):
            register_backend("stub", factory)
        register_backend("stub", factory, replace=True)
    finally:
        unregister_backend("stub")
    assert "stub" not in available_backends()
    with pytest.raises(ValueError, match="not registered"):
        unregister_backend("stub")


def test_factory_must_return_backend():
    register_backend("bad-stub", lambda: object())
    try:
        with pytest.raises(TypeError, match="ArrayBackend"):
            get_backend("bad-stub")
    finally:
        unregister_backend("bad-stub")


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
def test_workspace_reuses_buffers_by_key_and_shape():
    import numpy as np

    workspace = Workspace(np)
    first = workspace.take("words", (4, 2), np.uint64)
    assert first.shape == (4, 2) and first.dtype == np.uint64
    # Same key and shape: the very same buffer comes back.
    assert workspace.take("words", (4, 2), np.uint64) is first
    # Another key never aliases.
    other = workspace.take("pre", (4, 2), np.uint64)
    assert other is not first
    # A shape or dtype change reallocates.
    assert workspace.take("words", (5, 2), np.uint64) is not first
    resized = workspace.take("words", (4, 2), np.int16)
    assert resized is not first and resized.dtype == np.int16
    workspace.clear()
    assert workspace.take("pre", (4, 2), np.uint64) is not other
