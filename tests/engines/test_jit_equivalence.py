"""Property suite: the fused jit summary kernels are bit-identical to
the simd paths.

``JitFusedEngine.run_batch_summary(..., path="jit")`` must produce
exactly the arrays of the simd engine's ``"dense"`` (and therefore
``"delta"``) path -- every field of :class:`BatchOutcomeArrays` --
across all registered code families, geometries with and without
padding, batch sizes including B=1, non-multiples of 64 and >= 64k,
and fault densities from zero flips to saturating bursts, including
unknown-cell holes and the legacy dict-of-masks flips form.

The kernels are written in nopython-compatible Python and njit-wrapped
only when numba is importable, so the whole matrix runs in both modes:
``compiled=False`` (the interpreter executes the identical kernel
logic -- always available) and ``compiled=True`` (added automatically
when numba is installed, as in the CI jit-smoke job).  The suite also
pins the ``"auto"`` selection and dense fallback, the forced-jit
failure mode on unsupported monitor structure, the conditional
registration / actionable forced-selection errors, and the
:func:`warm_up_kernels` process hook.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.circuit.fifo import SyncFIFO                         # noqa: E402
from repro.circuit.generators import make_random_state_circuit  # noqa: E402
from repro.core.protected import ProtectedDesign                # noqa: E402
from repro.engines import jit as jit_module                     # noqa: E402
from repro.engines.base import BatchOutcomeArrays               # noqa: E402
from repro.engines.jit import (                                 # noqa: E402
    JIT_SUMMARY_PATHS,
    JitFusedEngine,
    warm_up_kernels,
)
from repro.engines.registry import (                            # noqa: E402
    CONDITIONAL_ENGINES,
    available_engines,
    validate_engine,
)
from repro.faults.batch import sample_pattern_batch             # noqa: E402

HAVE_NUMBA = jit_module.numba is not None

#: Same code/geometry matrix as the delta-path suite: every registered
#: family, correcting and detecting codes alone and stacked, padded
#: tails, plus the paper's 32x32 FIFO configuration below.
CONFIGS = [
    ("hamming74_crc16", ["hamming(7,4)", "crc16"], 8, 56),
    ("hamming74_padded", ["hamming(7,4)"], 5, 33),
    ("hamming6357_crc32", ["hamming(63,57)", "crc32"], 6, 80),
    ("secded84", ["secded(8,4)"], 8, 40),
    ("secded84_crc16", ["secded(8,4)", "crc16"], 6, 24),
    ("parity8", ["parity(8)"], 4, 16),
    ("parity12_ccitt", ["parity(12)", "crc16-ccitt"], 6, 36),
    ("crc8_only", ["crc8"], 3, 21),
]

BATCH_SIZES = (1, 64, 100, 257)

#: Interpreter mode always runs; the compiled mode joins automatically
#: where numba is installed (the CI jit-smoke job).
COMPILED_MODES = [False] + ([True] if HAVE_NUMBA else [])


def _design(codes, num_chains, num_registers, seed=11):
    circuit = make_random_state_circuit(num_registers, seed=seed)
    return ProtectedDesign(circuit, codes=list(codes),
                           num_chains=num_chains, engine="simd",
                           lfsr_seed=5)


def _paper_design():
    fifo = SyncFIFO(32, 32, name="fifo32x32")
    return ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                           num_chains=80, engine="simd", lfsr_seed=7)


def _pack(design):
    from repro.engines.packing import pack_chains
    states, knowns = pack_chains(design.chains)
    return list(states), list(knowns)


def _punch_holes(states, knowns):
    states = list(states)
    knowns = list(knowns)
    for c in range(0, len(knowns), 7):
        knowns[c] &= ~0b101
        states[c] &= knowns[c]
    return states, knowns


def _jit_engine(design, compiled=False):
    return JitFusedEngine(design.monitor_bank, design.num_chains,
                          design.chain_length, compiled=compiled)


def _both_engines(design, flips, batch_size, compiled=False,
                  states=None, knowns=None, simd_path="dense"):
    from repro.engines.registry import get_engine
    if states is None:
        states, knowns = _pack(design)
    simd = get_engine("simd", design)
    reference = simd.run_batch_summary(states, knowns, flips,
                                       batch_size, path=simd_path)
    jit = _jit_engine(design, compiled=compiled)
    fused = jit.run_batch_summary(states, knowns, flips, batch_size,
                                  path="jit")
    assert jit.last_summary_path == "jit"
    return reference, fused


def assert_identical(a: BatchOutcomeArrays, b: BatchOutcomeArrays):
    assert np.array_equal(a.injected, b.injected)
    assert np.array_equal(a.detected, b.detected)
    assert np.array_equal(a.uncorrectable, b.uncorrectable)
    assert np.array_equal(a.residual_errors, b.residual_errors)
    assert np.array_equal(a.corrections_applied, b.corrections_applied)


# ----------------------------------------------------------------------
# Bit-identity across the full matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("compiled", COMPILED_MODES,
                         ids=["pure", "njit"][:len(COMPILED_MODES)])
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize(
    "codes,num_chains,num_registers",
    [config[1:] for config in CONFIGS],
    ids=[config[0] for config in CONFIGS])
@pytest.mark.parametrize("kind", ("single", "burst", "multiple", "none"))
def test_jit_matches_dense(codes, num_chains, num_registers, kind,
                           batch_size, compiled):
    design = _design(codes, num_chains, num_registers)
    rng = np.random.default_rng(20100308 + batch_size)
    sampled = sample_pattern_batch(kind, design.num_chains,
                                   design.chain_length, batch_size, rng,
                                   num_errors=4)
    assert_identical(*_both_engines(design, sampled, batch_size,
                                    compiled=compiled))


@pytest.mark.parametrize("compiled", COMPILED_MODES,
                         ids=["pure", "njit"][:len(COMPILED_MODES)])
@pytest.mark.parametrize("kind", ("single", "multiple"))
def test_jit_matches_dense_paper_config(kind, compiled):
    """The paper's 32x32 FIFO / 80-chain configuration, the geometry
    the committed campaign_jit_path benchmark runs on."""
    design = _paper_design()
    rng = np.random.default_rng(42)
    sampled = sample_pattern_batch(kind, design.num_chains,
                                   design.chain_length, 257, rng,
                                   num_errors=3)
    assert_identical(*_both_engines(design, sampled, 257,
                                    compiled=compiled))


@pytest.mark.parametrize("compiled", COMPILED_MODES,
                         ids=["pure", "njit"][:len(COMPILED_MODES)])
def test_jit_matches_at_64k_batch(compiled):
    """The benchmark's batch regime (>= 64k sequences): the CSR walk,
    the prange partitioning and the short final word all hold up.
    Compared against the simd delta path (itself property-tested
    identical to dense) to keep the reference side fast."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    rng = np.random.default_rng(7)
    batch_size = 65536
    sampled = sample_pattern_batch("single", design.num_chains,
                                   design.chain_length, batch_size, rng)
    assert_identical(*_both_engines(design, sampled, batch_size,
                                    compiled=compiled,
                                    simd_path="delta"))


@pytest.mark.parametrize("compiled", COMPILED_MODES,
                         ids=["pure", "njit"][:len(COMPILED_MODES)])
def test_jit_matches_dense_dict_flips(compiled):
    """The legacy dict-of-masks flips form goes through the same CSR
    extraction."""
    design = _design(["secded(8,4)", "crc16"], 6, 24)
    length = design.chain_length
    flips = {(0, 1): 0b1011, (1, 3): 0b10, (2, 0): 1 << (length - 1),
             (5, 2): 0b1000}
    assert_identical(*_both_engines(design, flips, 9,
                                    compiled=compiled))


@pytest.mark.parametrize("compiled", COMPILED_MODES,
                         ids=["pure", "njit"][:len(COMPILED_MODES)])
def test_jit_matches_dense_with_unknown_cells(compiled):
    """Unknown cells: flips landing there are dropped, residuals count
    the unknown pre-sleep positions -- identically on both engines."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    states, knowns = _punch_holes(*_pack(design))
    rng = np.random.default_rng(3)
    sampled = sample_pattern_batch("burst", design.num_chains,
                                   design.chain_length, 100, rng,
                                   num_errors=5)
    assert_identical(*_both_engines(design, sampled, 100,
                                    compiled=compiled, states=states,
                                    knowns=knowns))


# ----------------------------------------------------------------------
# Path selection and fallbacks
# ----------------------------------------------------------------------
def test_auto_takes_the_fused_kernel():
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    states, knowns = _pack(design)
    engine = _jit_engine(design)
    rng = np.random.default_rng(1)
    sampled = sample_pattern_batch("single", design.num_chains,
                                   design.chain_length, 32, rng)
    engine.run_batch_summary(states, knowns, sampled, 32)
    assert engine.last_summary_path == "jit"


def test_delta_and_dense_paths_stay_selectable():
    """The inherited numpy implementations remain forcible for A/B
    comparison and agree with the kernel."""
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    states, knowns = _pack(design)
    engine = _jit_engine(design)
    rng = np.random.default_rng(1)
    sampled = sample_pattern_batch("burst", design.num_chains,
                                   design.chain_length, 64, rng,
                                   num_errors=3)
    results = {}
    for path in ("jit", "delta", "dense"):
        results[path] = engine.run_batch_summary(states, knowns,
                                                 sampled, 64, path=path)
        assert engine.last_summary_path == path
    assert_identical(results["jit"], results["delta"])
    assert_identical(results["jit"], results["dense"])


def _unsupported_design():
    """Two correcting block families sharing chains: superposition
    cannot express the last-block-wins replay, so the delta plan (and
    with it the fused kernel) refuses the structure."""
    circuit = make_random_state_circuit(48, seed=2)
    return ProtectedDesign(circuit,
                           codes=["hamming(7,4)", "secded(8,4)"],
                           num_chains=6, engine="simd", lfsr_seed=5)


def test_auto_falls_back_to_dense_on_unsupported_structure():
    design = _unsupported_design()
    states, knowns = _pack(design)
    engine = _jit_engine(design)
    rng = np.random.default_rng(1)
    sampled = sample_pattern_batch("single", design.num_chains,
                                   design.chain_length, 16, rng)
    from repro.engines.registry import get_engine
    reference = get_engine("simd", design).run_batch_summary(
        states, knowns, sampled, 16, path="dense")
    arrays = engine.run_batch_summary(states, knowns, sampled, 16)
    assert engine.last_summary_path == "dense"
    assert_identical(reference, arrays)


def test_forced_jit_fails_loudly_on_unsupported_structure():
    design = _unsupported_design()
    states, knowns = _pack(design)
    engine = _jit_engine(design)
    with pytest.raises(ValueError,
                       match="summary path 'jit' is unavailable"):
        engine.run_batch_summary(states, knowns, {}, 4, path="jit")


def test_unknown_path_name_rejected():
    design = _design(["hamming(7,4)"], 4, 16)
    engine = _jit_engine(design)
    states, knowns = _pack(design)
    with pytest.raises(ValueError, match="unknown summary path"):
        engine.run_batch_summary(states, knowns, {}, 4, path="fused")
    assert JIT_SUMMARY_PATHS == ("auto", "jit", "delta", "dense")


# ----------------------------------------------------------------------
# Conditional registration and the forced-selection error shape
# ----------------------------------------------------------------------
def test_jit_registration_tracks_numba():
    """Registered exactly when numba is importable; silently absent
    otherwise (the CI graceful-degradation smoke's assertion)."""
    assert ("jit" in available_engines()) == HAVE_NUMBA


@pytest.mark.parametrize("name", ("jit", "cuda"))
def test_forced_optional_engine_error_is_actionable(name):
    """Forcing an optional engine on an install without its dependency
    raises the same shape for jit as for cuda: 'unknown engine' plus
    the gating module, not a bare typo-style error."""
    module, _ = CONDITIONAL_ENGINES[name]
    import importlib.util
    if importlib.util.find_spec(module) is not None:
        pytest.skip(f"{module} installed; {name!r} is registered")
    with pytest.raises(ValueError) as excinfo:
        validate_engine(name)
    message = str(excinfo.value)
    assert "unknown engine" in message
    assert module in message
    assert f"'{name}'" in message


def test_compiled_true_without_numba_raises_import_error():
    design = _design(["hamming(7,4)"], 4, 16)
    if HAVE_NUMBA:
        engine = _jit_engine(design, compiled=True)
        assert engine.compiled
    else:
        with pytest.raises(ImportError, match=r"\[jit\] packaging extra"):
            _jit_engine(design, compiled=True)


# ----------------------------------------------------------------------
# The process-wide warm-up hook
# ----------------------------------------------------------------------
class _RecordingKernel:
    """Stands in for the njit-compiled kernel: counts invocations and
    delegates to the pure-Python kernel so outputs stay real."""

    def __init__(self):
        self.calls = 0

    def __call__(self, *args):
        self.calls += 1
        return jit_module._fused_summary(*args)


def test_warm_up_is_a_noop_without_numba(monkeypatch):
    monkeypatch.setattr(jit_module, "_fused_summary_compiled", None)
    monkeypatch.setattr(jit_module, "_WARMED", False)
    assert warm_up_kernels() is False
    assert jit_module._WARMED is False


def test_warm_up_runs_once_and_latches(monkeypatch):
    kernel = _RecordingKernel()
    monkeypatch.setattr(jit_module, "_fused_summary_compiled", kernel)
    monkeypatch.setattr(jit_module, "_WARMED", False)
    assert warm_up_kernels() is True
    assert kernel.calls == 1
    # Idempotent: later (defensive) calls return without re-running.
    assert warm_up_kernels() is True
    assert warm_up_kernels() is True
    assert kernel.calls == 1
    # The test hook re-runs the synthetic call.
    assert warm_up_kernels(force=True) is True
    assert kernel.calls == 2


def test_engine_construction_warms_the_kernels(monkeypatch):
    """Sharded workers build the engine at the top of a chunk; that
    construction must already pay the warm-up, so no timed batch eats
    the first-call latency."""
    kernel = _RecordingKernel()
    monkeypatch.setattr(jit_module, "_fused_summary_compiled", kernel)
    monkeypatch.setattr(jit_module, "_WARMED", False)
    design = _design(["hamming(7,4)", "crc16"], 8, 56)
    engine = _jit_engine(design, compiled=True)
    assert jit_module._WARMED is True
    assert kernel.calls == 1
    # The engine's summary pass then uses the same (stubbed) kernel --
    # and stays bit-identical through it.
    states, knowns = _pack(design)
    rng = np.random.default_rng(5)
    sampled = sample_pattern_batch("single", design.num_chains,
                                   design.chain_length, 16, rng)
    arrays = engine.run_batch_summary(states, knowns, sampled, 16)
    assert kernel.calls == 2
    from repro.engines.registry import get_engine
    reference = get_engine("simd", design).run_batch_summary(
        states, knowns, sampled, 16, path="dense")
    assert_identical(reference, arrays)


def test_pure_python_engine_skips_warm_up(monkeypatch):
    kernel = _RecordingKernel()
    monkeypatch.setattr(jit_module, "_fused_summary_compiled", kernel)
    monkeypatch.setattr(jit_module, "_WARMED", False)
    design = _design(["hamming(7,4)"], 4, 16)
    engine = _jit_engine(design, compiled=False)
    assert not engine.compiled
    assert kernel.calls == 0
    assert jit_module._WARMED is False
