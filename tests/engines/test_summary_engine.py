"""Engine-level contract of the columnar summary interface."""

import pytest

np = pytest.importorskip("numpy")

from repro.circuit.generators import make_random_state_circuit  # noqa: E402
from repro.core.protected import ProtectedDesign                # noqa: E402
from repro.engines.base import BatchOutcomeArrays               # noqa: E402
from repro.engines.registry import get_engine                   # noqa: E402
from repro.engines.summary import (                             # noqa: E402
    bits_matrix,
    mask_bools,
    residual_counts_words,
)


def _design(engine, codes=("hamming(7,4)", "crc16")):
    circuit = make_random_state_circuit(64, seed=11)
    return ProtectedDesign(circuit, codes=list(codes), num_chains=8,
                           engine=engine, lfsr_seed=5)


def test_summary_capability_flags():
    design = _design("reference")
    assert get_engine("simd", design).supports_summary
    assert get_engine("batched", design).supports_summary
    assert not get_engine("packed", design).supports_summary
    assert not get_engine("reference", design).supports_summary
    assert not design.supports_batch_summary
    design.set_engine("simd")
    assert design.supports_batch_summary


def test_non_summary_engine_raises():
    design = _design("packed")
    with pytest.raises(ValueError, match="summary"):
        design.sleep_wake_cycle_batch_summary({}, 4)
    engine = get_engine("packed", design)
    with pytest.raises(NotImplementedError):
        engine.run_batch_summary([0] * 8, [0] * 8, {}, 4)


def test_summary_validates_flips_eagerly():
    design = _design("simd")
    with pytest.raises(ValueError, match="outside"):
        design.sleep_wake_cycle_batch_summary({(99, 0): 1}, 4)
    with pytest.raises(ValueError, match="outside"):
        design.sleep_wake_cycle_batch_summary({(0, 0): 1 << 7}, 4)
    # Neither failure may strand the controller outside ACTIVE.
    design.sleep_wake_cycle_batch_summary({(0, 0): 1}, 4)


def test_summary_validates_pattern_batch_eagerly():
    """Malformed PatternBatch coordinates fail before the controller
    leaves ACTIVE (negative indices would otherwise wrap silently in
    the ndarray scatters)."""
    from repro.faults.batch import PatternBatch

    design = _design("simd")
    length = design.chain_length

    def batch(chain=0, position=0, seq=0, num_chains=8,
              chain_length=None, batch_size=4):
        return PatternBatch(
            num_chains, chain_length or length, batch_size, "single",
            np.array([seq]), np.array([chain]), np.array([position]))

    with pytest.raises(ValueError, match="scan array"):
        design.sleep_wake_cycle_batch_summary(batch(num_chains=9), 4)
    with pytest.raises(ValueError, match="sequences"):
        design.sleep_wake_cycle_batch_summary(batch(batch_size=5), 4)
    for bad in (batch(chain=-1), batch(chain=8), batch(position=-1),
                batch(position=length), batch(seq=-1), batch(seq=4)):
        with pytest.raises(ValueError, match="outside"):
            design.sleep_wake_cycle_batch_summary(bad, 4)
    # None of the failures stranded the controller outside ACTIVE.
    design.sleep_wake_cycle_batch_summary(batch(), 4)


@pytest.mark.parametrize("engine", ("simd", "batched"))
def test_engine_summary_matches_batch_masks(engine):
    """run_batch_summary's detected/uncorrectable columns equal the
    decode_pass_batch masks for the same injected batch."""
    from repro.engines.packing import pack_chains, replicate_states
    from repro.faults.batch import apply_batch_flips

    batch = 21
    design = _design(engine)
    flips = {(0, 1): 0b101, (1, 3): 0b10, (2, 0): 1 << 20,
             (3, 2): 0b1000, (4, 2): 0b1000}
    summary = get_engine(engine, design).run_batch_summary(
        *pack_chains(design.chains), flips, batch)

    reference = get_engine(engine, design)
    states, knowns = pack_chains(design.chains)
    planes = replicate_states(states, design.chain_length,
                              (1 << batch) - 1)
    reference.encode_pass_batch(planes, knowns, batch)
    injected = apply_batch_flips(planes, knowns, flips, batch)
    result = reference.decode_pass_batch(planes, knowns, batch)

    assert np.array_equal(summary.detected,
                          mask_bools(result.detected_mask, batch))
    assert np.array_equal(summary.uncorrectable,
                          mask_bools(result.uncorrectable_mask, batch))
    assert summary.injected.tolist() == injected
    counts = [result.corrections.get(b, 0) for b in range(batch)]
    assert summary.corrections_applied.tolist() == counts


def test_simd_batch_result_carries_corrected_words():
    """The simd object path attaches its word-packed corrected state,
    and the vectorised comparator over it matches the plane content."""
    from repro.engines.packing import pack_chains, replicate_states
    from repro.engines.simd import planes_to_words
    from repro.faults.batch import apply_batch_flips

    batch = 9
    design = _design("simd")
    engine = get_engine("simd", design)
    states, knowns = pack_chains(design.chains)
    planes = replicate_states(states, design.chain_length,
                              (1 << batch) - 1)
    engine.encode_pass_batch(planes, knowns, batch)
    apply_batch_flips(planes, knowns, {(0, 0): 0b11, (5, 4): 0b100},
                      batch)
    result = engine.decode_pass_batch(planes, knowns, batch)
    assert result.corrected_words is not None
    assert np.array_equal(result.corrected_words,
                          planes_to_words(result.corrected, batch))


def test_residual_counts_words_unknown_rule():
    """Unknown pre-sleep positions always count, known positions count
    only where the corrected bit differs."""
    states = [0b0101, 0b0000]
    knowns = [0b1111, 0b1011]   # chain 1 position 2 is unknown
    batch = 3
    full = np.array([0b111], dtype=np.uint64)
    state_bits = bits_matrix(states, 4)
    corrected = np.where(state_bits[:, :, None], full, np.uint64(0))
    base = residual_counts_words(states, knowns, corrected, batch)
    assert base.tolist() == [1, 1, 1]        # the unknown position only
    corrected[0, 3] ^= np.uint64(0b010)      # flip one bit of sequence 1
    corrected[1, 2] ^= np.uint64(0b111)      # unknown position: no change
    counts = residual_counts_words(states, knowns, corrected, batch)
    assert counts.tolist() == [1, 2, 1]


def test_summary_outcome_array_properties():
    arrays = BatchOutcomeArrays(
        injected=np.array([1, 0]),
        detected=np.array([True, False]),
        uncorrectable=np.array([False, False]),
        residual_errors=np.array([0, 2]),
        corrections_applied=np.array([1, 0]))
    assert arrays.batch_size == 2
    assert arrays.state_intact.tolist() == [True, False]
    assert arrays.corrected_claim.tolist() == [True, False]
