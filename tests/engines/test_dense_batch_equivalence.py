"""Batch equivalence under *dense* fault patterns, for every
batch-capable engine.

The single-error regime the original property tests leaned on is the
batch engines' best case: almost no per-sequence work.  Dense patterns
-- burst windows spanning chain and monitoring-block boundaries,
multi-error storms, droop storms where a sizeable fraction of all
retention latches flips -- exercise the exact paths that degenerate
(scalar fallback in the bit-plane engine, vectorised correction
scatter in the SIMD engine).  Every engine advertising
``capabilities.batch`` is discovered from the registry and checked
against the per-sequence reference fallback, so third-party batch
engines get the same scrutiny for free.
"""

import importlib.util
import random
import zlib

import pytest

from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.engines.registry import available_engines, get_engine
from repro.faults.droop import DroopFaultInjector
from repro.faults.patterns import (
    ErrorPattern,
    burst_error_pattern,
    multi_error_pattern,
)
from repro.power.retention import RetentionUpsetModel

CODES = ["hamming(7,4)", "crc16"]
NUM_CHAINS = 8
NUM_REGISTERS = 56


def _design(engine, seed=42):
    circuit = make_random_state_circuit(NUM_REGISTERS, seed=seed)
    return ProtectedDesign(circuit, codes=CODES, num_chains=NUM_CHAINS,
                           engine=engine)


def batch_capable_engines():
    """Registry engines advertising the batch interface (construction
    errors mean "engine does not support this configuration")."""
    probe = _design("reference")
    names = []
    for name in available_engines():
        try:
            engine = get_engine(name, probe)
        except ValueError:
            continue
        if engine.supports_batch:
            names.append(name)
    return names


def test_batch_capable_engines_discovered():
    names = batch_capable_engines()
    assert "batched" in names
    if importlib.util.find_spec("numpy") is not None:
        assert "simd" in names


def _boundary_burst(design, rng):
    """A burst window straddling a chain/monitoring-block boundary.

    The window covers the last chain of one Hamming block and the
    first chain of the next (monitor_width = 4 here), across several
    adjacent scan positions -- the clustered multi-chain corruption of
    the paper's Fig. 7(b), landing in *two* codewords per slice.
    """
    length = design.chain_length
    block_edge = 4 * rng.randrange(1, design.num_chains // 4)
    position0 = rng.randrange(length - 2)
    span = rng.randrange(2, min(4, length - position0) + 1)
    locations = frozenset(
        (chain, position0 + dp)
        for chain in (block_edge - 1, block_edge)
        for dp in range(span))
    return ErrorPattern(locations=locations, kind="burst")


def _droop_storm(design, rng):
    """A physically derived storm: the wake-up droop upsets a large
    fraction of the retention latches at once."""
    injector = DroopFaultInjector(
        upset_model=RetentionUpsetModel(nominal_margin=0.05, slope=0.05,
                                        seed=rng.randrange(2**31)))
    flops = [flop for chain in design.chains for flop in chain.flops]
    pattern = injector.inject(flops, chain_length=design.chain_length)
    assert pattern.num_errors >= len(flops) // 4, \
        "storm fixture lost its density"
    return pattern


def _pattern_batch(design, rng, batch_size=9):
    length = design.chain_length
    makers = [
        lambda: _boundary_burst(design, rng),
        lambda: burst_error_pattern(design.num_chains, length,
                                    rng.randrange(4, 9), rng),
        lambda: multi_error_pattern(design.num_chains, length,
                                    (design.num_chains * length) // 4,
                                    rng),
        lambda: _droop_storm(design, rng),
    ]
    return [makers[i % len(makers)]() for i in range(batch_size)]


def _outcome_tuple(outcome):
    return (outcome.injected_errors, outcome.detected,
            outcome.corrected_claim, outcome.state_intact,
            outcome.residual_errors, outcome.error_code,
            outcome.corrections_applied, outcome.reports)


@pytest.mark.parametrize("engine", batch_capable_engines())
@pytest.mark.parametrize("batch_size", (1, 9, 65))
def test_dense_batches_match_reference(engine, batch_size):
    rng = random.Random(zlib.crc32(f"{engine}/{batch_size}".encode()))
    reference = _design("reference")
    under_test = _design(engine)
    for trial in range(2):
        patterns = _pattern_batch(reference, rng, batch_size)
        phase = rng.choice(["sleep", "post_wake"])
        expected = reference.sleep_wake_cycle_batch(patterns,
                                                    inject_phase=phase)
        actual = under_test.sleep_wake_cycle_batch(patterns,
                                                   inject_phase=phase)
        assert len(expected) == len(actual) == batch_size
        for exp, act in zip(expected, actual):
            assert _outcome_tuple(act) == _outcome_tuple(exp)
        # Dense batches leave the design state untouched too.
        assert [c.read_state() for c in under_test.chains] == \
            [c.read_state() for c in reference.chains]


@pytest.mark.parametrize("engine", batch_capable_engines())
def test_every_sequence_dense_burst(engine):
    """The dense-campaign regime itself: 100% of sequences carry a
    multi-bit burst (no clean sequences to amortise against)."""
    rng = random.Random(20100310)
    reference = _design("reference", seed=7)
    under_test = _design(engine, seed=7)
    patterns = [burst_error_pattern(reference.num_chains,
                                    reference.chain_length, 6, rng)
                for _ in range(16)]
    expected = reference.sleep_wake_cycle_batch(patterns)
    actual = under_test.sleep_wake_cycle_batch(patterns)
    for exp, act in zip(expected, actual):
        assert _outcome_tuple(act) == _outcome_tuple(exp)
        assert act.detected  # every burst is at least detected
