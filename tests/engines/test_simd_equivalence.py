"""Bit-exactness of the numpy word-packed SIMD engine.

Mirrors the bit-plane equivalence suite: ``sleep_wake_cycle_batch`` on
``engine="simd"`` must match the per-sequence reference fallback bit
for bit (outcome fields, per-block reports including correction
events, final register state) across every registered code family,
geometries with and without padding, batch sizes including B=1 and
non-powers-of-two (and word-boundary-straddling sizes like 65), and
single/burst/dense fault patterns.  Engine-level heterogeneous-state
batches are cross-checked against the packed engine.
"""

import random
import zlib

import pytest

np = pytest.importorskip("numpy")

from repro.circuit.generators import make_random_state_circuit
from repro.codes.base import CodeError
from repro.codes.plane import block_parity_matrix, crc_stream_matrix
from repro.codes.registry import get_code
from repro.core.protected import ProtectedDesign
from repro.engines.packing import planes_from_states, states_from_planes
from repro.engines.registry import available_engines, get_engine
from repro.engines.simd import full_words, planes_to_words, words_to_planes
from repro.fastpath.engine import PackedMonitorEngine
from repro.faults.patterns import (
    burst_error_pattern,
    multi_error_pattern,
    random_pattern,
    single_error_pattern,
)

#: Same configuration matrix as the bit-plane suite: every registered
#: code family, the stacked paper configuration, padded geometries and
#: tied-off tail blocks.
CONFIGS = [
    ("hamming74_crc16", ["hamming(7,4)", "crc16"], 8, 56),
    ("hamming74_padded", "hamming(7,4)", 5, 33),
    ("hamming1511", "hamming(15,11)", 11, 44),
    ("hamming3126", "hamming(31,26)", 6, 30),
    ("hamming6357_tail", "hamming(63,57)", 6, 24),
    ("secded84", "secded(8,4)", 8, 40),
    ("parity8", "parity(8)", 8, 32),
    ("crc16_ibm", "crc16-ibm", 4, 36),
    ("crc16_ccitt", "crc16-ccitt", 4, 28),
    ("crc8", "crc8", 3, 21),
    ("crc12", "crc12", 4, 24),
    ("crc32", "crc32", 4, 32),
]

#: 65 straddles the first uint64 word boundary.
BATCH_SIZES = (1, 3, 8, 65)


def _pair(seed, num_registers, codes, num_chains):
    designs = []
    for engine in ("reference", "simd"):
        circuit = make_random_state_circuit(num_registers, seed=seed)
        designs.append(ProtectedDesign(circuit, codes=codes,
                                       num_chains=num_chains,
                                       engine=engine))
    return designs


def _patterns(design, batch_size, rng):
    """Mixed-density batch: clean, single, burst, multi and storm."""
    patterns = []
    w, l = design.num_chains, design.chain_length
    for _ in range(batch_size):
        kind = rng.choice(["none", "single", "burst", "multi", "storm"])
        if kind == "none":
            patterns.append(None)
        elif kind == "single":
            patterns.append(single_error_pattern(w, l, rng))
        elif kind == "burst":
            patterns.append(burst_error_pattern(w, l, 4, rng))
        elif kind == "multi":
            patterns.append(multi_error_pattern(w, l, 3, rng))
        else:
            patterns.append(random_pattern(w, l, 0.2, rng))
    return patterns


def _outcome_tuple(outcome):
    return (outcome.injected_errors, outcome.detected,
            outcome.corrected_claim, outcome.state_intact,
            outcome.residual_errors, outcome.error_code,
            outcome.corrections_applied, outcome.reports)


def test_simd_registered():
    assert "simd" in available_engines()
    assert "simd" in ProtectedDesign.available_engines()


@pytest.mark.parametrize("label,codes,num_chains,num_registers", CONFIGS)
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_cycle_equivalence(label, codes, num_chains, num_registers,
                                 batch_size):
    rng = random.Random(zlib.crc32(f"simd/{label}/{batch_size}".encode()))
    design_ref, design_simd = _pair(42, num_registers, codes, num_chains)
    for trial in range(2):
        patterns = _patterns(design_ref, batch_size, rng)
        phase = rng.choice(["sleep", "post_wake"])
        ref = design_ref.sleep_wake_cycle_batch(patterns,
                                                inject_phase=phase)
        simd = design_simd.sleep_wake_cycle_batch(patterns,
                                                  inject_phase=phase)
        assert len(ref) == len(simd) == batch_size
        for expected, actual in zip(ref, simd):
            assert _outcome_tuple(actual) == _outcome_tuple(expected)
        states_ref = [c.read_state() for c in design_ref.chains]
        states_simd = [c.read_state() for c in design_simd.chains]
        assert states_simd == states_ref


def test_scalar_cycles_on_simd_engine():
    """engine="simd" must also serve plain sleep_wake_cycle calls,
    bit-exact against the reference (a batch of one)."""
    ref, simd = _pair(8, 56, ["secded(8,4)", "crc16"], 8)
    rng = random.Random(31)
    for trial in range(4):
        pattern = multi_error_pattern(ref.num_chains, ref.chain_length,
                                      rng.randint(1, 3), rng)
        expected = ref.sleep_wake_cycle(injection=pattern)
        actual = simd.sleep_wake_cycle(injection=pattern)
        assert _outcome_tuple(actual) == _outcome_tuple(expected)
        assert [c.read_state() for c in simd.chains] == \
            [c.read_state() for c in ref.chains]


def test_batch_with_unknown_bits():
    designs = _pair(3, 20, ["hamming(7,4)", "crc16"], 4)
    for design in designs:
        design.chains[1].flops[2].force(None)
        design.chains[3].flops[0].force(None)
    rng = random.Random(23)
    patterns = [None] + [single_error_pattern(4, 5, rng) for _ in range(4)]
    ref = designs[0].sleep_wake_cycle_batch(patterns)
    simd = designs[1].sleep_wake_cycle_batch(patterns)
    for expected, actual in zip(ref, simd):
        assert _outcome_tuple(actual) == _outcome_tuple(expected)
    assert not any(outcome.state_intact for outcome in simd)


def test_overlapping_correcting_blocks_batch():
    """Correcting blocks sharing chains trigger the vectorised
    last-block-wins reassignment; it must match the reference."""
    codes = ["hamming(7,4)", "hamming(15,11)"]
    design_ref, design_simd = _pair(7, 44, codes, 4)
    engine = get_engine("simd", design_simd)
    assert engine._overlapping_correctors
    rng = random.Random(13)
    patterns = [multi_error_pattern(design_ref.num_chains,
                                    design_ref.chain_length,
                                    rng.randint(1, 3), rng)
                for _ in range(5)]
    ref = design_ref.sleep_wake_cycle_batch(patterns)
    simd = design_simd.sleep_wake_cycle_batch(patterns)
    for expected, actual in zip(ref, simd):
        assert _outcome_tuple(actual) == _outcome_tuple(expected)


def test_adapter_codes_are_rejected_with_guidance():
    """Codes without a structured GF(2) form fail engine construction
    with a pointer at the bit-plane engine."""
    from repro.codes.interleave import InterleavedCode

    circuit = make_random_state_circuit(32, seed=5)
    code = InterleavedCode(get_code("hamming(7,4)"), depth=2)
    design = ProtectedDesign(circuit, codes=code, num_chains=8,
                             engine="reference")
    with pytest.raises(ValueError, match="batched"):
        get_engine("simd", design)


class TestEngineLevelBatch:
    """decode_pass_batch over heterogeneous per-sequence states."""

    def _engines(self, codes, num_chains, num_registers):
        circuit = make_random_state_circuit(num_registers, seed=2)
        design = ProtectedDesign(circuit, codes=codes,
                                 num_chains=num_chains)
        simd = get_engine("simd", design)
        packed = PackedMonitorEngine(design.monitor_bank,
                                     simd.num_chains, simd.chain_length)
        return design, simd, packed

    @pytest.mark.parametrize("codes,num_chains,num_registers", [
        (["hamming(7,4)", "crc16"], 8, 56),
        (["secded(8,4)"], 8, 40),
        (["crc16-ccitt"], 4, 28),
        (["parity(8)"], 8, 32),
    ])
    @pytest.mark.parametrize("batch_size", (1, 5, 16, 65))
    def test_heterogeneous_states_match_packed(self, codes, num_chains,
                                               num_registers, batch_size):
        design, simd, packed = self._engines(codes, num_chains,
                                             num_registers)
        length = simd.chain_length
        rng = random.Random(batch_size)
        knowns = [(1 << length) - 1] * simd.num_chains
        base = [[rng.getrandbits(length) for _ in range(simd.num_chains)]
                for _ in range(batch_size)]
        corrupted = []
        for states in base:
            flipped = list(states)
            for _ in range(rng.randint(0, 4)):
                flipped[rng.randrange(simd.num_chains)] ^= \
                    1 << rng.randrange(length)
            corrupted.append(flipped)

        simd.encode_pass_batch(planes_from_states(base, length), knowns,
                               batch_size)
        result = simd.decode_pass_batch(
            planes_from_states(corrupted, length), knowns, batch_size)

        for b in range(batch_size):
            packed.encode_pass(base[b], knowns)
            reports, corrected = packed.decode_pass(corrupted[b], knowns)
            assert list(result.reports[b]) == reports
            assert states_from_planes(result.corrected, b) == corrected

    def test_decode_before_encode_raises(self):
        design, simd, _packed = self._engines(["crc16"], 4, 20)
        length = simd.chain_length
        planes = [[0] * length for _ in range(simd.num_chains)]
        knowns = [(1 << length) - 1] * simd.num_chains
        with pytest.raises(RuntimeError):
            simd.decode_pass_batch(planes, knowns, 2)

    def test_batch_size_mismatch_raises(self):
        design, simd, _packed = self._engines(["crc16"], 4, 20)
        length = simd.chain_length
        planes = [[0] * length for _ in range(simd.num_chains)]
        knowns = [(1 << length) - 1] * simd.num_chains
        simd.encode_pass_batch(planes, knowns, 4)
        with pytest.raises(RuntimeError):
            simd.decode_pass_batch(planes, knowns, 5)

    def test_geometry_validation(self):
        design, simd, _packed = self._engines(["crc16"], 4, 20)
        length = simd.chain_length
        knowns = [(1 << length) - 1] * simd.num_chains
        with pytest.raises(ValueError):
            simd.encode_pass_batch([[0] * length] * 2, knowns[:2], 2)
        bad = [[0] * length for _ in range(simd.num_chains)]
        bad[0][0] = 1 << 2  # bit outside a 2-sequence batch
        with pytest.raises(ValueError):
            simd.encode_pass_batch(bad, knowns, 2)
        negative = [[0] * length for _ in range(simd.num_chains)]
        negative[0][0] = -1
        with pytest.raises(ValueError):
            simd.encode_pass_batch(negative, knowns, 2)
        unknown = list(knowns)
        unknown[1] &= ~2  # position 1 of chain 1 is unknown...
        dirty = [[0] * length for _ in range(simd.num_chains)]
        dirty[1][1] = 1  # ...but carries a non-zero plane
        with pytest.raises(ValueError):
            simd.encode_pass_batch(dirty, unknown, 2)


class TestWordPacking:
    """The plane <-> uint64-word boundary helpers."""

    @pytest.mark.parametrize("batch_size", (1, 63, 64, 65, 130))
    def test_round_trip(self, batch_size):
        rng = random.Random(batch_size)
        planes = [[rng.getrandbits(batch_size) for _ in range(3)]
                  for _ in range(2)]
        words = planes_to_words(planes, batch_size)
        assert words.shape == (2, 3, (batch_size + 63) // 64)
        assert words_to_planes(words) == planes

    def test_out_of_batch_bits_rejected(self):
        with pytest.raises(ValueError):
            planes_to_words([[1 << 65]], 65)
        with pytest.raises(ValueError):
            planes_to_words([[1 << 64]], 3)
        with pytest.raises(ValueError):
            planes_to_words([[-1]], 3)

    @pytest.mark.parametrize("batch_size", (1, 64, 65))
    def test_full_words(self, batch_size):
        mask = full_words(batch_size)
        value = int.from_bytes(mask.tobytes(), "little")
        assert value == (1 << batch_size) - 1


class TestSharedGF2Matrices:
    """The repro.codes.plane matrices both batch engines consume."""

    @pytest.mark.parametrize("name", [
        "hamming(7,4)", "hamming(15,11)", "secded(8,4)", "parity(8)"])
    def test_block_matrix_matches_packed_parity(self, name):
        from repro.codes.packed import packed_block_code

        code = get_code(name)
        matrix = block_parity_matrix(code)
        packed = packed_block_code(code)
        rng = random.Random(zlib.crc32(name.encode()))
        for _ in range(16):
            data = rng.getrandbits(code.k)
            parity = 0
            for j, (row, const) in enumerate(zip(matrix.rows,
                                                 matrix.const)):
                bit = const
                for index in row:
                    bit ^= (data >> (code.k - 1 - index)) & 1
                parity |= bit << (len(matrix.rows) - 1 - j)
            assert parity == packed.parity(data), name

    def test_block_matrix_rejects_adapter_codes(self):
        from repro.codes.interleave import InterleavedCode

        code = InterleavedCode(get_code("hamming(7,4)"), depth=2)
        with pytest.raises(CodeError):
            block_parity_matrix(code)

    @pytest.mark.parametrize("name", ["crc16", "crc16-ccitt", "crc8",
                                      "crc32"])
    @pytest.mark.parametrize("nbits", (0, 1, 7, 40))
    def test_crc_stream_matrix_matches_packed(self, name, nbits):
        from repro.codes.packed import packed_stream_code

        code = get_code(name)
        matrix = crc_stream_matrix(code, nbits)
        packed = packed_stream_code(code)
        rng = random.Random(zlib.crc32(f"{name}/{nbits}".encode()))
        for _ in range(8):
            stream = rng.getrandbits(nbits) if nbits else 0
            signature = 0
            for j, (row, const) in enumerate(zip(matrix.rows,
                                                 matrix.const)):
                bit = const
                for t in row:
                    bit ^= (stream >> (nbits - 1 - t)) & 1
                signature |= bit << (code.width - 1 - j)
            assert signature == packed.signature_int(stream, nbits)
