"""The engine registry: built-ins, third-party registration, validation."""

import pytest

from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.engines import (
    SimulationEngine,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
    validate_engine,
)
from repro.engines.base import EngineCapabilities


def _design(engine="reference"):
    circuit = make_random_state_circuit(20, seed=1)
    return ProtectedDesign(circuit, codes=["hamming(7,4)", "crc16"],
                           num_chains=4, engine=engine)


class RecordingEngine(SimulationEngine):
    """Third-party engine: reference semantics plus a call log."""

    capabilities = EngineCapabilities(batch=False)

    def __init__(self):
        self.calls = []

    def encode_pass(self, design):
        self.calls.append("encode")
        return design.monitor_bank.encode_pass(design.chains)

    def decode_pass(self, design):
        self.calls.append("decode")
        return design.monitor_bank.decode_pass(design.chains)


class TestBuiltins:
    def test_builtins_registered(self):
        names = available_engines()
        assert "reference" in names
        assert "packed" in names
        assert "batched" in names

    def test_validate_engine_roundtrip(self):
        assert validate_engine("packed") == "packed"

    def test_validate_engine_normalises_case(self):
        """Case variants resolve to the canonical registry key, so the
        design's engine cache never aliases one engine twice."""
        assert validate_engine("Packed") == "packed"
        design = _design(engine="BATCHED")
        assert design.engine == "batched"
        design.set_engine("Packed")
        assert design.engine == "packed"
        first = design._get_packed_engine()
        assert design._resolve_engine().engine is first

    def test_unknown_engine_lists_registered_names(self):
        with pytest.raises(ValueError) as err:
            validate_engine("verilog")
        message = str(err.value)
        assert "verilog" in message
        for name in available_engines():
            assert name in message

    def test_design_classmethods_source_from_registry(self):
        assert ProtectedDesign.available_engines() == available_engines()
        with pytest.raises(ValueError):
            ProtectedDesign.validate_engine("fpga")

    def test_get_engine_builds_per_design(self):
        design = _design()
        engine = get_engine("batched", design)
        assert engine.name == "batched"
        assert engine.supports_batch

    def test_batch_capability_flags(self):
        design = _design()
        assert not get_engine("reference", design).supports_batch
        assert not get_engine("packed", design).supports_batch
        assert get_engine("batched", design).supports_batch

    def test_non_batch_engine_refuses_batch_passes(self):
        design = _design()
        engine = get_engine("reference", design)
        with pytest.raises(NotImplementedError):
            engine.encode_pass_batch([], [], 1)


class TestThirdPartyRegistration:
    def test_registered_engine_appears_everywhere(self):
        register_engine("recording", lambda design: RecordingEngine())
        try:
            # Satellite requirement: registered engines appear in
            # available_engines() and validate_engine automatically.
            assert "recording" in available_engines()
            assert "recording" in ProtectedDesign.available_engines()
            assert ProtectedDesign.validate_engine("recording") \
                == "recording"

            design = _design(engine="recording")
            outcome = design.sleep_wake_cycle()
            assert outcome.state_intact
            engine = design._resolve_engine()
            assert isinstance(engine, RecordingEngine)
            assert engine.calls == ["encode", "decode"]
        finally:
            unregister_engine("recording")
        assert "recording" not in available_engines()

    def test_registered_engine_accepted_by_campaign_drivers(self):
        from repro.campaigns.tasks import FIFOValidationCampaignTask
        from repro.validation.campaign import ValidationCampaign
        from repro.validation.testbench import FIFOTestbench
        from repro.circuit.fifo import SyncFIFO

        register_engine("recording", lambda design: RecordingEngine())
        try:
            task = FIFOValidationCampaignTask(
                width=4, depth=4, num_chains=4, engine="recording")
            assert task.engine == "recording"
            fifo = SyncFIFO(4, 4, name="fifo4x4")
            design = ProtectedDesign(fifo, codes=["hamming(7,4)"],
                                     num_chains=4)
            bench = FIFOTestbench(design, words_per_sequence=2, seed=1)
            campaign = ValidationCampaign(bench, lambda rng: None,
                                          engine="recording")
            result = campaign.run(2)
            assert result.stats.num_sequences == 2
        finally:
            unregister_engine("recording")

    def test_duplicate_registration_requires_replace(self):
        register_engine("dup", lambda design: RecordingEngine())
        try:
            with pytest.raises(ValueError):
                register_engine("dup", lambda design: RecordingEngine())
            register_engine("dup", lambda design: RecordingEngine(),
                            replace=True)
        finally:
            unregister_engine("dup")

    def test_unregister_unknown_raises(self):
        with pytest.raises(ValueError):
            unregister_engine("never-registered")

    def test_factory_must_return_an_engine(self):
        register_engine("broken", lambda design: object())
        try:
            with pytest.raises(TypeError):
                get_engine("broken", _design())
        finally:
            unregister_engine("broken")
