"""Bit-exactness of the bit-plane batched engine.

Two layers of equivalence are enforced:

* **cycle level** -- ``sleep_wake_cycle_batch`` on the batched engine
  must match, per sequence and bit for bit (outcome fields, per-block
  reports including correction events, final register state), the same
  batch run through the per-sequence reference fallback, across every
  registered code family, chain geometries with and without padding,
  and batch sizes including B=1 and non-powers-of-two;
* **engine level** -- ``decode_pass_batch`` over *heterogeneous*
  per-sequence states (each sequence a different random state) must
  match the packed engine run once per sequence.
"""

import random
import zlib

import pytest

from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.engines.packing import planes_from_states, states_from_planes
from repro.engines.registry import get_engine
from repro.fastpath.engine import PackedMonitorEngine
from repro.faults.patterns import (
    burst_error_pattern,
    multi_error_pattern,
    single_error_pattern,
)

#: (label, codes, num_chains, num_registers) -- every registered code
#: family appears at least once (the full CRC table, the whole paper
#: Hamming family, SECDED and parity), plus the paper's stacked
#: Hamming+CRC configuration and geometries that force padding cells
#: and tied-off tail blocks.
CONFIGS = [
    ("hamming74_crc16", ["hamming(7,4)", "crc16"], 8, 56),
    ("hamming74_padded", "hamming(7,4)", 5, 33),
    ("hamming1511", "hamming(15,11)", 11, 44),
    ("hamming3126", "hamming(31,26)", 6, 30),
    ("hamming6357_tail", "hamming(63,57)", 6, 24),
    ("secded84", "secded(8,4)", 8, 40),
    ("parity8", "parity(8)", 8, 32),
    ("crc16_ibm", "crc16-ibm", 4, 36),
    ("crc16_ccitt", "crc16-ccitt", 4, 28),
    ("crc8", "crc8", 3, 21),
    ("crc12", "crc12", 4, 24),
    ("crc32", "crc32", 4, 32),
]

BATCH_SIZES = (1, 3, 8)


def _pair(seed, num_registers, codes, num_chains):
    designs = []
    for engine in ("reference", "batched"):
        circuit = make_random_state_circuit(num_registers, seed=seed)
        designs.append(ProtectedDesign(circuit, codes=codes,
                                       num_chains=num_chains,
                                       engine=engine))
    return designs


def _patterns(design, batch_size, rng):
    patterns = []
    w, l = design.num_chains, design.chain_length
    for _ in range(batch_size):
        kind = rng.choice(["none", "single", "single", "burst", "multi"])
        if kind == "none":
            patterns.append(None)
        elif kind == "single":
            patterns.append(single_error_pattern(w, l, rng))
        elif kind == "burst":
            patterns.append(burst_error_pattern(w, l, 4, rng))
        else:
            patterns.append(multi_error_pattern(w, l, 3, rng))
    return patterns


def _outcome_tuple(outcome):
    return (outcome.injected_errors, outcome.detected,
            outcome.corrected_claim, outcome.state_intact,
            outcome.residual_errors, outcome.error_code,
            outcome.corrections_applied, outcome.reports)


@pytest.mark.parametrize("label,codes,num_chains,num_registers", CONFIGS)
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_cycle_equivalence(label, codes, num_chains, num_registers,
                                 batch_size):
    rng = random.Random(zlib.crc32(f"{label}/{batch_size}".encode()))
    design_ref, design_bat = _pair(42, num_registers, codes, num_chains)
    for trial in range(2):
        patterns = _patterns(design_ref, batch_size, rng)
        phase = rng.choice(["sleep", "post_wake"])
        ref = design_ref.sleep_wake_cycle_batch(patterns,
                                                inject_phase=phase)
        bat = design_bat.sleep_wake_cycle_batch(patterns,
                                                inject_phase=phase)
        assert len(ref) == len(bat) == batch_size
        for expected, actual in zip(ref, bat):
            assert _outcome_tuple(actual) == _outcome_tuple(expected)
        states_ref = [c.read_state() for c in design_ref.chains]
        states_bat = [c.read_state() for c in design_bat.chains]
        assert states_bat == states_ref


def test_batch_leaves_design_state_untouched():
    """A batch is virtual: the circuit holds its pre-batch state after,
    for the bit-plane path and the fallback alike."""
    for engine in ("batched", "reference"):
        circuit = make_random_state_circuit(40, seed=5)
        design = ProtectedDesign(circuit, codes=["hamming(7,4)", "crc16"],
                                 num_chains=8, engine=engine)
        before = [c.read_state() for c in design.chains]
        rng = random.Random(17)
        patterns = [multi_error_pattern(design.num_chains,
                                        design.chain_length, 5, rng)
                    for _ in range(4)]
        design.sleep_wake_cycle_batch(patterns)
        assert [c.read_state() for c in design.chains] == before


def test_corrector_aggregate_is_engine_independent():
    """After a batch, design.corrector holds the whole batch's events
    on every engine (the fallback must not leave only the last
    sequence's)."""
    rng = random.Random(41)
    counts = {}
    for engine in ("reference", "packed", "batched"):
        circuit = make_random_state_circuit(56, seed=6)
        design = ProtectedDesign(circuit, codes=["hamming(7,4)", "crc16"],
                                 num_chains=8, engine=engine)
        prng = random.Random(9)
        patterns = [single_error_pattern(design.num_chains,
                                         design.chain_length, prng)
                    for _ in range(4)]
        outcomes = design.sleep_wake_cycle_batch(patterns)
        assert all(o.corrections_applied == 1 for o in outcomes)
        counts[engine] = design.corrector.num_corrections
    assert counts["reference"] == counts["packed"] \
        == counts["batched"] == 4


def test_batch_with_unknown_bits():
    designs = _pair(3, 20, ["hamming(7,4)", "crc16"], 4)
    for design in designs:
        design.chains[1].flops[2].force(None)
        design.chains[3].flops[0].force(None)
    rng = random.Random(23)
    patterns = [None] + [single_error_pattern(4, 5, rng) for _ in range(4)]
    ref = designs[0].sleep_wake_cycle_batch(patterns)
    bat = designs[1].sleep_wake_cycle_batch(patterns)
    for expected, actual in zip(ref, bat):
        assert _outcome_tuple(actual) == _outcome_tuple(expected)
    # Unknown pre-sleep bits can never round-trip: state_intact is False.
    assert not any(outcome.state_intact for outcome in bat)


def test_scalar_cycles_on_batched_engine():
    """engine="batched" must also serve plain sleep_wake_cycle calls,
    bit-exact against the reference (a batch of one)."""
    circuit_ref = make_random_state_circuit(56, seed=8)
    circuit_bat = make_random_state_circuit(56, seed=8)
    ref = ProtectedDesign(circuit_ref, codes=["secded(8,4)", "crc16"],
                          num_chains=8, engine="reference")
    bat = ProtectedDesign(circuit_bat, codes=["secded(8,4)", "crc16"],
                          num_chains=8, engine="batched")
    rng = random.Random(31)
    for trial in range(4):
        pattern = multi_error_pattern(ref.num_chains, ref.chain_length,
                                      rng.randint(1, 3), rng)
        expected = ref.sleep_wake_cycle(injection=pattern)
        actual = bat.sleep_wake_cycle(injection=pattern)
        assert _outcome_tuple(actual) == _outcome_tuple(expected)
        assert [c.read_state() for c in bat.chains] == \
            [c.read_state() for c in ref.chains]


def test_overlapping_correcting_blocks_batch():
    """Correcting blocks sharing chains trigger the per-sequence replay
    path; it must still match the reference fallback bit for bit."""
    codes = ["hamming(7,4)", "hamming(15,11)"]
    design_ref, design_bat = _pair(7, 44, codes, 4)
    engine = get_engine("batched", design_bat)
    assert engine._overlapping_correctors
    rng = random.Random(13)
    patterns = [multi_error_pattern(design_ref.num_chains,
                                    design_ref.chain_length,
                                    rng.randint(1, 3), rng)
                for _ in range(5)]
    ref = design_ref.sleep_wake_cycle_batch(patterns)
    bat = design_bat.sleep_wake_cycle_batch(patterns)
    for expected, actual in zip(ref, bat):
        assert _outcome_tuple(actual) == _outcome_tuple(expected)


class TestEngineLevelBatch:
    """decode_pass_batch over heterogeneous per-sequence states."""

    def _engines(self, codes, num_chains, num_registers):
        circuit = make_random_state_circuit(num_registers, seed=2)
        design = ProtectedDesign(circuit, codes=codes,
                                 num_chains=num_chains)
        plane = get_engine("batched", design)
        packed = PackedMonitorEngine(design.monitor_bank,
                                     plane.num_chains, plane.chain_length)
        return design, plane, packed

    @pytest.mark.parametrize("codes,num_chains,num_registers", [
        (["hamming(7,4)", "crc16"], 8, 56),
        (["secded(8,4)"], 8, 40),
        (["crc16-ccitt"], 4, 28),
    ])
    @pytest.mark.parametrize("batch_size", (1, 5, 16))
    def test_heterogeneous_states_match_packed(self, codes, num_chains,
                                               num_registers, batch_size):
        design, plane, packed = self._engines(codes, num_chains,
                                              num_registers)
        length = plane.chain_length
        rng = random.Random(batch_size)
        knowns = [(1 << length) - 1] * plane.num_chains
        base = [[rng.getrandbits(length) for _ in range(plane.num_chains)]
                for _ in range(batch_size)]
        corrupted = []
        for states in base:
            flipped = list(states)
            for _ in range(rng.randint(0, 2)):
                flipped[rng.randrange(plane.num_chains)] ^= \
                    1 << rng.randrange(length)
            corrupted.append(flipped)

        plane.encode_pass_batch(planes_from_states(base, length), knowns,
                                batch_size)
        result = plane.decode_pass_batch(
            planes_from_states(corrupted, length), knowns, batch_size)

        for b in range(batch_size):
            packed.encode_pass(base[b], knowns)
            reports, corrected = packed.decode_pass(corrupted[b], knowns)
            assert list(result.reports[b]) == reports
            assert states_from_planes(result.corrected, b) == corrected

    def test_decode_before_encode_raises(self):
        design, plane, _packed = self._engines(["crc16"], 4, 20)
        length = plane.chain_length
        planes = [[0] * length for _ in range(plane.num_chains)]
        knowns = [(1 << length) - 1] * plane.num_chains
        with pytest.raises(RuntimeError):
            plane.decode_pass_batch(planes, knowns, 2)

    def test_batch_size_mismatch_raises(self):
        design, plane, _packed = self._engines(["crc16"], 4, 20)
        length = plane.chain_length
        planes = [[0] * length for _ in range(plane.num_chains)]
        knowns = [(1 << length) - 1] * plane.num_chains
        plane.encode_pass_batch(planes, knowns, 4)
        with pytest.raises(RuntimeError):
            plane.decode_pass_batch(planes, knowns, 5)

    def test_geometry_validation(self):
        design, plane, _packed = self._engines(["crc16"], 4, 20)
        length = plane.chain_length
        knowns = [(1 << length) - 1] * plane.num_chains
        with pytest.raises(ValueError):
            plane.encode_pass_batch([[0] * length] * 2, knowns[:2], 2)
        bad = [[0] * length for _ in range(plane.num_chains)]
        bad[0][0] = 1 << 2  # bit outside a 2-sequence batch
        with pytest.raises(ValueError):
            plane.encode_pass_batch(bad, knowns, 2)
        unknown = list(knowns)
        unknown[1] &= ~2  # position 1 of chain 1 is unknown...
        dirty = [[0] * length for _ in range(plane.num_chains)]
        dirty[1][1] = 1  # ...but carries a non-zero plane
        with pytest.raises(ValueError):
            plane.encode_pass_batch(dirty, unknown, 2)


def test_empty_batch_rejected():
    circuit = make_random_state_circuit(20, seed=1)
    design = ProtectedDesign(circuit, codes="crc16", num_chains=4,
                             engine="batched")
    with pytest.raises(ValueError):
        design.sleep_wake_cycle_batch([])


@pytest.mark.parametrize("engine", ["batched", "packed", "reference"])
def test_bad_pattern_fails_before_sleep_entry(engine):
    """A malformed pattern must be rejected while the controller and
    domain are still ACTIVE, on the bit-plane path and the fallback
    alike -- never strand the design mid-sleep."""
    from repro.core.controller import ControllerState
    from repro.faults.patterns import ErrorPattern

    circuit = make_random_state_circuit(20, seed=1)
    design = ProtectedDesign(circuit, codes="crc16", num_chains=4,
                             engine=engine)
    bad = ErrorPattern(locations=frozenset({(99, 0)}), kind="single")
    with pytest.raises(ValueError):
        design.sleep_wake_cycle_batch([None, bad])
    assert design.controller.state is ControllerState.ACTIVE
    assert not design.domain.is_asleep
    # The design stays fully usable.
    assert design.sleep_wake_cycle().state_intact


def test_batch_rejects_upset_model():
    from repro.power.retention import RetentionUpsetModel

    circuit = make_random_state_circuit(20, seed=1)
    design = ProtectedDesign(circuit, codes="crc16", num_chains=4,
                             engine="batched",
                             upset_model=RetentionUpsetModel(seed=1))
    with pytest.raises(ValueError):
        design.sleep_wake_cycle_batch([None])
