"""Tests for the LFSR implementations."""

import pytest

from repro.faults.lfsr import DEFAULT_TAPS, GaloisLFSR, LFSR


class TestFibonacciLFSR:
    def test_maximal_period_small_widths(self):
        for width in (2, 3, 4, 5, 6, 7, 8):
            lfsr = LFSR(width, seed=1)
            seen = set()
            for _ in range((1 << width) - 1):
                seen.add(lfsr.state)
                lfsr.step()
            # Maximal-length taps visit every non-zero state exactly once.
            assert len(seen) == (1 << width) - 1
            assert 0 not in seen

    def test_never_reaches_zero_state(self):
        lfsr = LFSR(16, seed=0xACE1)
        for _ in range(10000):
            lfsr.step()
            assert lfsr.state != 0

    def test_state_bits_msb_first(self):
        lfsr = LFSR(4, seed=0b1010)
        assert lfsr.state_bits == [1, 0, 1, 0]

    def test_deterministic_sequences(self):
        a = LFSR(16, seed=0x1234)
        b = LFSR(16, seed=0x1234)
        assert [a.step() for _ in range(100)] == [b.step() for _ in range(100)]

    def test_randrange_in_bounds_and_covers_values(self):
        lfsr = LFSR(16, seed=7)
        values = [lfsr.randrange(13) for _ in range(500)]
        assert all(0 <= v < 13 for v in values)
        assert len(set(values)) == 13

    def test_randrange_single_value(self):
        assert LFSR(8, seed=3).randrange(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LFSR(1)
        with pytest.raises(ValueError):
            LFSR(8, seed=0)
        with pytest.raises(ValueError):
            LFSR(8, seed=1 << 9)
        with pytest.raises(ValueError):
            LFSR(8, taps=(7, 3), seed=1)    # highest tap must equal width
        with pytest.raises(ValueError):
            LFSR(21)                        # no default taps for width 21
        with pytest.raises(ValueError):
            LFSR(8, seed=1).randrange(0)

    def test_next_value_bit_output(self):
        lfsr = LFSR(8, seed=0x5A)
        value = lfsr.next_value(bits=8)
        assert 0 <= value < 256

    def test_period_upper_bound(self):
        assert LFSR(8, seed=1).period_upper_bound() == 255


class TestGaloisLFSR:
    def test_maximal_period_width_8(self):
        lfsr = GaloisLFSR(8, seed=1)
        seen = set()
        for _ in range(255):
            seen.add(lfsr.state)
            lfsr.step()
        assert len(seen) == 255

    def test_default_polynomial_from_taps(self):
        lfsr = GaloisLFSR(16, seed=1)
        expected = 0
        for tap in DEFAULT_TAPS[16]:
            expected |= 1 << (tap - 1)
        assert lfsr.poly == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            GaloisLFSR(1)
        with pytest.raises(ValueError):
            GaloisLFSR(8, seed=0)
        with pytest.raises(ValueError):
            GaloisLFSR(23)

    def test_next_value(self):
        lfsr = GaloisLFSR(8, seed=0x3C)
        assert 0 < lfsr.next_value() < 256
        assert 0 <= lfsr.next_value(bits=4) < 16
