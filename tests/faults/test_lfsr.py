"""Tests for the LFSR implementations."""

import pytest

from repro.faults.lfsr import (
    DEFAULT_TAPS,
    GaloisLFSR,
    LFSR,
    galois_mask,
    is_maximal_length,
    taps_to_feedback_poly,
)


class TestFibonacciLFSR:
    def test_maximal_period_small_widths(self):
        for width in (2, 3, 4, 5, 6, 7, 8):
            lfsr = LFSR(width, seed=1)
            seen = set()
            for _ in range((1 << width) - 1):
                seen.add(lfsr.state)
                lfsr.step()
            # Maximal-length taps visit every non-zero state exactly once.
            assert len(seen) == (1 << width) - 1
            assert 0 not in seen

    def test_never_reaches_zero_state(self):
        lfsr = LFSR(16, seed=0xACE1)
        for _ in range(10000):
            lfsr.step()
            assert lfsr.state != 0

    def test_state_bits_msb_first(self):
        lfsr = LFSR(4, seed=0b1010)
        assert lfsr.state_bits == [1, 0, 1, 0]

    def test_deterministic_sequences(self):
        a = LFSR(16, seed=0x1234)
        b = LFSR(16, seed=0x1234)
        assert [a.step() for _ in range(100)] == [b.step() for _ in range(100)]

    def test_randrange_in_bounds_and_covers_values(self):
        lfsr = LFSR(16, seed=7)
        values = [lfsr.randrange(13) for _ in range(500)]
        assert all(0 <= v < 13 for v in values)
        assert len(set(values)) == 13

    def test_randrange_single_value(self):
        assert LFSR(8, seed=3).randrange(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LFSR(1)
        with pytest.raises(ValueError):
            LFSR(8, seed=0)
        with pytest.raises(ValueError):
            LFSR(8, seed=1 << 9)
        with pytest.raises(ValueError):
            LFSR(8, taps=(7, 3), seed=1)    # highest tap must equal width
        with pytest.raises(ValueError):
            LFSR(21)                        # no default taps for width 21
        with pytest.raises(ValueError):
            LFSR(8, seed=1).randrange(0)

    def test_next_value_bit_output(self):
        lfsr = LFSR(8, seed=0x5A)
        value = lfsr.next_value(bits=8)
        assert 0 <= value < 256

    def test_period_upper_bound(self):
        assert LFSR(8, seed=1).period_upper_bound() == 255


class TestGaloisLFSR:
    def test_maximal_period_width_8(self):
        lfsr = GaloisLFSR(8, seed=1)
        seen = set()
        for _ in range(255):
            seen.add(lfsr.state)
            lfsr.step()
        assert len(seen) == 255

    def test_default_polynomial_from_taps(self):
        lfsr = GaloisLFSR(16, seed=1)
        expected = 0
        for tap in DEFAULT_TAPS[16]:
            expected |= 1 << (tap - 1)
        assert lfsr.poly == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            GaloisLFSR(1)
        with pytest.raises(ValueError):
            GaloisLFSR(8, seed=0)
        with pytest.raises(ValueError):
            GaloisLFSR(23)

    def test_next_value(self):
        lfsr = GaloisLFSR(8, seed=0x3C)
        assert 0 < lfsr.next_value() < 256
        assert 0 <= lfsr.next_value(bits=4) < 16

    def test_poly_mask_validation(self):
        with pytest.raises(ValueError):
            GaloisLFSR(8, poly=0)                 # empty mask
        with pytest.raises(ValueError):
            GaloisLFSR(8, poly=1 << 8)            # does not fit the width
        with pytest.raises(ValueError):
            GaloisLFSR(8, poly=0b0010_1101)       # missing the x**8 term


class TestTapConventions:
    def test_taps_to_feedback_poly(self):
        # DEFAULT_TAPS[4] == (4, 3) names x^4 + x^3 + 1.
        assert taps_to_feedback_poly(4, (4, 3)) == 0b11001
        assert taps_to_feedback_poly(8, (8, 6, 5, 4)) == 0b1_0111_0001

    def test_galois_mask_is_poly_without_constant(self):
        for width, taps in DEFAULT_TAPS.items():
            assert galois_mask(width, taps) == \
                taps_to_feedback_poly(width, taps) >> 1
            # The x**width term must always be present.
            assert (galois_mask(width, taps) >> (width - 1)) & 1

    def test_highest_tap_must_equal_width(self):
        with pytest.raises(ValueError):
            taps_to_feedback_poly(8, (7, 3))
        with pytest.raises(ValueError):
            taps_to_feedback_poly(8, (9, 3))


class TestMaximalLength:
    """Every DEFAULT_TAPS width reaches the full period in both forms.

    Small widths are brute-forced through every state; the larger ones
    (notably 24 and 32, whose periods are up to ~4 * 10^9 states) are
    decided by the GF(2) primitivity check, which the brute-forced
    widths also validate against.
    """

    BRUTE_FORCE_LIMIT = 16

    @staticmethod
    def _period(step, state, width):
        start = state()
        count = 0
        limit = 1 << width
        while True:
            step()
            count += 1
            if state() == start:
                return count
            assert count <= limit, "no cycle found"

    def test_primitivity_check_all_default_widths(self):
        for width in DEFAULT_TAPS:
            assert is_maximal_length(width), (
                f"DEFAULT_TAPS[{width}] is not a maximal-length tap set")

    def test_primitivity_check_rejects_non_primitive(self):
        # x^4 + x^2 + 1 = (x^2 + x + 1)^2 is not even irreducible.
        assert not is_maximal_length(4, taps=(4, 2))
        # x^8 + 1 is not primitive either.
        assert not is_maximal_length(8, taps=(8,))

    def test_full_period_both_forms_brute_force(self):
        for width, taps in DEFAULT_TAPS.items():
            if width > self.BRUTE_FORCE_LIMIT:
                continue
            full = (1 << width) - 1
            fib = LFSR(width, taps=taps, seed=1)
            assert self._period(fib.step, lambda: fib.state, width) == full
            gal = GaloisLFSR(width, seed=1)
            assert self._period(gal.step, lambda: gal.state, width) == full

    def test_galois_stream_is_phase_shift_of_fibonacci(self):
        """The two orientations realise the same cyclic sequence.

        A wrong tap->mask orientation would generate the time-reversed
        sequence instead (the reciprocal polynomial's), which for a
        maximal-length LFSR is *not* a rotation of the original unless
        the tap set is symmetric -- this is the regression test for
        the orientation audit.
        """
        for width in (3, 5, 8, 10, 12):
            full = (1 << width) - 1
            fib = LFSR(width, seed=1)
            fib_stream = "".join(str(fib.step()) for _ in range(full))
            gal = GaloisLFSR(width, seed=1)
            gal_stream = "".join(str(gal.step()) for _ in range(full))
            assert gal_stream in (fib_stream + fib_stream), (
                f"width {width}: Galois output is not a rotation of the "
                f"Fibonacci output")
