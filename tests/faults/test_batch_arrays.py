"""The ndarray form of batch fault injection (repro.faults.batch).

``apply_batch_flips_words`` / ``batch_flips_arrays`` must agree with
the Python-int plane path (``apply_batch_flips``) flip for flip and
count for count, including the known-mask gating of flips landing on
unknown positions.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.engines.simd import planes_to_words, words_to_planes
from repro.faults.batch import (
    apply_batch_flips,
    apply_batch_flips_words,
    batch_flips_arrays,
    batch_pattern_flips,
)
from repro.faults.patterns import (
    burst_error_pattern,
    multi_error_pattern,
    random_pattern,
)

NUM_CHAINS = 6
LENGTH = 8


def _random_batch(rng, batch_size):
    patterns = []
    for _ in range(batch_size):
        patterns.append(rng.choice([
            None,
            burst_error_pattern(NUM_CHAINS, LENGTH, 4, rng),
            multi_error_pattern(NUM_CHAINS, LENGTH, 5, rng),
            random_pattern(NUM_CHAINS, LENGTH, 0.3, rng),
        ]))
    return patterns


@pytest.mark.parametrize("batch_size", (1, 7, 64, 70))
@pytest.mark.parametrize("with_unknowns", (False, True))
def test_word_application_matches_plane_application(batch_size,
                                                    with_unknowns):
    rng = random.Random(batch_size * 2 + with_unknowns)
    patterns = _random_batch(rng, batch_size)
    flips = batch_pattern_flips(patterns, NUM_CHAINS, LENGTH)
    knowns = [(1 << LENGTH) - 1] * NUM_CHAINS
    if with_unknowns:
        knowns[1] &= ~0b1010
        knowns[4] &= ~0b1
    planes = [[rng.getrandbits(batch_size) if (known >> i) & 1 else 0
               for i in range(LENGTH)]
              for known in knowns]

    words = planes_to_words(planes, batch_size)
    word_counts = apply_batch_flips_words(words.copy(), knowns, flips,
                                          batch_size)
    plane_counts = apply_batch_flips(planes, knowns, flips, batch_size)

    applied = planes_to_words(planes, batch_size).copy()
    words_after = words.copy()
    apply_batch_flips_words(words_after, knowns, flips, batch_size)
    assert words_to_planes(words_after) == planes
    assert word_counts.tolist() == plane_counts
    assert (words_after == applied).all()


def test_unknown_positions_are_gated():
    pattern = multi_error_pattern(NUM_CHAINS, LENGTH, 6,
                                  random.Random(3))
    flips = batch_pattern_flips([pattern], NUM_CHAINS, LENGTH)
    knowns = [0] * NUM_CHAINS  # everything unknown: every flip dropped
    chains, positions, masks, counts = batch_flips_arrays(flips, knowns, 1)
    assert chains.size == 0 and positions.size == 0 and masks.size == 0
    assert counts.tolist() == [0]


def test_counts_match_pattern_sizes():
    rng = random.Random(11)
    patterns = [multi_error_pattern(NUM_CHAINS, LENGTH, 4, rng),
                None,
                burst_error_pattern(NUM_CHAINS, LENGTH, 3, rng)]
    flips = batch_pattern_flips(patterns, NUM_CHAINS, LENGTH)
    knowns = [(1 << LENGTH) - 1] * NUM_CHAINS
    _chains, _positions, _masks, counts = batch_flips_arrays(flips,
                                                             knowns, 3)
    assert counts.tolist() == [4, 0, 3]
