"""Tests for error patterns and the scan-stream error injector."""

import random

import pytest

from repro.circuit.generators import make_random_state_circuit
from repro.circuit.scan import insert_scan_chains
from repro.faults.campaign import CampaignStats, InjectionRecord
from repro.faults.droop import DroopFaultInjector
from repro.faults.injector import ScanErrorInjector
from repro.faults.patterns import (
    ErrorPattern,
    burst_error_pattern,
    multi_error_pattern,
    random_pattern,
    single_error_pattern,
)
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters


class TestPatterns:
    def test_single_error_pattern(self):
        rng = random.Random(0)
        pattern = single_error_pattern(8, 16, rng)
        assert pattern.num_errors == 1
        assert pattern.kind == "single"
        (chain, position), = pattern.locations
        assert 0 <= chain < 8 and 0 <= position < 16

    def test_multi_error_pattern_distinct_locations(self):
        rng = random.Random(1)
        pattern = multi_error_pattern(8, 16, 10, rng)
        assert pattern.num_errors == 10
        assert len(pattern.locations) == 10

    def test_multi_error_pattern_limits(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            multi_error_pattern(2, 2, 5, rng)
        with pytest.raises(ValueError):
            multi_error_pattern(2, 2, 0, rng)

    def test_burst_pattern_is_clustered(self):
        rng = random.Random(2)
        pattern = burst_error_pattern(20, 20, 6, rng)
        assert pattern.num_errors == 6
        chains = [c for c, _ in pattern.locations]
        positions = [p for _, p in pattern.locations]
        # The burst hits adjacent chains at the same scan position.
        assert max(chains) - min(chains) <= 5
        assert max(positions) - min(positions) <= 1

    def test_random_pattern_probability_extremes(self):
        rng = random.Random(3)
        assert random_pattern(4, 4, 0.0, rng).num_errors == 0
        assert random_pattern(4, 4, 1.0, rng).num_errors == 16

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            ErrorPattern(locations=frozenset({(-1, 0)}))
        with pytest.raises(ValueError):
            single_error_pattern(0, 4)
        with pytest.raises(ValueError):
            burst_error_pattern(2, 2, 0)
        with pytest.raises(ValueError):
            random_pattern(2, 2, 1.5)

    def test_pattern_offset_and_chains_touched(self):
        pattern = ErrorPattern(locations=frozenset({(0, 1), (2, 3)}))
        shifted = pattern.offset(chain_offset=1, position_offset=2)
        assert (1, 3) in shifted.locations and (3, 5) in shifted.locations
        assert pattern.chains_touched() == frozenset({0, 2})


def _make_chains(num_registers=64, num_chains=8, seed=4):
    circuit = make_random_state_circuit(num_registers, seed=seed)
    return circuit, insert_scan_chains(circuit, num_chains)


class TestScanErrorInjector:
    def test_single_injection_via_circulation_flips_exactly_one_bit(self):
        circuit, chains = _make_chains()
        injector = ScanErrorInjector(chains)
        before = circuit.snapshot()
        pattern = ErrorPattern(locations=frozenset({(2, 5)}), kind="single")
        plan = injector.inject(pattern)
        after = circuit.snapshot()
        assert plan.num_flipped == 1
        assert before.hamming_distance(after) == 1
        # The flipped bit is the targeted one.
        assert chains[2].flops[5].q != before.values[
            [id(f) for f in circuit.registers].index(id(chains[2].flops[5]))]

    def test_injection_preserves_all_other_bits(self):
        circuit, chains = _make_chains()
        injector = ScanErrorInjector(chains)
        before = circuit.snapshot()
        pattern = multi_error_pattern(8, 8, 5, random.Random(5))
        injector.inject(pattern)
        after = circuit.snapshot()
        assert before.hamming_distance(after) == 5

    def test_inject_direct_equivalent_to_circulating(self):
        circuit_a, chains_a = _make_chains(seed=6)
        circuit_b, chains_b = _make_chains(seed=6)
        pattern = multi_error_pattern(8, 8, 4, random.Random(6))
        ScanErrorInjector(chains_a).inject(pattern)
        ScanErrorInjector(chains_b).inject_direct(pattern)
        assert circuit_a.snapshot().values == circuit_b.snapshot().values

    def test_inject_retention_only_affects_restored_state(self):
        circuit, chains = _make_chains(seed=7)
        injector = ScanErrorInjector(chains)
        before = circuit.snapshot()
        circuit.retain_all()
        circuit.power_off_all()
        pattern = ErrorPattern(locations=frozenset({(1, 2), (3, 4)}))
        injector.inject_retention(pattern)
        circuit.power_on_all()
        circuit.restore_all()
        after = circuit.snapshot()
        assert before.hamming_distance(after) == 2

    def test_row_and_column_vectors(self):
        _, chains = _make_chains()
        injector = ScanErrorInjector(chains)
        pattern = ErrorPattern(locations=frozenset({(2, 5), (4, 1)}))
        plan = injector.inject_direct(pattern)
        assert plan.row_vector[2] == 1 and plan.row_vector[4] == 1
        assert sum(plan.row_vector) == 2
        assert plan.column_vector[5] == 1 and plan.column_vector[1] == 1

    def test_lfsr_driven_random_patterns(self):
        _, chains = _make_chains()
        injector = ScanErrorInjector(chains, lfsr_seed=0xBEEF)
        single = injector.random_single_pattern()
        assert single.num_errors == 1
        multi = injector.random_multi_pattern(6)
        assert multi.num_errors == 6
        with pytest.raises(ValueError):
            injector.random_multi_pattern(0)

    def test_out_of_range_location_rejected(self):
        _, chains = _make_chains()
        injector = ScanErrorInjector(chains)
        with pytest.raises(ValueError):
            injector.inject_direct(
                ErrorPattern(locations=frozenset({(99, 0)})))

    def test_unequal_chain_lengths_rejected(self):
        circuit = make_random_state_circuit(10, seed=1)
        chains = insert_scan_chains(circuit, 3)   # lengths 4, 3, 3
        with pytest.raises(ValueError):
            ScanErrorInjector(chains)

    def test_history_recorded(self):
        _, chains = _make_chains()
        injector = ScanErrorInjector(chains)
        injector.inject_direct(ErrorPattern(locations=frozenset({(0, 0)})))
        injector.inject_direct(ErrorPattern(locations=frozenset({(1, 1)})))
        assert len(injector.history) == 2


class TestDroopFaultInjector:
    def test_high_margin_means_no_upsets(self):
        injector = DroopFaultInjector(
            upset_model=RetentionUpsetModel(nominal_margin=100.0, seed=1))
        circuit = make_random_state_circuit(32, seed=1)
        for ff in circuit.registers:
            ff.retain()
        pattern = injector.inject(circuit.registers, chain_length=8)
        assert pattern.num_errors == 0

    def test_tiny_margin_means_everything_flips(self):
        injector = DroopFaultInjector(
            upset_model=RetentionUpsetModel(nominal_margin=1e-6, slope=1e-7,
                                            seed=1))
        circuit = make_random_state_circuit(32, seed=1)
        for ff in circuit.registers:
            ff.retain()
        pattern = injector.inject(circuit.registers, chain_length=8)
        assert pattern.num_errors == 32
        assert pattern.kind == "droop"

    def test_staggering_lowers_expected_upsets(self):
        model_args = dict(nominal_margin=0.2, slope=0.05)
        abrupt = DroopFaultInjector(
            upset_model=RetentionUpsetModel(**model_args, seed=1),
            num_switch_stages=1)
        gentle = DroopFaultInjector(
            upset_model=RetentionUpsetModel(**model_args, seed=1),
            num_switch_stages=8)
        assert gentle.peak_droop() < abrupt.peak_droop()
        assert gentle.expected_upsets(1000) <= abrupt.expected_upsets(1000)


class TestCampaignStats:
    def test_aggregation(self):
        stats = CampaignStats()
        stats.add(InjectionRecord(injected=1, detected=True, corrected=True,
                                  state_intact=True))
        stats.add(InjectionRecord(injected=3, detected=True, corrected=False,
                                  state_intact=False, residual_errors=3))
        stats.add(InjectionRecord(injected=0, detected=False, corrected=False,
                                  state_intact=True))
        assert stats.num_sequences == 3
        assert stats.total_injected == 4
        assert stats.sequences_with_errors == 2
        assert stats.detection_rate() == 1.0
        assert stats.correction_rate() == 0.5
        assert stats.bit_correction_rate() == pytest.approx(0.25)
        assert stats.silent_corruptions == 0
        assert "detection rate" in stats.summary()

    def test_silent_corruption_detection(self):
        record = InjectionRecord(injected=2, detected=False, corrected=False,
                                 state_intact=False, residual_errors=2)
        assert record.silent_corruption
        stats = CampaignStats()
        stats.add(record)
        assert stats.silent_corruptions == 1

    def test_empty_campaign_rates(self):
        stats = CampaignStats()
        assert stats.detection_rate() == 1.0
        assert stats.correction_rate() == 1.0
        assert stats.bit_correction_rate() == 1.0


class TestBurstWindowGeometry:
    """Boundary geometry of the Fig. 7(b) burst window.

    The window spans ``min(num_chains, burst_size)`` adjacent chains by
    ``ceil(burst_size / window_chains)`` adjacent positions; every
    placement must stay inside the scan array for the corner sizes.
    """

    def _assert_in_bounds(self, pattern, num_chains, chain_length,
                          burst_size):
        assert pattern.num_errors == burst_size
        for chain, position in pattern.locations:
            assert 0 <= chain < num_chains
            assert 0 <= position < chain_length

    @pytest.mark.parametrize("num_chains,chain_length,burst_size", [
        (1, 1, 1),        # minimal array, minimal burst
        (1, 16, 5),       # single chain: window is purely positional
        (16, 1, 5),       # single-bit chains: window is purely chain-wise
        (8, 4, 8),        # burst_size == num_chains exactly
        (8, 4, 9),        # just past the chain count (2-position window)
        (3, 2, 5),        # window cells (3x2=6) barely fit the burst
        (4, 4, 16),       # burst fills the entire scan array
        (5, 3, 15),       # full array, non-square
        (80, 13, 4),      # the paper's FPGA configuration
    ])
    def test_burst_fits_at_boundary_sizes(self, num_chains, chain_length,
                                          burst_size):
        rng = random.Random(20100308)
        for _ in range(25):
            pattern = burst_error_pattern(num_chains, chain_length,
                                          burst_size, rng)
            self._assert_in_bounds(pattern, num_chains, chain_length,
                                   burst_size)

    def test_burst_window_is_tight(self):
        # All errors land within the adjacent-chain/adjacent-position
        # window, so chain spread <= burst size and position spread <=
        # ceil(burst / window_chains) -- the "closely clustered" shape.
        rng = random.Random(9)
        num_chains, chain_length, burst_size = 16, 8, 6
        for _ in range(50):
            pattern = burst_error_pattern(num_chains, chain_length,
                                          burst_size, rng)
            chains = [c for c, _ in pattern.locations]
            positions = [p for _, p in pattern.locations]
            assert max(chains) - min(chains) < burst_size
            assert max(positions) - min(positions) < 1  # 6 chains x 1 pos
