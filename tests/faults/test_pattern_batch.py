"""Properties of the vectorised pattern sampler (faults.batch)."""

import pytest

np = pytest.importorskip("numpy")

from repro.faults.batch import (  # noqa: E402
    batch_flips_arrays,
    batch_pattern_flips,
    pattern_batch_arrays,
    sample_pattern_batch,
)

KINDS = ("single", "burst", "multiple", "none")


def _sample(kind, num_chains=8, chain_length=13, batch=37, seed=20100308,
            num_errors=4):
    rng = np.random.default_rng(seed)
    return sample_pattern_batch(kind, num_chains, chain_length, batch, rng,
                                num_errors=num_errors)


@pytest.mark.parametrize("kind", KINDS)
def test_sampler_is_deterministic(kind):
    """Equal generator seeds give flip-for-flip equal batches."""
    a = _sample(kind)
    b = _sample(kind)
    assert np.array_equal(a.seqs, b.seqs)
    assert np.array_equal(a.chains, b.chains)
    assert np.array_equal(a.positions, b.positions)


@pytest.mark.parametrize("kind", KINDS)
def test_sampler_coordinates_are_valid(kind):
    """Coordinates stay inside the scan array, sequences inside the
    batch, and each sequence's cells are distinct (set semantics)."""
    batch = _sample(kind, batch=29)
    assert ((batch.chains >= 0) & (batch.chains < 8)).all()
    assert ((batch.positions >= 0) & (batch.positions < 13)).all()
    assert ((batch.seqs >= 0) & (batch.seqs < 29)).all()
    cells = set()
    for b, c, p in zip(batch.seqs.tolist(), batch.chains.tolist(),
                       batch.positions.tolist()):
        assert (b, c, p) not in cells, "duplicate cell within a sequence"
        cells.add((b, c, p))


def test_flip_counts_per_kind():
    """single -> 1 flip/sequence, burst/multiple -> num_errors,
    none -> 0."""
    assert np.array_equal(np.bincount(_sample("single", batch=11).seqs,
                                      minlength=11), np.ones(11))
    for kind in ("burst", "multiple"):
        counts = np.bincount(_sample(kind, batch=11, num_errors=5).seqs,
                             minlength=11)
        assert np.array_equal(counts, np.full(11, 5))
    assert _sample("none").num_flips == 0


def test_burst_is_clustered():
    """Burst flips of one sequence stay inside the scalar factory's
    adjacent-chain window geometry."""
    batch = _sample("burst", num_chains=10, chain_length=16, batch=40,
                    num_errors=4)
    window_chains, window_positions = 4, 1
    for b in range(40):
        mask = batch.seqs == b
        chains = batch.chains[mask]
        positions = batch.positions[mask]
        assert chains.max() - chains.min() < window_chains
        assert positions.max() - positions.min() < window_positions


def test_views_are_lossless():
    """patterns() and flips() describe the same injection: resolving
    the patterns through the scalar path's batch_pattern_flips gives
    exactly the sampled flips dict."""
    for kind in KINDS:
        batch = _sample(kind, batch=21)
        via_patterns = batch_pattern_flips(batch.patterns(), 8, 13)
        assert via_patterns == batch.flips()
        patterns = batch.patterns()
        assert len(patterns) == 21
        if kind == "none":
            assert patterns == [None] * 21
        else:
            assert all(p is not None and p.kind == kind for p in patterns)


def test_full_window_burst_and_exhaustive_multiple():
    """Degenerate draws-equal-population cases stay valid."""
    batch = _sample("multiple", num_chains=2, chain_length=3, batch=5,
                    num_errors=6)
    assert np.array_equal(np.bincount(batch.seqs, minlength=5),
                          np.full(5, 6))
    for b in range(5):
        mask = batch.seqs == b
        cells = set(zip(batch.chains[mask].tolist(),
                        batch.positions[mask].tolist()))
        assert len(cells) == 6


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("batch_size", (21, 64, 130))
def test_pattern_batch_arrays_equals_dict_resolver(kind, batch_size):
    """The direct ndarray resolver gives exactly the scatter arrays of
    the BatchFlips dict path, including known-mask gating."""
    batch = _sample(kind, num_chains=6, chain_length=9, batch=batch_size)
    knowns = [(1 << 9) - 1] * 6
    knowns[2] = 0b101010101   # drop every other position of chain 2
    direct = pattern_batch_arrays(batch, knowns, batch_size)
    via_dict = batch_flips_arrays(batch.flips(), knowns, batch_size)
    for a, b in zip(direct, via_dict):
        assert np.array_equal(np.asarray(a), np.asarray(b))


def test_pattern_batch_arrays_collapses_duplicate_coordinates():
    """A caller-built batch repeating a (sequence, cell) pair counts
    and flips the cell once -- the set semantics of ErrorPattern, and
    what the flips()/patterns() views produce."""
    from repro.faults.batch import PatternBatch

    batch = PatternBatch(4, 8, 2, "multiple",
                         np.array([0, 0, 1]), np.array([1, 1, 2]),
                         np.array([3, 3, 5]))
    knowns = [(1 << 8) - 1] * 4
    chains, positions, masks, counts = pattern_batch_arrays(batch, knowns, 2)
    assert counts.tolist() == [1, 1]
    direct = (chains.tolist(), positions.tolist(), masks.tolist(),
              counts.tolist())
    via_dict = batch_flips_arrays(batch.flips(), knowns, 2)
    assert direct == (via_dict[0].tolist(), via_dict[1].tolist(),
                      via_dict[2].tolist(), via_dict[3].tolist())


def test_sampler_rejects_bad_inputs():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        sample_pattern_batch("single", 0, 4, 2, rng)
    with pytest.raises(ValueError):
        sample_pattern_batch("single", 4, 4, 0, rng)
    with pytest.raises(ValueError):
        sample_pattern_batch("multiple", 2, 2, 2, rng, num_errors=5)
    with pytest.raises(ValueError):
        sample_pattern_batch("burst", 2, 2, 2, rng, num_errors=0)
    with pytest.raises(ValueError):
        sample_pattern_batch("typo", 4, 4, 2, rng)
