"""The CSR flip-slice resolvers (``pattern_batch_csr`` /
``batch_flips_csr``), the fused summary kernels' input form.

The contract: ``starts`` is a ``(batch_size + 1,)`` int64 row-pointer
array with ``starts[0] == 0``, monotone non-decreasing, ``starts[-1]``
the total flip count; sequence ``b``'s cells sit at
``cells[starts[b]:starts[b + 1]]`` sorted ascending with no
duplicates; and the gating/dedup semantics are exactly those of the
coordinate resolvers the CSR form derives from.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.engines.summary import bits_matrix       # noqa: E402
from repro.faults.batch import (                    # noqa: E402
    batch_flips_coords,
    batch_flips_csr,
    pattern_batch_coords,
    pattern_batch_csr,
    sample_pattern_batch,
)

NUM_CHAINS, CHAIN_LENGTH = 6, 24


def _knowns(holes=False):
    full = (1 << CHAIN_LENGTH) - 1
    knowns = [full] * NUM_CHAINS
    if holes:
        knowns[0] &= ~0b111
        knowns[3] &= ~(1 << (CHAIN_LENGTH - 1))
    return knowns


def _assert_csr_contract(starts, cells, counts, batch_size):
    assert starts.dtype == np.int64
    assert starts.shape == (batch_size + 1,)
    assert starts[0] == 0
    assert starts[-1] == cells.shape[0]
    assert np.all(np.diff(starts) >= 0)
    assert np.array_equal(np.diff(starts), counts)
    for b in range(batch_size):
        row = cells[starts[b]:starts[b + 1]]
        assert np.all(np.diff(row) > 0)  # ascending, deduplicated


@pytest.mark.parametrize("kind", ("single", "burst", "multiple", "none"))
@pytest.mark.parametrize("batch_size", (1, 64, 100, 257))
def test_pattern_batch_csr_contract(kind, batch_size):
    rng = np.random.default_rng(20100308)
    batch = sample_pattern_batch(kind, NUM_CHAINS, CHAIN_LENGTH,
                                 batch_size, rng, num_errors=4)
    known_bits = bits_matrix(_knowns(), CHAIN_LENGTH)
    starts, cells, counts = pattern_batch_csr(batch, known_bits,
                                              batch_size)
    _assert_csr_contract(starts, cells, counts, batch_size)
    # Same cells/counts as the coordinate form; the row pointers are
    # its per-sequence offsets.
    seqs, ref_cells, ref_counts = pattern_batch_coords(
        batch, known_bits, batch_size)
    assert np.array_equal(cells, ref_cells)
    assert np.array_equal(counts, ref_counts)
    for b in range(batch_size):
        assert np.array_equal(cells[starts[b]:starts[b + 1]],
                              ref_cells[seqs == b])


def test_pattern_batch_csr_drops_unknown_cells():
    rng = np.random.default_rng(5)
    batch_size = 200
    batch = sample_pattern_batch("burst", NUM_CHAINS, CHAIN_LENGTH,
                                 batch_size, rng, num_errors=5)
    known_bits = bits_matrix(_knowns(holes=True), CHAIN_LENGTH)
    starts, cells, counts = pattern_batch_csr(batch, known_bits,
                                              batch_size)
    _assert_csr_contract(starts, cells, counts, batch_size)
    unknown_cells = set(np.nonzero(~known_bits.reshape(-1))[0])
    assert unknown_cells, "fixture must punch at least one hole"
    assert not unknown_cells.intersection(cells.tolist())


def test_batch_flips_csr_matches_coords():
    length = CHAIN_LENGTH
    flips = {(0, 1): 0b1011, (1, 3): 0b10, (2, 0): 1 << 8,
             (5, 2): 0b1000, (0, 2): 0b1}
    batch_size = 9
    starts, cells, counts = batch_flips_csr(flips, _knowns(),
                                            batch_size, length)
    _assert_csr_contract(starts, cells, counts, batch_size)
    seqs, ref_cells, ref_counts = batch_flips_coords(
        flips, _knowns(), batch_size, length)
    assert np.array_equal(cells, ref_cells)
    assert np.array_equal(counts, ref_counts)
    # Sequence 0's slice holds exactly the cells whose masks have bit
    # 0 set -- (0, 1) and (0, 2) -- in ascending cell order; sequence
    # 3's adds the (5, 2) burst bit.
    assert np.array_equal(cells[starts[0]:starts[1]],
                          [0 * length + 1, 0 * length + 2])
    assert np.array_equal(cells[starts[3]:starts[4]],
                          [0 * length + 1, 5 * length + 2])


def test_csr_empty_batch():
    starts, cells, counts = batch_flips_csr({}, _knowns(), 7,
                                            CHAIN_LENGTH)
    _assert_csr_contract(starts, cells, counts, 7)
    assert cells.size == 0
    assert np.all(starts == 0)


def test_starts_out_buffer_is_reused():
    """The engines pass a workspace buffer; the resolver must write the
    row pointers into it and return that very array."""
    rng = np.random.default_rng(11)
    batch_size = 50
    batch = sample_pattern_batch("single", NUM_CHAINS, CHAIN_LENGTH,
                                 batch_size, rng)
    known_bits = bits_matrix(_knowns(), CHAIN_LENGTH)
    buffer = np.full(batch_size + 1, -99, dtype=np.int64)
    starts, cells, counts = pattern_batch_csr(batch, known_bits,
                                              batch_size,
                                              starts_out=buffer)
    assert starts is buffer
    _assert_csr_contract(starts, cells, counts, batch_size)
