"""Tests for the ProtectedDesign integration object."""

import random

import pytest

from repro.circuit.fifo import SyncFIFO
from repro.circuit.generators import make_counter, make_random_state_circuit
from repro.codes.hamming import HammingCode
from repro.core.controller import ControllerState, ErrorCode
from repro.core.protected import ProtectedDesign
from repro.faults.patterns import (
    ErrorPattern,
    burst_error_pattern,
    single_error_pattern,
)
from repro.power.retention import RetentionUpsetModel


@pytest.fixture
def small_design():
    circuit = make_random_state_circuit(128, seed=11)
    return ProtectedDesign(circuit, codes=["hamming(7,4)", "crc16"],
                           num_chains=16)


class TestConstruction:
    def test_geometry_matches_scan_config(self, small_design):
        assert small_design.num_chains == 16
        assert small_design.chain_length == 8
        assert small_design.padding_cells == 0
        assert small_design.config.num_monitor_blocks == 4

    def test_codes_resolved_from_strings_and_objects(self):
        circuit = make_random_state_circuit(64, seed=1)
        design = ProtectedDesign(circuit, codes=HammingCode(15, 11),
                                 num_chains=11)
        assert design.codes[0].n == 15

    def test_padding_added_for_uneven_split(self):
        circuit = make_random_state_circuit(100, seed=2)
        design = ProtectedDesign(circuit, codes="crc16", num_chains=8)
        assert design.chain_length == 13
        assert design.padding_cells == 4
        # All chains have the same length after padding.
        assert {len(c) for c in design.chains} == {13}

    def test_invalid_code_spec_rejected(self):
        circuit = make_random_state_circuit(16, seed=3)
        with pytest.raises(TypeError):
            ProtectedDesign(circuit, codes=42, num_chains=4)
        with pytest.raises(ValueError):
            ProtectedDesign(circuit, codes=[], num_chains=4)


class TestSleepWakeCycle:
    def test_clean_cycle_preserves_state_and_reports_nothing(self,
                                                             small_design):
        before = small_design.circuit.snapshot()
        outcome = small_design.sleep_wake_cycle()
        assert outcome.injected_errors == 0
        assert not outcome.detected
        assert outcome.state_intact
        assert outcome.error_code is ErrorCode.NONE
        assert small_design.circuit.snapshot().values == before.values
        assert small_design.controller.state is ControllerState.ACTIVE

    def test_single_error_corrected(self, small_design):
        rng = random.Random(1)
        pattern = single_error_pattern(small_design.num_chains,
                                       small_design.chain_length, rng)
        outcome = small_design.sleep_wake_cycle(injection=pattern)
        assert outcome.injected_errors == 1
        assert outcome.detected
        assert outcome.corrected_claim
        assert outcome.state_intact
        assert outcome.fully_corrected
        assert outcome.error_code is ErrorCode.CORRECTED
        assert outcome.corrections_applied == 1

    def test_many_single_error_cycles_all_corrected(self, small_design):
        rng = random.Random(2)
        for _ in range(10):
            pattern = single_error_pattern(small_design.num_chains,
                                           small_design.chain_length, rng)
            outcome = small_design.sleep_wake_cycle(injection=pattern)
            assert outcome.state_intact
            assert outcome.error_code is ErrorCode.CORRECTED

    def test_burst_errors_detected_not_silently_corrupted(self, small_design):
        rng = random.Random(3)
        saw_uncorrectable = False
        for _ in range(10):
            pattern = burst_error_pattern(small_design.num_chains,
                                          small_design.chain_length, 4, rng)
            outcome = small_design.sleep_wake_cycle(injection=pattern)
            assert outcome.detected
            assert not outcome.silent_corruption
            saw_uncorrectable |= (outcome.error_code is
                                  ErrorCode.UNCORRECTABLE)
        assert saw_uncorrectable

    def test_post_wake_injection_phase(self, small_design):
        pattern = ErrorPattern(locations=frozenset({(2, 3)}))
        outcome = small_design.sleep_wake_cycle(injection=pattern,
                                                inject_phase="post_wake")
        assert outcome.injected_errors == 1
        assert outcome.state_intact

    def test_invalid_inject_phase(self, small_design):
        with pytest.raises(ValueError):
            small_design.sleep_wake_cycle(inject_phase="during_lunch")

    def test_software_recovery_hook_called_on_uncorrectable(self):
        circuit = make_random_state_circuit(64, seed=5)
        design = ProtectedDesign(circuit, codes="crc16", num_chains=8)
        calls = []

        def recovery(d):
            calls.append(d)

        pattern = ErrorPattern(locations=frozenset({(0, 1), (3, 2)}))
        outcome = design.sleep_wake_cycle(injection=pattern,
                                          software_recovery=recovery)
        assert outcome.error_code is ErrorCode.UNCORRECTABLE
        assert calls == [design]
        assert design.controller.state is ControllerState.ACTIVE

    def test_detection_only_design_detects_but_never_corrects(self):
        circuit = make_random_state_circuit(64, seed=6)
        design = ProtectedDesign(circuit, codes="crc16", num_chains=8)
        pattern = ErrorPattern(locations=frozenset({(1, 1)}))
        outcome = design.sleep_wake_cycle(injection=pattern)
        assert outcome.detected
        assert not outcome.corrected_claim
        assert not outcome.state_intact
        assert outcome.corrections_applied == 0

    def test_droop_upsets_flow_into_monitoring(self):
        circuit = make_random_state_circuit(64, seed=7)
        # Margin far below the wake-up droop: every latch flips, far too
        # many for Hamming, but detection must still fire.
        design = ProtectedDesign(
            circuit, codes=["hamming(7,4)", "crc16"], num_chains=8,
            upset_model=RetentionUpsetModel(nominal_margin=1e-4, slope=1e-5,
                                            seed=1))
        outcome = design.sleep_wake_cycle()
        assert outcome.injected_errors == 64
        assert outcome.detected
        assert not outcome.silent_corruption

    def test_unprotected_cycle_misses_corruption(self):
        circuit = make_random_state_circuit(64, seed=8)
        design = ProtectedDesign(circuit, codes="hamming(7,4)", num_chains=8)
        pattern = ErrorPattern(locations=frozenset({(2, 2)}))
        outcome = design.unprotected_sleep_wake_cycle(injection=pattern)
        assert outcome.injected_errors == 1
        assert not outcome.detected
        assert not outcome.state_intact
        assert outcome.silent_corruption

    def test_repeated_cycles_with_fifo_keep_functionality(self):
        fifo = SyncFIFO(8, 8)
        design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                                 num_chains=10)
        rng = random.Random(9)
        for round_trip in range(5):
            fifo.push_int(round_trip * 40 % 256)
            pattern = single_error_pattern(design.num_chains,
                                           design.chain_length, rng)
            outcome = design.sleep_wake_cycle(injection=pattern)
            assert outcome.state_intact
            assert fifo.pop_int() == round_trip * 40 % 256


class TestCostReport:
    def test_cost_report_structure(self, small_design):
        report = small_design.cost_report()
        row = report.as_table_row()
        assert row["W"] == 16
        assert row["l"] == 8
        assert row["area_um2"] > 0
        assert row["latency_ns"] == pytest.approx(80.0)
        assert report.area.protection_area > 0
        assert report.area.base_area > 0

    def test_full_netlist_contains_all_groups(self, small_design):
        netlist = small_design.full_netlist()
        groups = set(netlist.groups())
        assert {"monitor", "corrector", "controller",
                "scan_routing"} <= groups

    def test_hamming_costs_more_area_than_crc(self):
        circuit = make_counter(64)
        crc = ProtectedDesign(circuit, codes="crc16", num_chains=8)
        ham = ProtectedDesign(circuit, codes="hamming(7,4)", num_chains=8)
        assert (ham.cost_report().area_overhead_percent
                > crc.cost_report().area_overhead_percent)

    def test_more_chains_less_latency_more_area(self):
        circuit = make_random_state_circuit(256, seed=10)
        few = ProtectedDesign(circuit, codes="hamming(7,4)", num_chains=4)
        many = ProtectedDesign(circuit, codes="hamming(7,4)", num_chains=32)
        few_cost, many_cost = few.cost_report(), many.cost_report()
        assert many_cost.latency_ns < few_cost.latency_ns
        assert many_cost.area_total_um2 > few_cost.area_total_um2
        assert (many_cost.encode_cost.energy_nj
                < few_cost.encode_cost.energy_nj)
