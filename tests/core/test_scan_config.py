"""Tests for the scan-chain configuration arithmetic (paper Section III)."""

import pytest

from repro.core.scan_config import ScanChainConfig


class TestGeometry:
    def test_paper_fifo_configurations(self):
        # The rows of Tables I and II: W in {4, 8, 16, 40, 80} for 1040
        # flops gives l in {260, 130, 65, 26, 13}.
        expected = {4: 260, 8: 130, 16: 65, 40: 26, 80: 13}
        for chains, length in expected.items():
            config = ScanChainConfig.paper_fifo(num_chains=chains)
            assert config.chain_length == length
            assert config.padding_cells == 0
            assert config.encode_cycles == length

    def test_latency_is_length_times_period(self):
        config = ScanChainConfig.paper_fifo(num_chains=80)
        assert config.encode_latency_ns == pytest.approx(130.0)
        config = ScanChainConfig.paper_fifo(num_chains=4)
        assert config.encode_latency_ns == pytest.approx(2600.0)

    def test_section3_worked_example(self):
        # 128 flops: 4 chains -> 32 cycles; 16 chains -> 8 cycles (4x).
        baseline = ScanChainConfig(num_registers=128, num_chains=4,
                                   monitor_width=4)
        reconfigured = ScanChainConfig(num_registers=128, num_chains=16,
                                       monitor_width=4)
        assert baseline.encode_cycles == 32
        assert reconfigured.encode_cycles == 8
        assert reconfigured.speedup_over(baseline) == pytest.approx(4.0)
        assert reconfigured.num_monitor_blocks == 4

    def test_padding_when_not_divisible(self):
        config = ScanChainConfig(num_registers=100, num_chains=8)
        assert config.chain_length == 13
        assert config.padded_registers == 104
        assert config.padding_cells == 4

    def test_monitor_block_count(self):
        config = ScanChainConfig(num_registers=1040, num_chains=80,
                                 monitor_width=4)
        assert config.num_monitor_blocks == 20
        config = ScanChainConfig(num_registers=1040, num_chains=57,
                                 monitor_width=57)
        assert config.num_monitor_blocks == 1

    def test_block_chain_indices(self):
        config = ScanChainConfig(num_registers=128, num_chains=16,
                                 monitor_width=4)
        assert config.block_chain_indices(0) == (0, 1, 2, 3)
        assert config.block_chain_indices(3) == (12, 13, 14, 15)
        with pytest.raises(IndexError):
            config.block_chain_indices(4)

    def test_describe_mentions_key_numbers(self):
        text = ScanChainConfig.paper_fifo(num_chains=80).describe()
        assert "80" in text and "13" in text and "130" in text


class TestTestMode:
    def test_fig5_test_mode_mapping(self):
        # 16 monitoring chains, 4 test ports -> each test chain strings
        # together 4 monitoring chains (Fig. 5(b)).
        config = ScanChainConfig(num_registers=128, num_chains=16,
                                 monitor_width=4, test_width=4)
        mapping = config.test_mode_mapping()
        assert mapping.test_width == 4
        assert len(mapping.groups) == 4
        assert all(len(group) == 4 for group in mapping.groups)
        assert mapping.test_chain_length == 32
        assert mapping.num_loopbacks == 12
        assert config.test_cycles == 32

    def test_test_mode_covers_every_chain_once(self):
        config = ScanChainConfig(num_registers=1040, num_chains=80,
                                 monitor_width=4, test_width=4)
        mapping = config.test_mode_mapping()
        covered = [c for group in mapping.groups for c in group]
        assert sorted(covered) == list(range(80))

    def test_test_mode_length_matches_total_state(self):
        config = ScanChainConfig(num_registers=1040, num_chains=80,
                                 test_width=4)
        # 4 test ports scanning 1040 bits -> 260 cycles.
        assert config.test_cycles == 260


class TestValidation:
    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            ScanChainConfig(num_registers=0, num_chains=1)
        with pytest.raises(ValueError):
            ScanChainConfig(num_registers=10, num_chains=0)
        with pytest.raises(ValueError):
            ScanChainConfig(num_registers=10, num_chains=20)
        with pytest.raises(ValueError):
            ScanChainConfig(num_registers=10, num_chains=5, monitor_width=0)
        with pytest.raises(ValueError):
            ScanChainConfig(num_registers=10, num_chains=5, test_width=8)
        with pytest.raises(ValueError):
            ScanChainConfig(num_registers=10, num_chains=5,
                            clock_period_ns=0)
