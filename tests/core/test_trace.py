"""Tests for the sleep/wake cycle trace log."""

import random

import pytest

from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.core.trace import TraceEventKind, TraceLog, trace_cycles
from repro.faults.patterns import (
    ErrorPattern,
    burst_error_pattern,
    single_error_pattern,
)


@pytest.fixture
def design():
    circuit = make_random_state_circuit(64, seed=21)
    return ProtectedDesign(circuit, codes=["hamming(7,4)", "crc16"],
                           num_chains=8)


class TestTraceLog:
    def test_clean_cycle_events(self, design):
        outcome = design.sleep_wake_cycle()
        log = TraceLog(clock_period_ns=10.0)
        log.record_cycle(outcome, design.chain_length)
        kinds = [event.kind for event in log.events]
        assert kinds[0] is TraceEventKind.ENCODE
        assert TraceEventKind.SLEEP in kinds
        assert TraceEventKind.WAKE in kinds
        assert TraceEventKind.DECODE in kinds
        assert TraceEventKind.INJECTION not in kinds
        assert TraceEventKind.ERROR not in kinds
        assert log.num_cycles == 1

    def test_corrected_cycle_records_injection_and_correction(self, design):
        pattern = single_error_pattern(design.num_chains,
                                       design.chain_length, random.Random(1))
        outcome = design.sleep_wake_cycle(injection=pattern)
        log = TraceLog()
        log.record_cycle(outcome, design.chain_length)
        assert len(log.events_of(TraceEventKind.INJECTION)) == 1
        assert len(log.events_of(TraceEventKind.CORRECTION)) == 1
        assert len(log.events_of(TraceEventKind.ERROR)) == 0

    def test_uncorrectable_cycle_records_error_and_recovery(self, design):
        pattern = burst_error_pattern(design.num_chains, design.chain_length,
                                      4, random.Random(3))
        outcome = design.sleep_wake_cycle(injection=pattern)
        log = TraceLog()
        log.record_cycle(outcome, design.chain_length)
        if outcome.error_code.value == "uncorrectable":
            assert len(log.events_of(TraceEventKind.ERROR)) == 1
            assert len(log.events_of(TraceEventKind.RECOVERY)) == 1

    def test_time_advances_with_passes_and_sleep(self, design):
        outcome = design.sleep_wake_cycle()
        log = TraceLog(clock_period_ns=10.0)
        log.record_cycle(outcome, design.chain_length,
                         sleep_duration_ns=500.0)
        # Two passes of l x T plus the sleep interval plus wake settle.
        pass_ns = design.chain_length * 10.0
        assert log.now_ns >= 2 * pass_ns + 500.0

    def test_monitoring_overhead_accounts_both_passes(self, design):
        outcome = design.sleep_wake_cycle()
        log = TraceLog(clock_period_ns=10.0)
        log.record_cycle(outcome, design.chain_length,
                         sleep_duration_ns=500.0)
        pass_ns = design.chain_length * 10.0
        assert log.monitoring_overhead_ns() == pytest.approx(2 * pass_ns,
                                                             rel=0.01)

    def test_trace_cycles_helper_and_render(self, design):
        rng = random.Random(5)
        outcomes = [design.sleep_wake_cycle(
            injection=single_error_pattern(design.num_chains,
                                           design.chain_length, rng))
            for _ in range(3)]
        log = trace_cycles(design, outcomes)
        assert log.num_cycles == 3
        assert len(log.cycle_events(1)) > 0
        text = log.render()
        assert "encode" in text and "decode" in text
        short = log.render(limit=2)
        assert short.count("\n") == 2

    def test_counts_histogram(self, design):
        outcome = design.sleep_wake_cycle()
        log = TraceLog()
        log.record_cycle(outcome, design.chain_length)
        log.note("campaign boundary")
        counts = log.counts()
        assert counts[TraceEventKind.ENCODE] == 1
        assert counts[TraceEventKind.NOTE] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceLog(clock_period_ns=0)
        log = TraceLog()
        with pytest.raises(ValueError):
            log.advance(-1.0)
        outcome_log = TraceLog()
        with pytest.raises(ValueError):
            outcome_log.record_cycle(None, 0)
