"""Tests for the state monitoring blocks and the monitor bank."""

import random

import pytest

from repro.circuit.generators import make_random_state_circuit
from repro.circuit.scan import insert_scan_chains
from repro.codes.crc import CRCCode
from repro.codes.hamming import HammingCode
from repro.core.monitor import (
    CRCMonitorBlock,
    HammingMonitorBlock,
    MonitorBank,
    build_monitor_blocks,
)


def _setup(num_registers=64, num_chains=8, seed=1):
    circuit = make_random_state_circuit(num_registers, seed=seed)
    chains = insert_scan_chains(circuit, num_chains)
    return circuit, chains


class TestHammingMonitorBlock:
    def test_clean_encode_decode_reports_nothing(self):
        circuit, chains = _setup()
        blocks = build_monitor_blocks(HammingCode(7, 4), 8, 4)
        bank = MonitorBank(blocks)
        bank.encode_pass(chains)
        state_before = circuit.snapshot()
        reports = bank.decode_pass(chains)
        assert circuit.snapshot().values == state_before.values
        assert all(not r.error_detected for r in reports)
        assert all(not r.uncorrectable for r in reports)

    def test_single_error_located_and_corrected(self):
        circuit, chains = _setup(seed=2)
        bank = MonitorBank(build_monitor_blocks(HammingCode(7, 4), 8, 4))
        bank.encode_pass(chains)
        reference = circuit.snapshot()
        # Corrupt one flop directly.
        chains[3].flops[5].flip()
        reports = bank.decode_pass(chains)
        assert circuit.snapshot().values == reference.values
        detected = [r for r in reports if r.error_detected]
        assert len(detected) == 1
        assert detected[0].num_corrections == 1
        assert not detected[0].uncorrectable
        event = detected[0].corrections[0]
        assert event.chain_index == 3

    def test_one_error_per_block_all_corrected(self):
        circuit, chains = _setup(seed=3)
        bank = MonitorBank(build_monitor_blocks(HammingCode(7, 4), 8, 4))
        bank.encode_pass(chains)
        reference = circuit.snapshot()
        # One error in each monitoring block (chains 0-3 and 4-7), in
        # different cycles, is still a single error per codeword.
        chains[0].flops[2].flip()
        chains[5].flops[6].flip()
        reports = bank.decode_pass(chains)
        assert circuit.snapshot().values == reference.values
        assert sum(r.num_corrections for r in reports) == 2

    def test_two_errors_in_same_codeword_not_repaired(self):
        circuit, chains = _setup(seed=4)
        bank = MonitorBank(build_monitor_blocks(HammingCode(7, 4), 8, 4))
        bank.encode_pass(chains)
        reference = circuit.snapshot()
        # Same cycle (same scan position) in two chains of the same
        # block -> two errors in one 4-bit slice.
        chains[0].flops[5].flip()
        chains[1].flops[5].flip()
        bank.decode_pass(chains)
        assert circuit.snapshot().values != reference.values

    def test_width_validation(self):
        with pytest.raises(ValueError):
            HammingMonitorBlock(0, (0, 1, 2, 3, 4), HammingCode(7, 4))
        with pytest.raises(ValueError):
            HammingMonitorBlock(0, (), HammingCode(7, 4))

    def test_partial_width_block_pads_missing_chains(self):
        circuit, chains = _setup(num_registers=48, num_chains=6, seed=5)
        # 6 chains with k=4 -> one full block and one 2-chain block.
        blocks = build_monitor_blocks(HammingCode(7, 4), 6, 4)
        assert [b.width for b in blocks] == [4, 2]
        bank = MonitorBank(blocks)
        bank.encode_pass(chains)
        reference = circuit.snapshot()
        chains[5].flops[3].flip()
        bank.decode_pass(chains)
        assert circuit.snapshot().values == reference.values

    def test_decode_longer_than_encode_rejected(self):
        block = HammingMonitorBlock(0, (0, 1, 2, 3), HammingCode(7, 4))
        block.begin_encode()
        block.observe_encode([0, 1, 0, 1])
        block.begin_decode()
        block.observe_decode([0, 1, 0, 1])
        with pytest.raises(RuntimeError):
            block.observe_decode([0, 1, 0, 1])

    def test_storage_and_netlist_sizing(self):
        block = HammingMonitorBlock(0, (0, 1, 2, 3), HammingCode(7, 4))
        assert block.storage_bits(13) == 13 * 3
        netlist = block.build_netlist(13)
        assert netlist.count("aon_dff", group="monitor") == 39
        assert netlist.count("xor2", group="monitor") > 0


class TestCRCMonitorBlock:
    def test_clean_pass_no_detection(self):
        circuit, chains = _setup(seed=6)
        bank = MonitorBank(build_monitor_blocks(CRCCode.from_name("crc16"),
                                                8, 4))
        bank.encode_pass(chains)
        reports = bank.decode_pass(chains)
        assert len(reports) == 1
        assert not reports[0].error_detected

    def test_any_corruption_detected_but_not_corrected(self):
        circuit, chains = _setup(seed=7)
        bank = MonitorBank(build_monitor_blocks(CRCCode.from_name("crc16"),
                                                8, 4))
        bank.encode_pass(chains)
        reference = circuit.snapshot()
        chains[2].flops[1].flip()
        chains[6].flops[7].flip()
        reports = bank.decode_pass(chains)
        assert reports[0].error_detected
        assert reports[0].uncorrectable
        assert reports[0].num_corrections == 0
        # State unchanged by a detection-only monitor (errors remain).
        assert circuit.snapshot().hamming_distance(reference) == 2

    def test_decode_before_encode_rejected(self):
        block = CRCMonitorBlock(0, (0, 1), CRCCode.from_name("crc16"))
        with pytest.raises(RuntimeError):
            block.begin_decode()

    def test_storage_independent_of_chain_length(self):
        block = CRCMonitorBlock(0, tuple(range(8)),
                                CRCCode.from_name("crc16"))
        assert block.storage_bits(13) == 16
        assert block.storage_bits(260) == 16

    def test_single_block_covers_all_chains(self):
        blocks = build_monitor_blocks(CRCCode.from_name("crc16"), 80, 4)
        assert len(blocks) == 1
        assert blocks[0].width == 80


class TestMonitorBank:
    def test_hamming_plus_crc_verifies_corrected_stream(self):
        # With a single error, the Hamming block corrects it and the CRC
        # (observing the corrected feedback) stays clean.
        circuit, chains = _setup(seed=8)
        blocks = (build_monitor_blocks(HammingCode(7, 4), 8, 4)
                  + build_monitor_blocks(CRCCode.from_name("crc16"), 8, 4))
        bank = MonitorBank(blocks)
        bank.encode_pass(chains)
        chains[4].flops[2].flip()
        reports = bank.decode_pass(chains)
        crc_reports = [r for r, b in zip(reports, bank.blocks)
                       if isinstance(b, CRCMonitorBlock)]
        hamming_reports = [r for r, b in zip(reports, bank.blocks)
                           if isinstance(b, HammingMonitorBlock)]
        assert any(r.error_detected for r in hamming_reports)
        assert not any(r.error_detected for r in crc_reports)

    def test_crc_catches_hamming_miscorrection(self):
        # Two errors in one codeword: the Hamming block mis-corrects,
        # and the CRC over the corrected stream flags the damage.
        circuit, chains = _setup(seed=9)
        blocks = (build_monitor_blocks(HammingCode(7, 4), 8, 4)
                  + build_monitor_blocks(CRCCode.from_name("crc16"), 8, 4))
        bank = MonitorBank(blocks)
        bank.encode_pass(chains)
        chains[0].flops[4].flip()
        chains[2].flops[4].flip()
        reports = bank.decode_pass(chains)
        crc_report = [r for r, b in zip(reports, bank.blocks)
                      if isinstance(b, CRCMonitorBlock)][0]
        assert crc_report.error_detected

    def test_mismatched_chain_lengths_rejected(self):
        circuit = make_random_state_circuit(10, seed=1)
        chains = insert_scan_chains(circuit, 3)
        bank = MonitorBank(build_monitor_blocks(CRCCode.from_name("crc16"),
                                                3, 4))
        with pytest.raises(ValueError):
            bank.encode_pass(chains)

    def test_total_storage_and_netlist(self):
        blocks = build_monitor_blocks(HammingCode(7, 4), 80, 4)
        bank = MonitorBank(blocks)
        assert bank.num_blocks == 20
        assert bank.total_storage_bits(13) == 20 * 13 * 3
        netlist = bank.build_netlist(13)
        assert netlist.count("aon_dff", group="monitor") == 780

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            MonitorBank([])
