"""Tests for the power-gating controllers and the error correction block."""

import pytest

from repro.codes.hamming import HammingCode
from repro.core.controller import (
    ControllerState,
    ErrorCode,
    IllegalTransition,
    MonitoredPowerGatingController,
    PowerGatingController,
)
from repro.core.corrector import CorrectionEvent, ErrorCorrectionBlock


class TestConventionalController:
    def test_fig3a_sequence(self):
        controller = PowerGatingController()
        assert controller.state is ControllerState.ACTIVE
        phases = controller.sleep_request()
        assert phases == ["retain", "power_off"]
        assert controller.state is ControllerState.SLEEP_ENTRY
        controller.sleep_entered()
        assert controller.state is ControllerState.SLEEP
        phases = controller.wake_request()
        assert phases == ["power_on", "restore"]
        assert controller.state is ControllerState.WAKE
        assert controller.wake_completed() is ErrorCode.NONE
        assert controller.state is ControllerState.ACTIVE
        assert controller.sleep_cycles_completed == 1

    def test_illegal_transitions_rejected(self):
        controller = PowerGatingController()
        with pytest.raises(IllegalTransition):
            controller.sleep_entered()
        with pytest.raises(IllegalTransition):
            controller.wake_request()
        controller.sleep_request()
        with pytest.raises(IllegalTransition):
            controller.sleep_request()

    def test_transition_log_records_signals(self):
        controller = PowerGatingController()
        controller.sleep_request()
        controller.sleep_entered()
        log = controller.transition_log
        assert log[0].signal == "sleep=1"
        assert log[1].signal == "sleep_sequence_done"

    def test_reset_returns_to_active(self):
        controller = PowerGatingController()
        controller.sleep_request()
        controller.reset()
        assert controller.state is ControllerState.ACTIVE

    def test_netlist_has_controller_group_cells(self):
        netlist = PowerGatingController().build_netlist(chain_length=13)
        assert netlist.count("dff", group="controller") > 0
        assert len(netlist) > 10


class TestMonitoredController:
    def _run_to_decode(self, controller):
        controller.sleep_request()
        controller.encode_completed()
        controller.sleep_entered()
        controller.wake_request()
        controller.wake_completed()

    def test_fig3b_sequence_with_clean_decode(self):
        controller = MonitoredPowerGatingController()
        phases = controller.sleep_request()
        assert phases == ["encode", "retain", "power_off"]
        assert controller.state is ControllerState.ENCODE
        controller.encode_completed()
        assert controller.state is ControllerState.SLEEP_ENTRY
        controller.sleep_entered()
        phases = controller.wake_request()
        assert phases == ["power_on", "restore", "decode"]
        controller.wake_completed()
        assert controller.state is ControllerState.DECODE
        code = controller.decode_completed(error_detected=False,
                                           fully_corrected=False)
        assert code is ErrorCode.NONE
        assert controller.state is ControllerState.ACTIVE
        assert controller.encode_passes == 1
        assert controller.decode_passes == 1

    def test_corrected_decode_returns_to_active(self):
        controller = MonitoredPowerGatingController()
        self._run_to_decode(controller)
        code = controller.decode_completed(error_detected=True,
                                           fully_corrected=True)
        assert code is ErrorCode.CORRECTED
        assert controller.state is ControllerState.ACTIVE

    def test_uncorrectable_decode_enters_error_state(self):
        controller = MonitoredPowerGatingController()
        self._run_to_decode(controller)
        code = controller.decode_completed(error_detected=True,
                                           fully_corrected=False)
        assert code is ErrorCode.UNCORRECTABLE
        assert controller.state is ControllerState.ERROR
        # Only recovery (or reset) leaves the error state.
        with pytest.raises(IllegalTransition):
            controller.sleep_request()
        controller.recovery_completed()
        assert controller.state is ControllerState.ACTIVE
        assert controller.error_code is ErrorCode.NONE

    def test_encode_required_before_sleep_entry(self):
        controller = MonitoredPowerGatingController()
        controller.sleep_request()
        with pytest.raises(IllegalTransition):
            controller.sleep_entered()

    def test_exactly_one_encode_per_sleep_and_decode_per_wake(self):
        controller = MonitoredPowerGatingController()
        for _ in range(5):
            self._run_to_decode(controller)
            controller.decode_completed(False, False)
        assert controller.encode_passes == 5
        assert controller.decode_passes == 5
        assert controller.sleep_cycles_completed == 5

    def test_monitored_controller_larger_than_conventional(self):
        base = PowerGatingController().build_netlist(13)
        monitored = MonitoredPowerGatingController().build_netlist(13)
        assert len(monitored) > len(base)


class TestErrorCorrectionBlock:
    def test_record_and_clear(self):
        block = ErrorCorrectionBlock(HammingCode(7, 4), num_chains=8)
        block.record([CorrectionEvent(0, 3, 5), CorrectionEvent(1, 6, 2)])
        assert block.num_corrections == 2
        block.clear()
        assert block.num_corrections == 0

    def test_corrected_flop_coordinates(self):
        block = ErrorCorrectionBlock(HammingCode(7, 4), num_chains=8)
        block.record([CorrectionEvent(0, 3, 5)])
        # Chain of length 13: decode cycle 5 touches scan position 7.
        assert block.corrected_flops(13) == ((3, 7),)

    def test_netlist_scales_with_blocks_and_chains(self):
        code = HammingCode(7, 4)
        small = ErrorCorrectionBlock(code, num_chains=4).build_netlist(1)
        large = ErrorCorrectionBlock(code, num_chains=80).build_netlist(20)
        assert len(large) > len(small)
        assert small.count("mux2", group="corrector") == 4
        assert large.count("mux2", group="corrector") == 80

    def test_detection_only_configuration_has_no_decode_logic(self):
        block = ErrorCorrectionBlock(None, num_chains=8)
        netlist = block.build_netlist()
        assert netlist.count("and2", group="corrector") == 0
        assert netlist.count("mux2", group="corrector") == 8

    def test_invalid_chain_count(self):
        with pytest.raises(ValueError):
            ErrorCorrectionBlock(HammingCode(7, 4), num_chains=0)
