"""Round-trip tests pinning down the scan bit-order conventions.

``read_state()``/``load_state()`` are scan-in-side-first while
``circulate()``/``shift_many()`` emit scan-out-side-first; these tests
make the relationship explicit and verify that every consumer of the
emission order translates coordinates correctly (see the module
docstring of :mod:`repro.circuit.scan`).
"""

import random

import pytest

from repro.circuit.flipflop import ScanFlipFlop
from repro.circuit.generators import make_random_state_circuit
from repro.circuit.scan import ScanChain
from repro.core.protected import ProtectedDesign
from repro.faults.patterns import ErrorPattern


def _chain(values):
    return ScanChain([ScanFlipFlop(name=f"ff{i}", init=v)
                      for i, v in enumerate(values)])


class TestEmissionOrder:
    def test_circulate_is_reversed_read_state(self):
        rng = random.Random(7)
        for length in (1, 2, 5, 13, 32):
            values = [rng.randint(0, 1) for _ in range(length)]
            chain = _chain(values)
            observed = chain.circulate()
            assert observed == list(reversed(chain.read_state()))
            assert chain.read_state() == values

    def test_shift_many_emits_scan_out_side_first(self):
        chain = _chain([1, 0, 0])
        # Three shifts of zeros drain the chain scan-out side first:
        # position 2 (0), then position 1 (0), then position 0 (1).
        assert chain.shift_many([0, 0, 0]) == [0, 0, 1]
        assert chain.read_state() == [0, 0, 0]

    def test_circulate_decode_reload_round_trip(self):
        """circulate -> decode -> reload -> compare (the satellite test).

        An emission-order stream maps back to scan order by reversal;
        re-shifting the stream into an equal-length chain also restores
        the state (the first-emitted bit travels back to the scan-out
        side).
        """
        rng = random.Random(99)
        for length in (1, 3, 8, 21):
            values = [rng.randint(0, 1) for _ in range(length)]
            chain = _chain(values)
            stream = chain.circulate()
            # Decode the emission-order stream into scan order...
            decoded_state = list(reversed(stream))
            fresh = _chain([0] * length)
            fresh.load_state(decoded_state)
            assert fresh.read_state() == chain.read_state() == values
            # ...and the pure-shift round trip agrees.
            reshifted = _chain([0] * length)
            reshifted.shift_many(stream)
            assert reshifted.read_state() == values


class TestConsumerCoordinates:
    """The emission-order consumers translate cycle -> position right."""

    @pytest.mark.parametrize("location", [(0, 0), (2, 4), (3, 0), (1, 4)])
    def test_correction_events_name_the_injected_flop(self, location):
        circuit = make_random_state_circuit(20, seed=5)
        design = ProtectedDesign(circuit, codes="hamming(7,4)", num_chains=4)
        pattern = ErrorPattern(locations=frozenset({location}),
                               kind="single")
        outcome = design.sleep_wake_cycle(injection=pattern)
        assert outcome.state_intact
        assert outcome.corrections_applied == 1
        # corrected_flops() converts decode-cycle coordinates back to
        # (chain, scan position); it must name exactly the injected bit.
        assert design.corrector.corrected_flops(design.chain_length) == \
            (location,)

    def test_injector_flips_the_named_scan_positions(self):
        circuit = make_random_state_circuit(20, seed=6)
        design = ProtectedDesign(circuit, codes="crc16", num_chains=4)
        before = [chain.read_state() for chain in design.chains]
        location = (1, 3)
        plan = design.injector.inject(
            ErrorPattern(locations=frozenset({location}), kind="single"))
        after = [chain.read_state() for chain in design.chains]
        assert plan.flipped == (location,)
        for c, (old, new) in enumerate(zip(before, after)):
            for p, (o, n) in enumerate(zip(old, new)):
                expected = o ^ 1 if (c, p) == location else o
                assert n == expected
