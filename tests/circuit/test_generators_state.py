"""Tests for the circuit generators and state snapshots."""

import pytest

from repro.circuit.generators import (
    make_counter,
    make_random_state_circuit,
    make_register_file,
    make_shift_register,
)
from repro.circuit.state import StateSnapshot


class TestCounter:
    def test_counts_up_and_wraps(self):
        counter = make_counter(4)
        for expected in list(range(1, 16)) + [0, 1]:
            assert counter.tick() == expected

    def test_register_count_matches_width(self):
        assert make_counter(16).num_registers == 16

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            make_counter(0)


class TestShiftRegister:
    def test_shifting_behaviour(self):
        sr = make_shift_register(4)
        outs = [sr.shift(b) for b in (1, 0, 1, 1, 0)]
        # Initial zeros leave first, then the first injected bit.
        assert outs == [0, 0, 0, 0, 1]

    def test_register_count(self):
        assert make_shift_register(64).num_registers == 64


class TestRegisterFile:
    def test_write_read_round_trip(self):
        rf = make_register_file(8, 16)
        rf.write(3, 0xBEEF)
        rf.write(0, 0x1234)
        assert rf.read(3) == 0xBEEF
        assert rf.read(0) == 0x1234

    def test_out_of_range_addresses(self):
        rf = make_register_file(4, 8)
        with pytest.raises(IndexError):
            rf.write(4, 1)
        with pytest.raises(IndexError):
            rf.read(-1)

    def test_register_count(self):
        assert make_register_file(16, 32).num_registers == 512


class TestRandomStateCircuit:
    def test_seeded_reproducibility(self):
        a = make_random_state_circuit(200, seed=42)
        b = make_random_state_circuit(200, seed=42)
        assert a.snapshot().values == b.snapshot().values

    def test_different_seeds_differ(self):
        a = make_random_state_circuit(200, seed=1)
        b = make_random_state_circuit(200, seed=2)
        assert a.snapshot().values != b.snapshot().values

    def test_randomize_resets_to_seed(self):
        circuit = make_random_state_circuit(100, seed=5)
        original = circuit.snapshot()
        circuit.registers[0].flip()
        circuit.randomize()
        assert circuit.snapshot().values == original.values


class TestSequentialCircuitInterface:
    def test_snapshot_and_load(self):
        counter = make_counter(8)
        counter.tick()
        counter.tick()
        snap = counter.snapshot()
        counter.tick()
        counter.load_snapshot(snap)
        assert counter.value == 2

    def test_load_state_validates_length(self):
        counter = make_counter(8)
        with pytest.raises(ValueError):
            counter.load_state([0] * 7)

    def test_retention_cycle_via_circuit_helpers(self):
        counter = make_counter(8)
        for _ in range(7):
            counter.tick()
        counter.retain_all()
        counter.power_off_all()
        counter.power_on_all()
        counter.restore_all()
        assert counter.value == 7


class TestStateSnapshot:
    def test_diff_and_distance(self):
        a = StateSnapshot(values=(0, 1, 1, 0))
        b = StateSnapshot(values=(0, 0, 1, 1))
        assert a.diff(b) == (1, 3)
        assert a.hamming_distance(b) == 2

    def test_unknowns_count_as_difference(self):
        a = StateSnapshot(values=(0, 1))
        b = StateSnapshot(values=(0, None))
        assert a.hamming_distance(b) == 1
        assert b.has_unknowns

    def test_diff_requires_equal_length(self):
        with pytest.raises(ValueError):
            StateSnapshot(values=(0,)).diff(StateSnapshot(values=(0, 1)))

    def test_with_flips(self):
        snap = StateSnapshot(values=(0, 1, 0))
        flipped = snap.with_flips((0, 2))
        assert flipped.values == (1, 1, 1)

    def test_as_dict_requires_names(self):
        named = StateSnapshot(values=(1,), names=("a",))
        assert named.as_dict() == {"a": 1}
        with pytest.raises(ValueError):
            StateSnapshot(values=(1,)).as_dict()

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StateSnapshot(values=(1, 0), names=("a",))
