"""Tests for the flip-flop models."""

import pytest

from repro.circuit.flipflop import (
    DFlipFlop,
    PowerState,
    RetentionFlipFlop,
    ScanFlipFlop,
)


class TestDFlipFlop:
    def test_initial_value_defaults_to_unknown(self):
        assert DFlipFlop().q is None

    def test_clock_captures_data(self):
        ff = DFlipFlop(init=0)
        assert ff.clock(1) == 1
        assert ff.q == 1

    def test_reset_and_force(self):
        ff = DFlipFlop(init=1)
        ff.reset()
        assert ff.q == 0
        ff.force(None)
        assert ff.q is None

    def test_flip_inverts_known_values_only(self):
        ff = DFlipFlop(init=1)
        ff.flip()
        assert ff.q == 0
        ff.force(None)
        ff.flip()
        assert ff.q is None

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DFlipFlop(init=2)
        ff = DFlipFlop()
        with pytest.raises(ValueError):
            ff.clock(5)


class TestScanFlipFlop:
    def test_scan_enable_selects_scan_input(self):
        ff = ScanFlipFlop(init=0)
        ff.clock_scan(d=0, si=1, se=1)
        assert ff.q == 1
        ff.clock_scan(d=0, si=1, se=0)
        assert ff.q == 0

    def test_shift_returns_previous_value(self):
        ff = ScanFlipFlop(init=1)
        assert ff.shift(0) == 1
        assert ff.q == 0


class TestRetentionFlipFlop:
    def test_full_retention_sequence_preserves_value(self):
        ff = RetentionFlipFlop(init=1)
        ff.retain()
        ff.power_off()
        assert ff.q is None
        assert ff.retention_value == 1
        ff.power_on()
        ff.restore()
        assert ff.q == 1

    def test_power_off_without_retain_loses_state(self):
        ff = RetentionFlipFlop(init=1)
        ff.power_off()
        ff.power_on()
        ff.restore()
        assert ff.q is None  # nothing was saved

    def test_clock_while_off_raises(self):
        ff = RetentionFlipFlop(init=0)
        ff.power_off()
        with pytest.raises(RuntimeError):
            ff.clock(1)

    def test_retain_while_off_raises(self):
        ff = RetentionFlipFlop(init=0)
        ff.power_off()
        with pytest.raises(RuntimeError):
            ff.retain()

    def test_restore_while_off_raises(self):
        ff = RetentionFlipFlop(init=0)
        ff.retain()
        ff.power_off()
        with pytest.raises(RuntimeError):
            ff.restore()

    def test_corrupt_retention_flips_saved_value(self):
        ff = RetentionFlipFlop(init=0)
        ff.retain()
        ff.power_off()
        ff.corrupt_retention()
        ff.power_on()
        ff.restore()
        assert ff.q == 1

    def test_corrupt_unknown_retention_is_noop(self):
        ff = RetentionFlipFlop(init=0)
        ff.corrupt_retention()
        assert ff.retention_value is None

    def test_power_state_tracking(self):
        ff = RetentionFlipFlop(init=0)
        assert ff.power is PowerState.ON
        ff.retain()
        ff.power_off()
        assert ff.power is PowerState.OFF
        ff.power_on()
        assert ff.power is PowerState.ON

    def test_force_retention(self):
        ff = RetentionFlipFlop(init=0)
        ff.force_retention(1)
        ff.restore()
        assert ff.q == 1
