"""Tests for gate primitives and the netlist container."""

import pytest

from repro.circuit.gates import GATE_ARITY, Gate, GateType, evaluate_gate
from repro.circuit.netlist import (
    Netlist,
    PortDirection,
    netlist_from_counts,
)


class TestGates:
    def test_basic_truth_tables(self):
        assert evaluate_gate(GateType.INV, [0]) == 1
        assert evaluate_gate(GateType.INV, [1]) == 0
        assert evaluate_gate(GateType.AND2, [1, 1]) == 1
        assert evaluate_gate(GateType.AND2, [1, 0]) == 0
        assert evaluate_gate(GateType.NAND2, [1, 1]) == 0
        assert evaluate_gate(GateType.OR2, [0, 0]) == 0
        assert evaluate_gate(GateType.NOR2, [0, 0]) == 1
        assert evaluate_gate(GateType.XOR2, [1, 0]) == 1
        assert evaluate_gate(GateType.XOR2, [1, 1]) == 0
        assert evaluate_gate(GateType.XNOR2, [1, 1]) == 1

    def test_mux2_selects(self):
        # (a, b, sel) -> b when sel else a
        assert evaluate_gate(GateType.MUX2, [0, 1, 1]) == 1
        assert evaluate_gate(GateType.MUX2, [0, 1, 0]) == 0

    def test_wide_gates_reduce(self):
        assert evaluate_gate(GateType.AND2, [1, 1, 1, 1]) == 1
        assert evaluate_gate(GateType.AND2, [1, 1, 0, 1]) == 0
        assert evaluate_gate(GateType.XOR2, [1, 1, 1]) == 1

    def test_arity_enforced(self):
        gate = Gate(GateType.MUX2)
        with pytest.raises(ValueError):
            gate.evaluate([0, 1])

    def test_gate_type_validation(self):
        with pytest.raises(TypeError):
            Gate("and2")

    def test_every_gate_type_has_arity(self):
        for gate_type in GateType:
            assert gate_type in GATE_ARITY


class TestNetlist:
    def test_ports(self):
        netlist = Netlist("top")
        netlist.add_port("clk", PortDirection.INPUT)
        netlist.add_port("data", PortDirection.OUTPUT, width=8)
        assert len(netlist.ports) == 2
        assert netlist.port("data").width == 8
        with pytest.raises(ValueError):
            netlist.add_port("clk", PortDirection.INPUT)
        with pytest.raises(ValueError):
            netlist.add_port("bad", PortDirection.INPUT, width=0)

    def test_cell_counting_and_groups(self):
        netlist = Netlist("top")
        netlist.add_cells("dff", 10, group="core")
        netlist.add_cells("xor2", 4, group="monitor")
        netlist.add_cell("xor2", group="monitor")
        assert len(netlist) == 15
        assert netlist.count("dff") == 10
        assert netlist.count("xor2", group="monitor") == 5
        assert netlist.cell_counts() == {"dff": 10, "xor2": 5}
        assert netlist.cell_counts(group="monitor") == {"xor2": 5}
        assert netlist.groups() == ["core", "monitor"]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Netlist("top").add_cells("dff", -1)

    def test_merge_relabels_group(self):
        parent = Netlist("top")
        child = Netlist("monitor0")
        child.add_cells("xor2", 3, group="core")
        parent.merge(child, group="monitor")
        assert parent.count("xor2", group="monitor") == 3

    def test_merge_keeps_group_by_default(self):
        parent = Netlist("top")
        child = Netlist("sub")
        child.add_cells("and2", 2, group="corrector")
        parent.merge(child)
        assert parent.count("and2", group="corrector") == 2

    def test_copy_is_independent(self):
        original = Netlist("top")
        original.add_cells("dff", 2)
        duplicate = original.copy()
        duplicate.add_cells("dff", 3)
        assert len(original) == 2
        assert len(duplicate) == 5

    def test_netlist_from_counts(self):
        netlist = netlist_from_counts("x", {"inv": 2, "buf": 1},
                                      group="monitor")
        assert netlist.count("inv", group="monitor") == 2
        assert len(netlist) == 3
