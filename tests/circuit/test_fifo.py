"""Tests for the synchronous FIFO case-study circuit."""

import pytest

from repro.circuit.fifo import FIFOError, SyncFIFO


class TestGeometry:
    def test_paper_fifo_register_count(self):
        # 32x32 data bits plus 16 control flops = 1040 registers,
        # matching the paper's 80 chains x 13 flops.
        fifo = SyncFIFO(32, 32)
        assert fifo.num_registers == 1040

    def test_small_fifo_register_count(self):
        fifo = SyncFIFO(8, 4)
        # 32 data flops + 2 * 3-bit pointers + 4 flags = 42.
        assert fifo.num_registers == 8 * 4 + 2 * 3 + 4

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SyncFIFO(0, 4)
        with pytest.raises(ValueError):
            SyncFIFO(4, 0)

    def test_netlist_contains_retention_flops(self):
        fifo = SyncFIFO(8, 8)
        assert fifo.netlist.count("rsdff") == fifo.num_registers


class TestPushPop:
    def test_fifo_ordering(self):
        fifo = SyncFIFO(8, 4)
        for value in (3, 5, 250):
            assert fifo.push_int(value)
        assert fifo.pop_int() == 3
        assert fifo.pop_int() == 5
        assert fifo.pop_int() == 250

    def test_occupancy_and_flags(self):
        fifo = SyncFIFO(4, 4)
        assert fifo.is_empty and not fifo.is_full
        for i in range(4):
            assert fifo.push_int(i)
        assert fifo.is_full and not fifo.is_empty
        assert fifo.occupancy == 4

    def test_push_when_full_rejected_and_flagged(self):
        fifo = SyncFIFO(4, 2)
        fifo.push_int(1)
        fifo.push_int(2)
        assert not fifo.push_int(3)
        assert fifo.pop_int() == 1     # original data not clobbered

    def test_pop_when_empty_returns_none(self):
        fifo = SyncFIFO(4, 2)
        assert fifo.pop() is None

    def test_wrap_around(self):
        fifo = SyncFIFO(8, 4)
        for round_trip in range(10):
            assert fifo.push_int(round_trip % 256)
            assert fifo.pop_int() == round_trip % 256
        assert fifo.is_empty

    def test_push_validates_word(self):
        fifo = SyncFIFO(4, 2)
        with pytest.raises(ValueError):
            fifo.push([1, 0])
        with pytest.raises(ValueError):
            fifo.push([1, 0, 2, 0])

    def test_peek_does_not_consume(self):
        fifo = SyncFIFO(8, 4)
        fifo.push_int(77)
        fifo.push_int(99)
        assert fifo.peek(0) is not None
        assert fifo.peek(5) is None
        assert fifo.occupancy == 2

    def test_reset_clears_everything(self):
        fifo = SyncFIFO(8, 4)
        fifo.push_int(1)
        fifo.push_int(2)
        fifo.reset()
        assert fifo.is_empty
        assert fifo.occupancy == 0
        assert fifo.pop() is None


class TestRetentionInteraction:
    def test_sleep_wake_preserves_contents_without_faults(self):
        fifo = SyncFIFO(8, 8)
        for i in range(5):
            fifo.push_int(i * 31 % 256)
        fifo.retain_all()
        fifo.power_off_all()
        fifo.power_on_all()
        fifo.restore_all()
        for i in range(5):
            assert fifo.pop_int() == i * 31 % 256

    def test_corrupted_pointer_detected_via_unknown_or_mismatch(self):
        fifo = SyncFIFO(8, 8)
        fifo.push_int(42)
        fifo.retain_all()
        fifo.power_off_all()
        # Flip a write-pointer retention bit while asleep.
        fifo._wr_ptr[0].corrupt_retention()
        fifo.power_on_all()
        fifo.restore_all()
        assert fifo.write_pointer != 1

    def test_operating_on_powered_off_fifo_raises(self):
        fifo = SyncFIFO(8, 4)
        fifo.push_int(9)
        fifo.retain_all()
        fifo.power_off_all()
        with pytest.raises(FIFOError):
            fifo.pop()
