"""Tests for scan chains and scan insertion."""

import pytest

from repro.circuit.flipflop import RetentionFlipFlop, ScanFlipFlop
from repro.circuit.generators import make_counter, make_random_state_circuit
from repro.circuit.scan import ScanChain, balance_chains, insert_scan_chains


def _chain_of(values):
    flops = [ScanFlipFlop(name=f"ff{i}", init=v) for i, v in enumerate(values)]
    return ScanChain(flops, name="chain")


class TestScanChain:
    def test_length_and_scan_out(self):
        chain = _chain_of([1, 0, 1])
        assert len(chain) == 3
        assert chain.length == 3
        assert chain.scan_out == 1

    def test_shift_moves_data_towards_scan_out(self):
        chain = _chain_of([1, 0, 1])
        out = chain.shift(0)
        assert out == 1                       # old last value leaves
        assert chain.read_state() == [0, 1, 0]

    def test_shift_many_returns_stream(self):
        chain = _chain_of([1, 1, 0])
        outs = chain.shift_many([0, 0, 0])
        # The pre-existing state leaves scan-out last-element-first.
        assert outs == [0, 1, 1]
        assert chain.read_state() == [0, 0, 0]

    def test_circulate_preserves_state(self):
        values = [1, 0, 0, 1, 1, 0]
        chain = _chain_of(values)
        observed = chain.circulate()
        assert chain.read_state() == values
        assert len(observed) == len(values)
        # The observed stream is the state read scan-out side first.
        assert observed == list(reversed(values))

    def test_load_state(self):
        chain = _chain_of([0, 0, 0])
        chain.load_state([1, 1, 0])
        assert chain.read_state() == [1, 1, 0]
        with pytest.raises(ValueError):
            chain.load_state([1, 0])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ScanChain([])


class TestBalanceChains:
    def test_even_split(self):
        assert balance_chains(12, 4) == [3, 3, 3, 3]

    def test_uneven_split_front_loads_extras(self):
        assert balance_chains(10, 4) == [3, 3, 2, 2]

    def test_paper_fifo_configuration(self):
        # 1040 flops in 80 chains -> 13 flops per chain (paper Section IV).
        assert balance_chains(1040, 80) == [13] * 80

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            balance_chains(4, 0)
        with pytest.raises(ValueError):
            balance_chains(3, 5)


class TestInsertScanChains:
    def test_chains_cover_all_registers_once(self):
        circuit = make_random_state_circuit(100, seed=1)
        chains = insert_scan_chains(circuit, 7)
        assert len(chains) == 7
        flops = [ff for chain in chains for ff in chain.flops]
        assert len(flops) == 100
        assert {id(f) for f in flops} == {id(f) for f in circuit.registers}

    def test_chain_lengths_are_balanced(self):
        circuit = make_random_state_circuit(100, seed=1)
        chains = insert_scan_chains(circuit, 7)
        lengths = [len(c) for c in chains]
        assert max(lengths) - min(lengths) <= 1

    def test_scan_shift_through_inserted_chain(self):
        circuit = make_counter(8)
        for _ in range(5):
            circuit.tick()
        chains = insert_scan_chains(circuit, 1)
        chain = chains[0]
        before = chain.read_state()
        chain.circulate()
        assert chain.read_state() == before

    def test_all_flops_are_retention_type(self):
        circuit = make_counter(8)
        chains = insert_scan_chains(circuit, 2)
        for chain in chains:
            for ff in chain.flops:
                assert isinstance(ff, RetentionFlipFlop)
