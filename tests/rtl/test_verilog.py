"""Tests for the Verilog emitters."""

import re

import pytest

from repro.circuit.fifo import SyncFIFO
from repro.codes.crc import CRCCode
from repro.codes.hamming import HammingCode
from repro.core.protected import ProtectedDesign
from repro.rtl import (
    crc_update_verilog,
    emit_rtl_package,
    hamming_decoder_verilog,
    hamming_encoder_verilog,
    monitored_controller_verilog,
)
from repro.rtl.monitor_rtl import crc_monitor_verilog, hamming_monitor_verilog


def _balanced(text):
    return text.count("module ") == text.count("endmodule")


class TestParityEquations:
    def test_equations_match_software_encoder(self):
        # Each parity equation, evaluated on a data vector, must equal
        # the corresponding bit from the software encoder.
        for n, k in ((7, 4), (15, 11), (31, 26)):
            code = HammingCode(n, k)
            equations = code.parity_equations()
            assert len(equations) == code.r
            data = [(i * 5 + 1) % 2 for i in range(k)]
            parity = code.parity_bits(data)
            for p_idx, indices in enumerate(equations):
                value = 0
                for idx in indices:
                    value ^= data[idx]
                assert value == parity[p_idx]


class TestHammingRTL:
    def test_encoder_structure(self):
        code = HammingCode(7, 4)
        text = hamming_encoder_verilog(code)
        assert _balanced(text)
        assert "module encoder_hamming_7_4" in text
        assert text.count("assign parity[") == 3
        assert "data[3]" in text

    def test_decoder_structure(self):
        code = HammingCode(15, 11)
        text = hamming_decoder_verilog(code)
        assert _balanced(text)
        assert "assign syndrome" in text
        assert text.count("assign corrected[") == 11
        assert "error" in text

    def test_decoder_correction_positions_match_code(self):
        code = HammingCode(7, 4)
        text = hamming_decoder_verilog(code)
        # Data bits live at positional indices 3, 5, 6, 7 of the
        # codeword; the decoder must compare the syndrome against those.
        for position in (3, 5, 6, 7):
            assert f"syndrome == 3'd{position}" in text

    def test_monitor_block_structure(self):
        code = HammingCode(7, 4)
        text = hamming_monitor_verilog(code, chain_length=13)
        assert _balanced(text)
        assert "localparam DEPTH = 13" in text
        assert "state_monitor_hamming_7_4_b0" in text
        assert "u_encoder" in text and "u_decoder" in text
        assert "scan_in = (mode == 2'd2) ? corrected : scan_out" in text

    def test_monitor_block_validates_length(self):
        with pytest.raises(ValueError):
            hamming_monitor_verilog(HammingCode(7, 4), chain_length=0)


class TestCRCRTL:
    def test_signature_register_structure(self):
        code = CRCCode.from_name("crc16")
        text = crc_update_verilog(code)
        assert _balanced(text)
        assert "signature[15]" in text
        # Polynomial 0x8005: taps at bits 15, 2, 0 -> feedback XORs at
        # bits 15 and 2 plus the bit-0 injection.
        assert "signature[2] <= signature[1] ^ feedback;" in text
        assert "signature[15] <= signature[14] ^ feedback;" in text
        assert "signature[0] <= feedback;" in text
        # Non-tapped bit is a plain shift.
        assert "signature[7] <= signature[6];" in text

    def test_monitor_block_structure(self):
        code = CRCCode.from_name("crc16")
        text = crc_monitor_verilog(code, num_inputs=80)
        assert _balanced(text)
        assert "state_monitor_crc16_b0" in text
        assert "stored_signature" in text
        assert "mismatch" in text

    def test_monitor_validates_inputs(self):
        with pytest.raises(ValueError):
            crc_monitor_verilog(CRCCode.from_name("crc16"), num_inputs=0)


class TestControllerRTL:
    def test_all_states_present(self):
        text = monitored_controller_verilog(counter_width=4)
        assert _balanced(text)
        for state in ("ST_ACTIVE", "ST_ENCODE", "ST_SLEEP_ENTRY", "ST_SLEEP",
                      "ST_WAKE", "ST_DECODE", "ST_ERROR"):
            assert state in text
        assert "error_code" in text
        assert "monitor_mode" in text

    def test_counter_width_validation(self):
        with pytest.raises(ValueError):
            monitored_controller_verilog(counter_width=0)


class TestRTLPackage:
    @pytest.fixture(scope="class")
    def package(self):
        fifo = SyncFIFO(8, 8, name="fifo8x8")
        design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                                 num_chains=8)
        return emit_rtl_package(design)

    def test_expected_files_emitted(self, package):
        names = set(package.file_names)
        assert "monitor_hamming_7_4.v" in names
        assert "monitor_crc16.v" in names
        assert "pg_controller_monitored.v" in names
        assert "filelist.f" in names
        assert "INTEGRATION.md" in names

    def test_filelist_lists_only_verilog(self, package):
        entries = package.files["filelist.f"].split()
        assert all(entry.endswith(".v") for entry in entries)
        assert len(entries) == 3

    def test_integration_note_mentions_geometry(self, package):
        note = package.files["INTEGRATION.md"]
        assert "scan chains (monitor) : 8" in note
        assert "hamming(7,4)" in note

    def test_every_verilog_file_is_balanced(self, package):
        for name, text in package.files.items():
            if name.endswith(".v"):
                assert _balanced(text), name

    def test_total_lines_positive(self, package):
        assert package.total_lines > 100

    def test_write_to_directory(self, package, tmp_path):
        target = package.write_to(tmp_path / "rtl")
        written = {p.name for p in target.iterdir()}
        assert written == set(package.file_names)
        content = (target / "pg_controller_monitored.v").read_text()
        assert "ST_DECODE" in content
