"""Property suite: the columnar summary path is bit-identical to the
object path.

The campaign fast path (vectorised sampling ->
``run_batch_summary`` -> ``StreamingCampaignResult.add_batch``) must
produce exactly the counters of the object path (``ErrorPattern``
objects -> ``sleep_wake_cycle_batch`` -> per-sequence ``add``), for
every summary-capable registry engine, every pattern kind and both
inject phases -- including a short final group and the 2-worker
sharded merge.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.campaigns.stats import StreamingCampaignResult   # noqa: E402
from repro.campaigns.tasks import FIFOValidationCampaignTask  # noqa: E402
from repro.circuit.fifo import SyncFIFO                     # noqa: E402
from repro.core.protected import ProtectedDesign            # noqa: E402
from repro.engines.base import BatchOutcomeArrays           # noqa: E402
from repro.engines.registry import available_engines, get_engine  # noqa: E402
from repro.faults.batch import sample_pattern_batch         # noqa: E402
from repro.validation.campaign import (                     # noqa: E402
    run_sharded_single_error_campaign,
)
from repro.validation.testbench import FIFOTestbench        # noqa: E402

GEOMETRY = dict(width=8, depth=8)
CODES = ["hamming(7,4)", "crc16"]
NUM_CHAINS = 8


def _bench(engine, lfsr_seed=7, stimulus_seed=99):
    fifo = SyncFIFO(name="fifo", **GEOMETRY)
    design = ProtectedDesign(fifo, codes=CODES, num_chains=NUM_CHAINS,
                             engine=engine, lfsr_seed=lfsr_seed)
    return FIFOTestbench(design, seed=stimulus_seed)


def summary_engines():
    """Every registered engine advertising working summary support."""
    names = []
    for name in available_engines():
        probe = _bench("reference").dut_design
        engine = get_engine(name, probe)
        if engine.supports_summary:
            names.append(name)
    assert names, "no summary-capable engine registered"
    return names


@pytest.mark.parametrize("engine", summary_engines())
@pytest.mark.parametrize("kind", ("single", "burst", "multiple", "none"))
@pytest.mark.parametrize("phase", ("sleep", "post_wake"))
def test_summary_equals_object_path(engine, kind, phase):
    """Per-field array values and folded counters match the object
    path for the same sampled patterns (batch of 65 spans a word
    boundary)."""
    batch = 65
    rng = np.random.default_rng(20100308)
    tb_summary = _bench(engine)
    tb_object = _bench(engine)
    design = tb_summary.dut_design
    sampled = sample_pattern_batch(kind, design.num_chains,
                                   design.chain_length, batch, rng,
                                   num_errors=4)

    arrays = tb_summary.run_sequence_batch_summary(sampled.flips(), batch,
                                                   phase)
    results = tb_object.run_sequence_batch(sampled.patterns(), phase)

    assert isinstance(arrays, BatchOutcomeArrays)
    assert arrays.batch_size == batch
    for b, result in enumerate(results):
        cycle = result.cycle
        assert int(arrays.injected[b]) == cycle.injected_errors
        assert bool(arrays.detected[b]) == cycle.detected
        assert bool(arrays.corrected_claim[b]) == cycle.corrected_claim
        assert bool(arrays.state_intact[b]) == cycle.state_intact
        assert int(arrays.residual_errors[b]) == cycle.residual_errors
        assert int(arrays.corrections_applied[b]) \
            == cycle.corrections_applied

    streamed = StreamingCampaignResult()
    streamed.add_batch(arrays)
    reference = StreamingCampaignResult()
    for result in results:
        reference.add(result)
    assert streamed == reference


@pytest.mark.parametrize("engine", summary_engines())
def test_summary_leaves_design_state_untouched(engine):
    """Like the object batch path, a summary batch is virtual: the
    circuit state afterwards equals the loaded pre-batch state."""
    tb = _bench(engine)
    design = tb.dut_design
    rng = np.random.default_rng(3)
    sampled = sample_pattern_batch("burst", design.num_chains,
                                   design.chain_length, 16, rng,
                                   num_errors=6)
    tb.run_sequence_batch_summary(sampled.flips(), 16, "sleep")
    before = design._all_state()
    tb.dut_design.sleep_wake_cycle_batch_summary(sampled.flips(), 16)
    assert design._all_state() == before


@pytest.mark.parametrize("kind", ("single", "burst", "none"))
def test_array_mode_chunk_counters_are_engine_independent(kind):
    """run_chunk in array mode: a summary engine and an object-path
    fallback engine (no summary support) give bit-identical results,
    including a short final group (50 sequences, batch 16)."""
    results = {}
    for engine in ("simd", "packed", "batched"):
        task = FIFOValidationCampaignTask(
            width=8, depth=8, codes=tuple(CODES), num_chains=NUM_CHAINS,
            pattern=kind, burst_size=4, engine=engine, batch_size=16,
            sampler="array")
        results[engine] = task.run_chunk(chunk_seed=424242,
                                         num_sequences=50)
    assert results["simd"] == results["packed"]
    assert results["simd"] == results["batched"]
    assert results["simd"].stats.num_sequences == 50


@pytest.mark.parametrize("phase", ("sleep", "post_wake"))
def test_array_mode_matches_object_mode_on_same_patterns(phase):
    """Within one chunk, routing the *same* sampled patterns through
    the summary path and through run_sequence_batch gives equal
    counters -- the inject-phase plumbing included."""
    task_summary = FIFOValidationCampaignTask(
        width=8, depth=8, codes=tuple(CODES), num_chains=NUM_CHAINS,
        pattern="multiple", burst_size=3, engine="simd", batch_size=8,
        inject_phase=phase, sampler="array")
    task_fallback = FIFOValidationCampaignTask(
        width=8, depth=8, codes=tuple(CODES), num_chains=NUM_CHAINS,
        pattern="multiple", burst_size=3, engine="reference", batch_size=8,
        inject_phase=phase, sampler="array")
    assert task_summary.run_chunk(7, 24) == task_fallback.run_chunk(7, 24)


def test_array_mode_sharded_merge_is_worker_count_invariant():
    """1- and 2-worker array-mode campaigns merge to identical
    counters (the chunk plan and per-chunk generators are
    worker-count independent)."""
    kwargs = dict(width=8, depth=8, num_chains=NUM_CHAINS, seed=20100308,
                  chunk_size=16, batch_size=8, engine="simd",
                  sampler="array")
    one = run_sharded_single_error_campaign(64, num_workers=1, **kwargs)
    two = run_sharded_single_error_campaign(64, num_workers=2, **kwargs)
    assert one == two
    assert one.stats.num_sequences == 64
    assert one.stats.detection_rate() == 1.0
    assert one.stats.correction_rate() == 1.0


def test_array_sampler_requires_batch_size_and_known_mode():
    with pytest.raises(ValueError):
        FIFOValidationCampaignTask(sampler="array")
    with pytest.raises(ValueError):
        FIFOValidationCampaignTask(sampler="typo")


def test_scalar_mode_is_the_default_and_unchanged():
    """The sampler field defaults to the historical scalar mode and
    explicit "scalar" is the same campaign (equal fingerprints, equal
    chunk results)."""
    default = FIFOValidationCampaignTask(width=8, depth=8,
                                         num_chains=NUM_CHAINS,
                                         engine="packed")
    explicit = FIFOValidationCampaignTask(width=8, depth=8,
                                          num_chains=NUM_CHAINS,
                                          engine="packed",
                                          sampler="scalar")
    assert default == explicit
    assert default.fingerprint() == explicit.fingerprint()
    assert default.run_chunk(11, 8) == explicit.run_chunk(11, 8)


def test_add_batch_counter_definitions_match_add():
    """Synthetic columnar outcomes covering the rare branches (silent
    corruption, uncorrectable-but-intact, inconsistent) fold exactly
    like their per-sequence records."""
    from repro.campaigns.stats import InjectionRecord

    arrays = BatchOutcomeArrays(
        injected=np.array([0, 1, 2, 3, 1, 0]),
        detected=np.array([False, True, True, False, True, False]),
        uncorrectable=np.array([False, False, True, False, True, False]),
        residual_errors=np.array([0, 0, 2, 3, 1, 0]),
        corrections_applied=np.array([0, 1, 0, 0, 0, 0]))
    batched = StreamingCampaignResult()
    batched.add_batch(arrays)

    reference = StreamingCampaignResult()
    for b in range(6):
        injected = int(arrays.injected[b])
        detected = bool(arrays.detected[b])
        uncorrectable = bool(arrays.uncorrectable[b])
        residual = int(arrays.residual_errors[b])
        intact = residual == 0

        class _Result:
            cycle = None
            error_reported = detected
            mismatch_reported = not intact
            outcome_consistent = intact or (detected and uncorrectable)

        reference.stats.add(InjectionRecord(
            injected=injected, detected=detected,
            corrected=injected > 0 and detected and intact,
            state_intact=intact, residual_errors=residual))
        result = _Result()
        if result.error_reported:
            reference.errors_reported_by_dut += 1
        if result.mismatch_reported:
            reference.mismatches_reported_by_comparator += 1
        if not result.outcome_consistent:
            reference.inconsistent_sequences += 1
    assert batched == reference
