"""Warm persistent executors: lifecycle, pool reuse, incremental task
shipping, streaming backpressure, failure containment, and the
bit-identity acceptance invariant (warm == cold == serial)."""

import multiprocessing
import os
import time
from dataclasses import dataclass

import pytest

from repro.analysis.correction_capability import CorrectionCounters
from repro.campaigns.executors import (
    EXECUTOR_KINDS,
    ChunkExecutionError,
    PersistentProcessExecutor,
    PersistentThreadExecutor,
    resolve_executor,
)
from repro.campaigns.plan import ChunkPlan
from repro.campaigns.runner import CampaignTask, ShardedCampaignRunner
from repro.campaigns.scheduler import CampaignScheduler
from repro.campaigns.tasks import FIFOValidationCampaignTask

WORKER_COUNTS = (1, 2, 4)


@dataclass
class TrialTask(CampaignTask):
    """Cheap deterministic task for exercising pool mechanics."""

    scale: int = 3

    def empty_result(self):
        return CorrectionCounters()

    def run_chunk(self, chunk_seed, num_sequences):
        import random
        rng = random.Random(chunk_seed)
        value = sum(rng.randrange(self.scale * 1000)
                    for _ in range(num_sequences))
        return CorrectionCounters(sequences=num_sequences,
                                  corrected_bits=value)


@dataclass
class FailingTask(TrialTask):
    """Fails on the chunk whose seed hits ``poison_seed``."""

    poison_seed: int = -1

    def run_chunk(self, chunk_seed, num_sequences):
        if chunk_seed == self.poison_seed:
            raise RuntimeError("poisoned chunk")
        return super().run_chunk(chunk_seed, num_sequences)


@dataclass
class DyingTask(TrialTask):
    """Kills its whole worker process on the poisoned chunk."""

    poison_seed: int = -1

    def run_chunk(self, chunk_seed, num_sequences):
        if chunk_seed == self.poison_seed:
            os._exit(13)
        return super().run_chunk(chunk_seed, num_sequences)


def _sampler_task(mode: str) -> FIFOValidationCampaignTask:
    common = dict(width=4, depth=4, codes=("hamming(7,4)", "crc16"),
                  num_chains=4, pattern="burst", burst_size=2,
                  words_per_sequence=2)
    if mode == "scalar":
        return FIFOValidationCampaignTask(engine="packed", **common)
    if mode == "batched":
        return FIFOValidationCampaignTask(engine="batched", batch_size=4,
                                          **common)
    return FIFOValidationCampaignTask(engine="simd", batch_size=4,
                                      sampler="array", **common)


def _warm_children():
    """Live warm-pool worker processes spawned by this process."""
    return [child for child in multiprocessing.active_children()
            if (child.name or "").startswith("repro-warm-worker")]


def _run(pool, task, total=60, seed=11, chunk=10):
    """One campaign through ``pool``; returns the merged counters."""
    entries = ChunkPlan.build(seed, total, chunk).entries
    merged = task.empty_result()
    for _index, result in sorted(pool.submit(iter(entries), task)):
        merged.merge(result)
    return merged


def _serial(task, total=60, seed=11, chunk=10):
    return ShardedCampaignRunner(task, total, seed=seed, chunk_size=chunk,
                                 executor="serial").run()


class TestLifecycle:
    def test_context_manager_tears_the_pool_down(self):
        with PersistentProcessExecutor(2) as pool:
            assert pool.alive_workers == 0  # lazy: nothing spawned yet
            _run(pool, TrialTask())
            assert pool.alive_workers == 2
        assert pool.alive_workers == 0
        assert _warm_children() == []

    def test_close_is_final_and_idempotent(self):
        pool = PersistentProcessExecutor(1)
        _run(pool, TrialTask())
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            list(pool.submit(iter(ChunkPlan.build(1, 10, 5).entries),
                             TrialTask()))

    def test_thread_pool_lifecycle(self):
        with PersistentThreadExecutor(2) as pool:
            assert _run(pool, TrialTask()) == _serial(TrialTask())
        pool.close()  # idempotent after __exit__
        with pytest.raises(RuntimeError, match="closed"):
            list(pool.submit(iter(ChunkPlan.build(1, 10, 5).entries),
                             TrialTask()))

    def test_idle_timeout_reclaims_then_respawns(self):
        with PersistentProcessExecutor(1, idle_timeout=0.2) as pool:
            reference = _run(pool, TrialTask())
            assert pool.alive_workers == 1
            deadline = time.monotonic() + 10.0
            while pool.alive_workers and time.monotonic() < deadline:
                time.sleep(0.05)
            # The pool was reclaimed, but the executor stays usable:
            # the next call pays one cold spin-up again.
            assert pool.alive_workers == 0
            assert _run(pool, TrialTask()) == reference
            assert pool.alive_workers == 1

    def test_constructor_validation(self):
        for cls in (PersistentProcessExecutor, PersistentThreadExecutor):
            with pytest.raises(ValueError):
                cls(0)
            with pytest.raises(ValueError):
                cls(2, window=0)
            with pytest.raises(ValueError):
                cls(2, idle_timeout=0.0)


class TestPoolReuse:
    def test_workers_survive_across_submit_calls(self):
        with PersistentProcessExecutor(2) as pool:
            first = _run(pool, TrialTask())
            pids = sorted(r.process.pid for r in pool._workers.values())
            second = _run(pool, TrialTask(), seed=12)
            assert sorted(r.process.pid
                          for r in pool._workers.values()) == pids
            assert first == _serial(TrialTask())
            assert second == _serial(TrialTask(), seed=12)

    def test_task_ships_at_most_once_per_worker(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")

        class CountingTask(TrialTask):
            pickles = 0

            def __reduce__(self):
                CountingTask.pickles += 1
                return (TrialTask, (self.scale,))

        CountingTask.pickles = 0
        with PersistentProcessExecutor(2, start_method="fork") as pool:
            for seed in (21, 22, 23):
                _run(pool, CountingTask(), seed=seed)
        # Three submit_jobs calls of 6 chunks each historically meant
        # up to 18 task pickles; incremental shipping means one per
        # worker lifetime.
        assert CountingTask.pickles == 2

    def test_repeat_chunks_hit_the_worker_cache(self):
        with PersistentProcessExecutor(1) as pool:
            task = TrialTask()
            entries = ChunkPlan.build(5, 30, 10).entries
            first_call = []
            for _ in pool.submit(iter(entries), task):
                first_call.append(pool.last_chunk_timing)
            second_call = []
            for _ in pool.submit(iter(entries), task):
                second_call.append(pool.last_chunk_timing)
        # First sighting builds the state (a miss), everything after
        # is served warm with zero setup.
        assert [t.cache_hit for t in first_call] == [False, True, True]
        assert all(t.cache_hit for t in second_call)
        assert all(t.setup_seconds == 0.0 for t in second_call)


class TestBackpressure:
    def test_dispatch_never_outruns_the_window(self):
        class CountingFeed:
            def __init__(self, jobs):
                self.jobs = iter(jobs)
                self.pulled = 0

            def __iter__(self):
                return self

            def __next__(self):
                item = next(self.jobs)
                self.pulled += 1
                return item

        task = TrialTask()
        entries = ChunkPlan.build(9, 200, 10).entries  # 20 chunks
        window = 3
        with PersistentProcessExecutor(1, window=window) as pool:
            feed = CountingFeed((None, e, task) for e in entries)
            consumed = 0
            for _ in pool.submit_jobs(feed):
                consumed += 1
                # The lazy feed is topped up only as capacity frees:
                # a huge plan is never materialized into the pool.
                assert feed.pulled <= consumed + window
            assert consumed == len(entries)
            assert feed.pulled == len(entries)

    def test_thread_pool_honours_the_window_too(self):
        task = TrialTask()
        entries = ChunkPlan.build(9, 120, 10).entries
        pulled = []

        def feed():
            for entry in entries:
                pulled.append(entry.index)
                yield (None, entry, task)

        with PersistentThreadExecutor(2, window=4) as pool:
            consumed = 0
            for _ in pool.submit_jobs(feed()):
                consumed += 1
                assert len(pulled) <= consumed + 4


class TestFailureContainment:
    def test_raised_chunk_leaves_the_pool_warm(self):
        plan = ChunkPlan.build(7, 40, 10)
        poison = plan.entries[2].chunk_seed
        with PersistentProcessExecutor(2) as pool:
            with pytest.raises(ChunkExecutionError) as excinfo:
                _run(pool, FailingTask(poison_seed=poison), total=40,
                     seed=7)
            assert "poisoned chunk" in (excinfo.value.worker_traceback
                                        or "")
            # Same pool, next campaign: still correct, nobody died.
            assert _run(pool, TrialTask()) == _serial(TrialTask())
            assert pool.alive_workers == 2
        assert _warm_children() == []

    def test_failure_names_the_chunk(self):
        plan = ChunkPlan.build(7, 40, 10)
        entry = plan.entries[2]
        with PersistentProcessExecutor(1) as pool:
            with pytest.raises(ChunkExecutionError) as excinfo:
                _run(pool, FailingTask(poison_seed=entry.chunk_seed),
                     total=40, seed=7)
        error = excinfo.value
        assert error.chunk_index == entry.index
        assert error.chunk_seed == entry.chunk_seed
        assert error.count == entry.count

    def test_dead_worker_is_reported_and_replaced(self):
        plan = ChunkPlan.build(7, 40, 10)
        poison = plan.entries[1].chunk_seed
        with PersistentProcessExecutor(2) as pool:
            with pytest.raises(ChunkExecutionError) as excinfo:
                _run(pool, DyingTask(poison_seed=poison), total=40,
                     seed=7)
            assert "worker process died" in str(excinfo.value)
            # The next call replaces the dead worker (cold cache) and
            # the pool is whole again.
            assert _run(pool, TrialTask()) == _serial(TrialTask())
            assert pool.alive_workers == 2


class TestWarmBitIdentity:
    """Acceptance invariant: warm results are bit-identical to serial
    for 1/2/4 workers, on a fresh pool and on a reused one."""

    def test_trial_task_fresh_and_reused_pools(self):
        reference = _serial(TrialTask(), total=200, seed=99, chunk=13)
        for workers in WORKER_COUNTS:
            with PersistentProcessExecutor(workers) as pool:
                fresh = _run(pool, TrialTask(), total=200, seed=99,
                             chunk=13)
                reused = _run(pool, TrialTask(), total=200, seed=99,
                              chunk=13)
            assert fresh == reference, workers
            assert reused == reference, workers

    @pytest.mark.parametrize("mode", ("scalar", "batched", "array"))
    def test_sampler_modes_fresh_and_reused_pools(self, mode):
        if mode == "array":
            pytest.importorskip("numpy")
        task = _sampler_task(mode)
        reference = _serial(task, total=12, seed=20100308, chunk=4)
        assert reference.stats.num_sequences == 12
        for workers in (1, 2):
            with PersistentProcessExecutor(workers) as pool:
                fresh = _run(pool, task, total=12, seed=20100308,
                             chunk=4)
                reused = _run(pool, task, total=12, seed=20100308,
                              chunk=4)
            assert fresh == reference, (mode, workers)
            assert reused == reference, (mode, workers)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_thread_warm_matches_serial(self, workers):
        task = _sampler_task("scalar")
        reference = _serial(task, total=12, seed=20100308, chunk=4)
        with PersistentThreadExecutor(workers) as pool:
            fresh = _run(pool, task, total=12, seed=20100308, chunk=4)
            reused = _run(pool, task, total=12, seed=20100308, chunk=4)
        assert fresh == reference
        assert reused == reference


class TestResolveWarmSpecs:
    def test_warm_kind_strings(self):
        for spec in ("process-warm", "warm-process"):
            pool = resolve_executor(spec, 3)
            assert isinstance(pool, PersistentProcessExecutor)
            assert pool.num_workers == 3
            pool.close()
        for spec in ("thread-warm", "warm-thread"):
            pool = resolve_executor(spec, 3)
            assert isinstance(pool, PersistentThreadExecutor)
            assert pool.num_workers == 3
            pool.close()

    def test_warm_kinds_are_advertised(self):
        assert "process-warm" in EXECUTOR_KINDS
        assert "thread-warm" in EXECUTOR_KINDS
        with pytest.raises(ValueError, match="process-warm"):
            resolve_executor("gpu", 2)

    def test_prebuilt_instances_pass_through(self):
        pool = PersistentProcessExecutor(2)
        try:
            assert resolve_executor(pool) is pool
        finally:
            pool.close()


class TestRunnerIntegration:
    def test_runner_with_warm_spec_closes_its_pool(self):
        result = ShardedCampaignRunner(
            TrialTask(), 200, seed=99, chunk_size=13, num_workers=2,
            executor="process-warm").run()
        assert result == _serial(TrialTask(), total=200, seed=99,
                                 chunk=13)
        # The runner resolved the spec, so the runner closed the pool.
        assert _warm_children() == []

    def test_runner_leaves_prebuilt_pool_warm(self):
        with PersistentProcessExecutor(2) as pool:
            for seed in (1, 2):
                result = ShardedCampaignRunner(
                    TrialTask(), 60, seed=seed, chunk_size=10,
                    executor=pool).run()
                assert result == _serial(TrialTask(), seed=seed)
            # Caller-owned pool: still warm after both runs.
            assert pool.alive_workers == 2
        assert _warm_children() == []

    def test_progress_carries_the_setup_compute_split(self):
        task = _sampler_task("scalar")
        snapshots = []
        ShardedCampaignRunner(
            task, 12, seed=5, chunk_size=4, num_workers=1,
            executor="process-warm",
            progress_callback=snapshots.append).run()
        final = snapshots[-1]
        # One worker built the workspace once (setup), then computed
        # every chunk: both halves of the split are visible.
        assert final.setup_seconds > 0.0
        assert final.compute_seconds > 0.0
        assert final.sequences_completed == 12


class TestSchedulerIntegration:
    def test_one_warm_pool_serves_many_jobs(self):
        with CampaignScheduler(executor="process-warm",
                               num_workers=2) as scheduler:
            jobs = [scheduler.submit(TrialTask(), 60, seed=seed,
                                     chunk_size=10)
                    for seed in (31, 32, 33)]
            scheduler.run()
            for seed, job in zip((31, 32, 33), jobs):
                assert job.result == _serial(TrialTask(), seed=seed)
            pool = scheduler.executor
            assert pool.alive_workers == 2  # run() keeps the pool hot
            # A repeated identical campaign is served from the memo
            # without touching the pool.
            repeat = scheduler.submit(TrialTask(), 60, seed=31,
                                      chunk_size=10)
            assert repeat.from_cache
            assert repeat.result == jobs[0].result
        assert _warm_children() == []

    def test_back_to_back_rounds_reuse_the_pool(self):
        with CampaignScheduler(executor="process-warm",
                               num_workers=1) as scheduler:
            scheduler.submit(TrialTask(), 60, seed=41, chunk_size=10)
            scheduler.run()
            pids = sorted(r.process.pid for r in
                          scheduler.executor._workers.values())
            scheduler.submit(TrialTask(), 60, seed=42, chunk_size=10)
            scheduler.run()
            assert sorted(
                r.process.pid for r in
                scheduler.executor._workers.values()) == pids

    def test_prebuilt_pool_is_left_to_its_owner(self):
        with PersistentProcessExecutor(1) as pool:
            with CampaignScheduler(executor=pool) as scheduler:
                scheduler.submit(TrialTask(), 60, seed=51,
                                 chunk_size=10)
                scheduler.run()
            # Scheduler closed; the caller's pool is untouched.
            assert pool.alive_workers == 1
        assert _warm_children() == []

    def test_jobs_accumulate_their_timing_split(self):
        task = _sampler_task("scalar")
        with CampaignScheduler(executor="process-warm",
                               num_workers=1) as scheduler:
            job = scheduler.submit(task, 12, seed=6, chunk_size=4)
            scheduler.run()
        assert job.setup_seconds > 0.0
        assert job.compute_seconds > 0.0
