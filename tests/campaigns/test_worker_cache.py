"""Worker-side state cache: lease accounting, LRU bounds, and the
warm-path determinism contract (reseed == fresh build, bit for bit)."""

from dataclasses import dataclass

import pytest

from repro.analysis.correction_capability import CorrectionCounters
from repro.campaigns.runner import CampaignTask
from repro.campaigns.tasks import FIFOValidationCampaignTask
from repro.campaigns.worker_cache import (
    DEFAULT_MAX_ENTRIES,
    ChunkTiming,
    FIFOChunkWorkspace,
    WorkerStateCache,
    task_state_key,
)


@dataclass
class StatefulTask(CampaignTask):
    """Task whose worker state is an observable sentinel object."""

    label: str = "a"
    builds = []  # class-level: records every build_worker_state call

    def empty_result(self):
        return CorrectionCounters()

    def run_chunk(self, chunk_seed, num_sequences):
        return CorrectionCounters(sequences=num_sequences)

    def build_worker_state(self):
        StatefulTask.builds.append(self.label)
        return {"label": self.label}


@dataclass
class StatelessTask(CampaignTask):
    """Keeps CampaignTask's default (None) worker state."""

    def empty_result(self):
        return CorrectionCounters()

    def run_chunk(self, chunk_seed, num_sequences):
        return CorrectionCounters(sequences=num_sequences)


def _sampler_task(mode: str) -> FIFOValidationCampaignTask:
    common = dict(width=4, depth=4, codes=("hamming(7,4)", "crc16"),
                  num_chains=4, pattern="burst", burst_size=2,
                  words_per_sequence=2)
    if mode == "scalar":
        return FIFOValidationCampaignTask(engine="packed", **common)
    if mode == "batched":
        return FIFOValidationCampaignTask(engine="batched", batch_size=4,
                                          **common)
    return FIFOValidationCampaignTask(engine="simd", batch_size=4,
                                      sampler="array", **common)


class TestTaskStateKey:
    def test_equal_tasks_share_a_key(self):
        assert task_state_key(StatefulTask("x")) == \
            task_state_key(StatefulTask("x"))

    def test_distinct_tasks_get_distinct_keys(self):
        assert task_state_key(StatefulTask("x")) != \
            task_state_key(StatefulTask("y"))

    def test_key_never_depends_on_object_identity(self):
        # Two equal-valued objects at different addresses: one key.
        a, b = StatefulTask("same"), StatefulTask("same")
        assert a is not b
        assert task_state_key(a) == task_state_key(b)

    def test_fingerprint_free_objects_fall_back_to_repr(self):
        class Bare:
            def __repr__(self):
                return "Bare<fixed>"

        assert task_state_key(Bare()) == "Bare<fixed>"


class TestWorkerStateCache:
    def setup_method(self):
        StatefulTask.builds = []

    def test_miss_builds_then_hit_reuses(self):
        cache = WorkerStateCache()
        task = StatefulTask("a")
        state, setup, hit = cache.lease(task)
        assert state == {"label": "a"} and not hit and setup >= 0.0
        again, setup2, hit2 = cache.lease(task)
        assert again is state and hit2 and setup2 == 0.0
        assert StatefulTask.builds == ["a"]
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                 "size": 1}

    def test_equal_valued_tasks_share_one_state(self):
        cache = WorkerStateCache()
        first, _, _ = cache.lease(StatefulTask("a"))
        second, _, hit = cache.lease(StatefulTask("a"))
        assert second is first and hit
        assert StatefulTask.builds == ["a"]

    def test_none_states_are_memoized_too(self):
        # A task without a warm path must not rebuild-per-lease just
        # because its state is None.
        cache = WorkerStateCache()
        state, _, hit = cache.lease(StatelessTask())
        assert state is None and not hit
        state, _, hit = cache.lease(StatelessTask())
        assert state is None and hit
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_beyond_max_entries(self):
        cache = WorkerStateCache(max_entries=2)
        cache.lease(StatefulTask("a"))
        cache.lease(StatefulTask("b"))
        cache.lease(StatefulTask("a"))   # refresh a: b is now LRU
        cache.lease(StatefulTask("c"))   # evicts b
        assert cache.evictions == 1
        assert task_state_key(StatefulTask("a")) in cache
        assert task_state_key(StatefulTask("b")) not in cache
        # b rebuilds; a survived the whole time.
        cache.lease(StatefulTask("b"))
        assert StatefulTask.builds == ["a", "b", "c", "b"]

    def test_clear_drops_states_keeps_counters(self):
        cache = WorkerStateCache()
        cache.lease(StatefulTask("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1
        _, _, hit = cache.lease(StatefulTask("a"))
        assert not hit  # a real rebuild after clear

    def test_default_cap_and_validation(self):
        assert WorkerStateCache().max_entries == DEFAULT_MAX_ENTRIES
        with pytest.raises(ValueError, match="max_entries"):
            WorkerStateCache(max_entries=0)


class TestChunkTiming:
    def test_cache_hit_defaults_false(self):
        timing = ChunkTiming(0.5, 1.5)
        assert timing.setup_seconds == 0.5
        assert timing.compute_seconds == 1.5
        assert timing.cache_hit is False


class TestFIFOChunkWorkspace:
    """The bit-identity contract: a reseeded warm bench is
    indistinguishable from a freshly built one, in every sampler mode,
    for any reuse order, even after a poisoned chunk."""

    SEEDS = (111, 222, 111, 333)  # includes a revisit

    @pytest.mark.parametrize("mode", ("scalar", "batched", "array"))
    def test_warm_equals_cold_across_reuse_orders(self, mode):
        if mode == "array":
            pytest.importorskip("numpy")
        task = _sampler_task(mode)
        workspace = task.build_worker_state()
        assert isinstance(workspace, FIFOChunkWorkspace)
        for chunk_seed in self.SEEDS:
            cold = task.run_chunk(chunk_seed, 4)
            warm = task.run_chunk_warm(workspace, chunk_seed, 4)
            assert warm == cold, (mode, chunk_seed)
        assert workspace.chunks_run == len(self.SEEDS)

    def test_reseed_heals_a_poisoned_bench(self):
        # Strand the bench the way a chunk that raised mid-sequence
        # would: power gated off, scan padding corrupted (padding is
        # injectable but never reset by any test-bench stage), state
        # registers trashed, controller mid-transition.
        task = _sampler_task("scalar")
        workspace = task.build_worker_state()
        reference = task.run_chunk(777, 4)

        design = workspace.design
        for flop in design._padding:
            flop.force(1)
            flop.force_retention(1)
        for flop in design.circuit.registers:
            flop.force(1)
            flop.power_off()
        for flop in workspace.testbench.reference.registers:
            flop.force(1)
        design.controller.sleep_request()

        assert task.run_chunk_warm(workspace, 777, 4) == reference

    def test_engine_cache_survives_reseed(self):
        # The whole point of the workspace: the design's keyed engine
        # cache (workspaces, LUT memos) must not be dropped per chunk.
        task = _sampler_task("batched")
        workspace = task.build_worker_state()
        task.run_chunk_warm(workspace, 1, 4)
        cached = dict(workspace.design._engine_cache)
        assert cached  # the batched run instantiated its engine
        task.run_chunk_warm(workspace, 2, 4)
        for key, engine in cached.items():
            assert workspace.design._engine_cache[key] is engine
