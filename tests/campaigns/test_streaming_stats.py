"""Streaming campaign statistics: API parity, merging, serialization."""

import random

import pytest

from repro.campaigns.stats import (
    InjectionRecord,
    StreamingCampaignResult,
    StreamingCampaignStats,
    injection_record_from_sequence,
)
from repro.faults.campaign import CampaignStats


def random_records(count, seed):
    rng = random.Random(seed)
    records = []
    for _ in range(count):
        injected = rng.choice([0, 0, 1, 1, 2, 4])
        detected = injected > 0 and rng.random() < 0.9
        state_intact = injected == 0 or (detected and rng.random() < 0.7)
        records.append(InjectionRecord(
            injected=injected,
            detected=detected,
            corrected=injected > 0 and detected and state_intact,
            state_intact=state_intact,
            residual_errors=0 if state_intact else injected))
    return records


def brute_force_counts(records):
    """Reference aggregation straight from the record list."""
    return {
        "num_sequences": len(records),
        "total_injected": sum(r.injected for r in records),
        "sequences_with_errors": sum(1 for r in records if r.injected > 0),
        "detected_sequences": sum(1 for r in records if r.detected),
        "corrected_sequences": sum(1 for r in records if r.corrected),
        "silent_corruptions": sum(1 for r in records if r.silent_corruption),
        "intact_sequences": sum(1 for r in records if r.state_intact),
    }


class TestStreamingCampaignStats:
    def test_counters_match_record_list_aggregation(self):
        records = random_records(500, seed=11)
        stats = StreamingCampaignStats()
        for record in records:
            stats.add(record)
        for name, expected in brute_force_counts(records).items():
            assert getattr(stats, name) == expected, name

    def test_rates_match_record_list_definitions(self):
        records = random_records(400, seed=12)
        stats = StreamingCampaignStats()
        for record in records:
            stats.add(record)
        with_errors = [r for r in records if r.injected > 0]
        assert stats.detection_rate() == pytest.approx(
            sum(1 for r in with_errors if r.detected) / len(with_errors))
        assert stats.correction_rate() == pytest.approx(
            sum(1 for r in with_errors if r.corrected) / len(with_errors))
        injected = sum(r.injected for r in records)
        residual = sum(r.residual_errors for r in records)
        assert stats.bit_correction_rate() == pytest.approx(
            (injected - residual) / injected)

    def test_empty_campaign_rates(self):
        stats = StreamingCampaignStats()
        assert stats.detection_rate() == 1.0
        assert stats.correction_rate() == 1.0
        assert stats.bit_correction_rate() == 1.0

    def test_merge_equals_sequential_accumulation(self):
        records = random_records(300, seed=13)
        whole = StreamingCampaignStats()
        for record in records:
            whole.add(record)
        # Any partition, merged in any order, gives the same counters.
        for split in (1, 57, 150, 299):
            left = StreamingCampaignStats()
            right = StreamingCampaignStats()
            for record in records[:split]:
                left.add(record)
            for record in records[split:]:
                right.add(record)
            merged = StreamingCampaignStats().merge(right).merge(left)
            assert merged == whole

    def test_merge_returns_self_in_place(self):
        stats = StreamingCampaignStats()
        other = StreamingCampaignStats(num_sequences=3, intact_sequences=3)
        assert stats.merge(other) is stats
        assert stats.num_sequences == 3

    def test_dict_round_trip(self):
        records = random_records(100, seed=14)
        stats = StreamingCampaignStats()
        for record in records:
            stats.add(record)
        assert StreamingCampaignStats.from_dict(stats.to_dict()) == stats

    def test_summary_layout_unchanged(self):
        stats = StreamingCampaignStats()
        stats.add(InjectionRecord(injected=1, detected=True, corrected=True,
                                  state_intact=True))
        summary = stats.summary()
        for label in ("sequences run", "detection rate",
                      "full-correction rate", "bit correction rate",
                      "silent corruptions"):
            assert label in summary

    def test_faults_campaign_alias_is_streaming(self):
        """repro.faults.campaign.CampaignStats is the streaming type."""
        stats = CampaignStats()
        assert isinstance(stats, StreamingCampaignStats)
        stats.add(InjectionRecord(injected=2, detected=True, corrected=False,
                                  state_intact=False, residual_errors=2))
        assert stats.num_sequences == 1
        assert not hasattr(stats, "records")


class FakeCycle:
    def __init__(self, injected, detected, intact, residual=None):
        self.injected_errors = injected
        self.detected = detected
        self.state_intact = intact
        self.residual_errors = (residual if residual is not None
                                else (0 if intact else injected))


class FakeSequence:
    def __init__(self, cycle, error_reported=None, mismatch=False,
                 consistent=True):
        self.cycle = cycle
        self.error_reported = (cycle.detected if error_reported is None
                               else error_reported)
        self.mismatch_reported = mismatch
        self.outcome_consistent = consistent


class TestInjectionRecordFromSequence:
    def test_detected_and_intact_counts_as_corrected(self):
        record = injection_record_from_sequence(
            FakeSequence(FakeCycle(injected=1, detected=True, intact=True)))
        assert record.corrected

    def test_undetected_intact_sequence_is_not_corrected(self):
        """Regression: an injected error the monitor never saw must not
        count as corrected, even if the state happens to be intact."""
        record = injection_record_from_sequence(
            FakeSequence(FakeCycle(injected=1, detected=False, intact=True)))
        assert not record.corrected

    def test_clean_sequence_is_not_corrected(self):
        record = injection_record_from_sequence(
            FakeSequence(FakeCycle(injected=0, detected=False, intact=True)))
        assert not record.corrected
        assert record.injected == 0


class TestStreamingCampaignResult:
    def _sequences(self):
        return [
            FakeSequence(FakeCycle(1, True, True)),
            FakeSequence(FakeCycle(4, True, False), mismatch=True,
                         consistent=False),
            FakeSequence(FakeCycle(0, False, True)),
        ]

    def test_fig8_counters(self):
        result = StreamingCampaignResult()
        for sequence in self._sequences():
            result.add(sequence)
        assert result.stats.num_sequences == 3
        assert result.errors_reported_by_dut == 2
        assert result.mismatches_reported_by_comparator == 1
        assert result.inconsistent_sequences == 1

    def test_merge_and_round_trip(self):
        whole = StreamingCampaignResult()
        left = StreamingCampaignResult()
        right = StreamingCampaignResult()
        sequences = self._sequences() * 4
        for sequence in sequences:
            whole.add(sequence)
        for sequence in sequences[:5]:
            left.add(sequence)
        for sequence in sequences[5:]:
            right.add(sequence)
        assert left.merge(right) == whole
        assert StreamingCampaignResult.from_dict(whole.to_dict()) == whole

    def test_summary_includes_fig8_lines(self):
        result = StreamingCampaignResult()
        result.add(FakeSequence(FakeCycle(1, True, True)))
        summary = result.summary()
        assert "errors reported by DUT" in summary
        assert "comparator mismatches" in summary
        assert "inconsistent sequences" in summary
