"""Checkpoint layer: interval flush policy, atomicity, crash windows."""

import json

import pytest

from repro.campaigns.checkpoints import CheckpointStore
from repro.campaigns.runner import ShardedCampaignRunner
from tests.campaigns.test_executors import TrialTask


def _count_writes(monkeypatch):
    """Count payload rewrites going through CheckpointStore.write."""
    writes = []
    original = CheckpointStore.write

    def counting(self, header, completed):
        writes.append(len(completed))
        return original(self, header, completed)

    monkeypatch.setattr(CheckpointStore, "write", counting)
    return writes


class TestSaveInterval:
    def test_interval_bounds_write_count(self, tmp_path, monkeypatch):
        writes = _count_writes(monkeypatch)
        path = str(tmp_path / "campaign.json")
        ShardedCampaignRunner(TrialTask(), 120, seed=4, chunk_size=10,
                              checkpoint_path=path, save_interval=4).run()
        # 12 chunks at interval 4: three flushes, nothing left for the
        # final flush -- not twelve growing rewrites.
        assert writes == [4, 8, 12]
        payload = json.loads((tmp_path / "campaign.json").read_text())
        assert len(payload["completed"]) == 12

    def test_partial_interval_flushed_at_end(self, tmp_path, monkeypatch):
        writes = _count_writes(monkeypatch)
        path = str(tmp_path / "campaign.json")
        ShardedCampaignRunner(TrialTask(), 100, seed=4, chunk_size=10,
                              checkpoint_path=path, save_interval=4).run()
        # 10 chunks: two interval flushes plus the final partial one.
        assert writes == [4, 8, 10]

    def test_interval_one_is_historical_behaviour(self, tmp_path,
                                                  monkeypatch):
        writes = _count_writes(monkeypatch)
        path = str(tmp_path / "campaign.json")
        ShardedCampaignRunner(TrialTask(), 60, seed=4, chunk_size=10,
                              checkpoint_path=path).run()
        assert writes == [1, 2, 3, 4, 5, 6]

    def test_result_independent_of_save_interval(self, tmp_path):
        reference = ShardedCampaignRunner(TrialTask(), 90, seed=11,
                                          chunk_size=9).run()
        for interval in (1, 3, 7, 100):
            path = str(tmp_path / f"ckpt{interval}.json")
            result = ShardedCampaignRunner(
                TrialTask(), 90, seed=11, chunk_size=9,
                checkpoint_path=path, save_interval=interval).run()
            assert result == reference

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path / "x.json"), save_interval=0)
        with pytest.raises(ValueError):
            ShardedCampaignRunner(TrialTask(), 10, seed=1, save_interval=0)


class TestCrashWindow:
    def test_hard_crash_loses_at_most_one_interval(self, tmp_path):
        """Kill-9 semantics: freeze the file as it was mid-run, resume
        from it, and prove the loss is bounded by ``save_interval``."""
        path = tmp_path / "campaign.json"
        reference = ShardedCampaignRunner(TrialTask(), 100, seed=42,
                                          chunk_size=10).run()
        interval = 3
        snapshot = {}

        def crash_after_seven(event):
            if event.chunks_completed == 7 and "bytes" not in snapshot:
                # A hard kill preserves whatever the store last wrote.
                snapshot["bytes"] = path.read_bytes()

        ShardedCampaignRunner(TrialTask(), 100, seed=42, chunk_size=10,
                              checkpoint_path=str(path),
                              save_interval=interval,
                              progress_callback=crash_after_seven).run()
        path.write_bytes(snapshot["bytes"])
        persisted = json.loads(path.read_text())["completed"]
        # 7 chunks were done; the file holds the last full interval.
        assert len(persisted) == 6
        assert 7 - len(persisted) <= interval

        reruns = []
        original = TrialTask.run_chunk

        def counting(self, seed, count):
            reruns.append(seed)
            return original(self, seed, count)

        TrialTask.run_chunk = counting
        try:
            resumed = ShardedCampaignRunner(
                TrialTask(), 100, seed=42, chunk_size=10,
                checkpoint_path=str(path), save_interval=interval).run()
        finally:
            TrialTask.run_chunk = original
        assert resumed == reference
        assert len(reruns) == 10 - len(persisted)

    def test_resume_mid_interval_under_parallel_executors(self, tmp_path):
        """Interval checkpoints restore correctly when the resumed run
        fans out over a pool."""
        path = str(tmp_path / "campaign.json")
        reference = ShardedCampaignRunner(TrialTask(), 80, seed=5,
                                          chunk_size=10).run()
        ShardedCampaignRunner(TrialTask(), 80, seed=5, chunk_size=10,
                              checkpoint_path=path, save_interval=3).run()
        payload = json.loads((tmp_path / "campaign.json").read_text())
        for lost in ("1", "4", "6"):
            del payload["completed"][lost]
        (tmp_path / "campaign.json").write_text(json.dumps(payload))
        for spec in ("thread", "process"):
            resumed = ShardedCampaignRunner(
                TrialTask(), 80, seed=5, chunk_size=10,
                checkpoint_path=path, save_interval=3, num_workers=2,
                executor=spec).run()
            assert resumed == reference


class TestStoreMechanics:
    def test_none_path_is_inert(self):
        store = CheckpointStore(None, save_interval=5)
        store.attach({"k": 1}, {})
        store.record(0, object())
        store.flush()
        assert store.load_payload() is None
        assert store.unsaved_chunks == 0

    def test_atomic_replace_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        ShardedCampaignRunner(TrialTask(), 30, seed=2, chunk_size=10,
                              checkpoint_path=path, save_interval=2).run()
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []

    def test_validate_reports_stale_fields(self):
        with pytest.raises(ValueError, match="stale fields: seed"):
            CheckpointStore.validate({"seed": 1, "total": 5},
                                     {"seed": 2, "total": 5})
