"""Plan layer: pure data, identity-determined, boundary-exact."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns.plan import (
    ChunkPlan,
    ChunkPlanEntry,
    default_chunk_size,
    resolve_chunk_size,
)


class TestChunkPlan:
    def test_pure_function_of_identity(self):
        a = ChunkPlan.build("root", 100, 7)
        b = ChunkPlan.build("root", 100, 7)
        assert a == b
        assert a.identity == ("root", 100, 7)
        # A different root changes every seed but no boundary.
        c = ChunkPlan.build("other", 100, 7)
        assert [e.count for e in c] == [e.count for e in a]
        assert all(x.chunk_seed != y.chunk_seed
                   for x, y in zip(a.entries, c.entries))

    @given(total=st.integers(1, 5000), chunk=st.integers(1, 257))
    @settings(max_examples=60, deadline=None)
    def test_entries_cover_total_exactly(self, total, chunk):
        plan = ChunkPlan.build(12345, total, chunk)
        assert sum(e.count for e in plan) == total
        assert [e.index for e in plan] == list(range(plan.num_chunks))
        # Only the final chunk may be short.
        assert all(e.count == chunk for e in plan.entries[:-1])
        assert 1 <= plan.entries[-1].count <= chunk
        assert len({e.chunk_seed for e in plan}) == plan.num_chunks

    def test_entries_are_plain_tuples(self):
        entry = ChunkPlan.build(1, 10, 4).entries[0]
        assert isinstance(entry, ChunkPlanEntry)
        assert entry == (entry.index, entry.chunk_seed, entry.count)

    def test_pending_filters_completed(self):
        plan = ChunkPlan.build(1, 20, 5)
        assert plan.pending({}) == list(plan.entries)
        assert [e.index for e in plan.pending({0: "x", 2: "y"})] == [1, 3]
        assert plan.counts() == {0: 5, 1: 5, 2: 5, 3: 5}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ChunkPlan.build(1, 0, 4)
        with pytest.raises(ValueError):
            ChunkPlan.build(1, 10, 0)


class TestChunkSizes:
    def test_default_chunk_size_total_only(self):
        assert default_chunk_size(1) == 1
        assert default_chunk_size(64) == 1
        assert default_chunk_size(10**6) == 15625

    def test_resolve_respects_explicit_size(self):
        assert resolve_chunk_size(1000, 37, granularity=8) == 37

    def test_resolve_rounds_default_to_granularity(self):
        base = default_chunk_size(10**6)
        assert resolve_chunk_size(10**6, None, granularity=256) % 256 == 0
        assert resolve_chunk_size(10**6, None, granularity=256) >= base

    def test_resolve_rejects_bad_explicit_size(self):
        with pytest.raises(ValueError):
            resolve_chunk_size(100, 0)
