"""Sharded runner: worker-count determinism, checkpoint/resume, progress."""

import json
from dataclasses import dataclass

import pytest

from repro.analysis.correction_capability import (
    CorrectionCounters,
    correction_capability_curve,
)
from repro.campaigns.runner import (
    CampaignProgress,
    CampaignTask,
    ShardedCampaignRunner,
    default_chunk_size,
)
from repro.campaigns.tasks import FIFOValidationCampaignTask
from repro.codes.hamming import HammingCode


@dataclass
class TrialTask(CampaignTask):
    """Cheap deterministic task for exercising the runner mechanics."""

    scale: int = 3

    def empty_result(self):
        return CorrectionCounters()

    def run_chunk(self, chunk_seed, num_sequences):
        import random
        rng = random.Random(chunk_seed)
        value = sum(rng.randrange(self.scale * 1000)
                    for _ in range(num_sequences))
        return CorrectionCounters(sequences=num_sequences,
                                  corrected_bits=value)


def _tiny_fifo_task(pattern="single", engine="packed", burst_size=3):
    return FIFOValidationCampaignTask(
        width=4, depth=4, codes=("hamming(7,4)", "crc16"), num_chains=4,
        pattern=pattern, burst_size=burst_size, engine=engine,
        words_per_sequence=2)


class TestRunnerMechanics:
    def test_chunk_plan_independent_of_worker_count(self):
        plans = [ShardedCampaignRunner(TrialTask(), 100, seed=5,
                                       num_workers=workers).plan_chunks()
                 for workers in (1, 2, 8)]
        assert plans[0] == plans[1] == plans[2]

    def test_chunk_plan_covers_total_exactly(self):
        runner = ShardedCampaignRunner(TrialTask(), 103, seed=5,
                                       chunk_size=10)
        plan = runner.plan_chunks()
        assert len(plan) == 11
        assert sum(count for _, _, count in plan) == 103
        assert plan[-1][2] == 3
        assert len({seed for _, seed, _ in plan}) == len(plan)

    def test_default_chunk_size_worker_independent(self):
        assert default_chunk_size(1) == 1
        assert default_chunk_size(64) == 1
        assert default_chunk_size(10**6) == 15625

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ShardedCampaignRunner(TrialTask(), 0, seed=1)
        with pytest.raises(ValueError):
            ShardedCampaignRunner(TrialTask(), 10, seed=1, num_workers=0)
        with pytest.raises(ValueError):
            ShardedCampaignRunner(TrialTask(), 10, seed=1, chunk_size=0)

    def test_result_identical_for_any_worker_count(self):
        results = [
            ShardedCampaignRunner(TrialTask(), 200, seed=99, chunk_size=13,
                                  num_workers=workers).run()
            for workers in (1, 2, 4)]
        assert results[0] == results[1] == results[2]
        assert results[0].sequences == 200

    def test_progress_callback_sequence(self):
        events = []
        runner = ShardedCampaignRunner(TrialTask(), 20, seed=1, chunk_size=5,
                                       progress_callback=events.append)
        runner.run()
        assert len(events) == 4
        assert all(isinstance(e, CampaignProgress) for e in events)
        completed = [e.sequences_completed for e in events]
        assert completed == [5, 10, 15, 20]
        assert events[-1].fraction == 1.0
        assert events[-1].num_chunks == 4


class TestProgressEstimates:
    """Satellite: elapsed/throughput/ETA, computed in the parent."""

    def test_fields_computed_without_worker_changes(self):
        events = []
        ShardedCampaignRunner(TrialTask(), 40, seed=1, chunk_size=10,
                              progress_callback=events.append).run()
        assert [e.sequences_completed for e in events] == [10, 20, 30, 40]
        elapsed = [e.elapsed for e in events]
        assert all(t >= 0 for t in elapsed)
        assert elapsed == sorted(elapsed)
        assert all(e.sequences_restored == 0 for e in events)
        assert events[-1].sequences_per_second > 0
        # Finished campaign: nothing left, ETA collapses to zero.
        assert events[-1].eta_seconds == pytest.approx(0.0)

    def test_rate_and_eta_arithmetic(self):
        snap = CampaignProgress(
            chunk_index=3, chunks_completed=4, num_chunks=10,
            sequences_completed=40, total_sequences=100,
            elapsed=2.0, sequences_restored=10)
        # 30 sequences executed in 2 s; restored chunks excluded.
        assert snap.sequences_per_second == pytest.approx(15.0)
        assert snap.eta_seconds == pytest.approx(60 / 15.0)

    def test_no_rate_before_any_signal(self):
        restored = CampaignProgress(
            chunk_index=0, chunks_completed=2, num_chunks=4,
            sequences_completed=20, total_sequences=40,
            from_checkpoint=True, elapsed=0.5, sequences_restored=20)
        assert restored.sequences_per_second == 0.0
        assert restored.eta_seconds is None


class TestCheckpointResume:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        first = ShardedCampaignRunner(TrialTask(), 60, seed=42, chunk_size=10,
                                      checkpoint_path=path).run()
        payload = json.loads((tmp_path / "campaign.json").read_text())
        assert len(payload["completed"]) == 6
        # Resume over a complete checkpoint re-runs nothing...
        resumed = ShardedCampaignRunner(TrialTask(), 60, seed=42,
                                        chunk_size=10,
                                        checkpoint_path=path)
        calls = []
        original = TrialTask.run_chunk

        def counting(self, seed, count):
            calls.append(seed)
            return original(self, seed, count)

        TrialTask.run_chunk = counting
        try:
            assert resumed.run() == first
            assert calls == []
        finally:
            TrialTask.run_chunk = original

    def test_partial_resume_matches_uninterrupted_run(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        reference = ShardedCampaignRunner(TrialTask(), 60, seed=42,
                                          chunk_size=10).run()
        ShardedCampaignRunner(TrialTask(), 60, seed=42, chunk_size=10,
                              checkpoint_path=path).run()
        # Drop two chunks to simulate an interruption, then resume.
        payload = json.loads((tmp_path / "campaign.json").read_text())
        for lost in ("2", "5"):
            del payload["completed"][lost]
        (tmp_path / "campaign.json").write_text(json.dumps(payload))
        events = []
        resumed = ShardedCampaignRunner(TrialTask(), 60, seed=42,
                                        chunk_size=10, checkpoint_path=path,
                                        progress_callback=events.append)
        assert resumed.run() == reference
        # First event reports the restored chunks, then one per re-run.
        assert events[0].from_checkpoint
        assert events[0].sequences_completed == 40
        assert [e.sequences_completed for e in events[1:]] == [50, 60]

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        ShardedCampaignRunner(TrialTask(), 60, seed=42, chunk_size=10,
                              checkpoint_path=path).run()
        for kwargs in ({"seed": 43}, {"chunk_size": 12},
                       {"total_sequences": 70}):
            merged = {"seed": 42, "chunk_size": 10, "total_sequences": 60}
            merged.update(kwargs)
            total = merged.pop("total_sequences")
            with pytest.raises(ValueError, match="checkpoint"):
                ShardedCampaignRunner(TrialTask(), total,
                                      checkpoint_path=path, **merged).run()
        with pytest.raises(ValueError, match="checkpoint"):
            ShardedCampaignRunner(TrialTask(scale=4), 60, seed=42,
                                  chunk_size=10, checkpoint_path=path).run()

    def test_random_root_recorded_and_adopted(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        first = ShardedCampaignRunner(TrialTask(), 30, seed=None,
                                      chunk_size=10, checkpoint_path=path)
        result = first.run()
        resumed = ShardedCampaignRunner(TrialTask(), 30, seed=None,
                                        chunk_size=10, checkpoint_path=path)
        assert resumed.run() == result
        assert resumed.root_seed == first.root_seed


class TestValidationCampaignDeterminism:
    """The PR's acceptance property on the real Fig. 8 campaign."""

    def test_single_error_campaign_identical_for_1_2_4_workers(self):
        results = [
            ShardedCampaignRunner(_tiny_fifo_task("single"), 24,
                                  seed=20100308, chunk_size=4,
                                  num_workers=workers).run()
            for workers in (1, 2, 4)]
        assert results[0] == results[1] == results[2]
        stats = results[0].stats
        assert stats.num_sequences == 24
        # Paper headline: every single error detected and corrected.
        assert stats.detection_rate() == 1.0
        assert stats.correction_rate() == 1.0
        assert results[0].mismatches_reported_by_comparator == 0

    def test_burst_campaign_identical_across_workers_and_engines(self):
        burst_results = {}
        for engine in ("reference", "packed"):
            burst_results[engine] = [
                ShardedCampaignRunner(_tiny_fifo_task("burst", engine), 12,
                                      seed=77, chunk_size=3,
                                      num_workers=workers).run()
                for workers in (1, 2)]
            assert burst_results[engine][0] == burst_results[engine][1]
        # The packed engine is bit-exact against the reference, so the
        # sharded statistics agree across engines too.
        assert burst_results["packed"][0] == burst_results["reference"][0]
        stats = burst_results["packed"][0].stats
        assert stats.detection_rate() == 1.0
        assert stats.correction_rate() < 1.0

    def test_unknown_engine_fails_at_task_construction(self):
        with pytest.raises(ValueError, match="fpga"):
            _tiny_fifo_task(engine="fpga")
        with pytest.raises(ValueError, match="pattern"):
            FIFOValidationCampaignTask(pattern="gaussian")


class TestCorrectionCapabilitySharding:
    def test_curve_identical_for_1_and_3_workers(self):
        curves = [
            correction_capability_curve(
                HammingCode(15, 11), error_counts=(2, 6), num_bits=300,
                sequences=240, seed=9, engine="packed",
                num_workers=workers, chunk_size=40)
            for workers in (1, 3)]
        assert curves[0] == curves[1]
        assert all(point.sequences == 240 for point in curves[0])
