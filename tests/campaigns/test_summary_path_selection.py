"""Campaign-level summary-path selection (``summary_path`` task field).

The task field routes the delta/dense choice into the engine, bumps
the task fingerprint (pre-existing checkpoints are refused with a
message naming the field), and validates eagerly: forced paths need
the array sampler and a summary-capable engine.
"""

import json

import pytest

np = pytest.importorskip("numpy")

from repro.campaigns.checkpoints import CheckpointStore           # noqa: E402
from repro.campaigns.runner import ShardedCampaignRunner          # noqa: E402
from repro.campaigns.tasks import FIFOValidationCampaignTask      # noqa: E402

COMMON = dict(width=8, depth=8, codes=("hamming(7,4)", "crc16"),
              num_chains=8, batch_size=16, engine="simd",
              sampler="array")


def test_unknown_summary_path_rejected():
    with pytest.raises(ValueError, match="summary_path"):
        FIFOValidationCampaignTask(summary_path="fast", **COMMON)


def test_forced_path_requires_array_sampler():
    with pytest.raises(ValueError, match="sampler='array'"):
        FIFOValidationCampaignTask(summary_path="delta", engine="simd")


def test_forced_path_requires_summary_engine():
    """The object-path fallback cannot honour a forced path; the chunk
    fails loudly instead of silently running the fallback."""
    task = FIFOValidationCampaignTask(
        width=8, depth=8, codes=("hamming(7,4)", "crc16"), num_chains=8,
        batch_size=16, engine="packed", sampler="array",
        summary_path="delta")
    with pytest.raises(ValueError, match="summary_path"):
        task.run_chunk(chunk_seed=1, num_sequences=16)


@pytest.mark.parametrize("kind", ("single", "burst", "multiple"))
def test_delta_campaign_counters_match_dense(kind):
    """End to end through run_chunk: forced delta, forced dense and
    auto produce bit-identical chunk counters (short final group
    included)."""
    results = {}
    for path in ("delta", "dense", "auto"):
        task = FIFOValidationCampaignTask(pattern=kind, burst_size=3,
                                          summary_path=path, **COMMON)
        results[path] = task.run_chunk(chunk_seed=424242,
                                       num_sequences=50)
    assert results["delta"] == results["dense"]
    assert results["delta"] == results["auto"]
    assert results["delta"].stats.num_sequences == 50


def test_sharded_driver_forwards_summary_path():
    """The validation-campaign facade forwards summary_path to the
    task; forced paths and auto agree and stay worker-count
    deterministic."""
    from repro.validation.campaign import run_sharded_single_error_campaign

    kwargs = dict(width=8, depth=8, num_chains=8, seed=20100308,
                  chunk_size=16, batch_size=8, engine="simd",
                  sampler="array")
    delta = run_sharded_single_error_campaign(64, summary_path="delta",
                                              **kwargs)
    dense = run_sharded_single_error_campaign(64, summary_path="dense",
                                              **kwargs)
    auto = run_sharded_single_error_campaign(64, **kwargs)
    assert delta == dense == auto
    two = run_sharded_single_error_campaign(64, summary_path="delta",
                                            num_workers=2, **kwargs)
    assert two == delta


def _register_pure_jit(name="jit-pure"):
    """A registry entry for the fused engine in interpreter mode, so
    the campaign plumbing is exercised end to end without numba."""
    from repro.engines.jit import JitFusedEngine
    from repro.engines.registry import register_engine

    register_engine(name, lambda design: JitFusedEngine(
        design.monitor_bank, design.num_chains, design.chain_length,
        compiled=False))


def test_jit_path_accepted_and_routed():
    """summary_path='jit' passes task validation and reaches the
    engine; counters are bit-identical to the simd paths on the same
    seeds."""
    from repro.engines.registry import unregister_engine

    _register_pure_jit()
    try:
        jit = FIFOValidationCampaignTask(
            summary_path="jit", **dict(COMMON, engine="jit-pure"))
        auto = FIFOValidationCampaignTask(
            **dict(COMMON, engine="jit-pure"))
        simd = FIFOValidationCampaignTask(**COMMON)
        results = [task.run_chunk(chunk_seed=424242, num_sequences=50)
                   for task in (jit, auto, simd)]
        assert results[0] == results[1] == results[2]
        assert results[0].stats.num_sequences == 50
    finally:
        unregister_engine("jit-pure")


def test_forced_jit_path_on_simd_engine_fails_loudly():
    """Only the jit engine provides the 'jit' path; the simd engine
    rejects it with its unknown-path error rather than silently
    running something else."""
    task = FIFOValidationCampaignTask(summary_path="jit", **COMMON)
    with pytest.raises(ValueError, match="unknown summary path"):
        task.run_chunk(chunk_seed=1, num_sequences=16)


def test_sharded_jit_campaign_is_worker_count_deterministic():
    """1- and 2-worker sharded runs of a jit-path campaign produce
    identical counters (the thread executor shares the registry, so
    the inline registration is visible to every worker)."""
    from repro.engines.registry import unregister_engine
    from repro.validation.campaign import run_sharded_single_error_campaign

    _register_pure_jit()
    try:
        kwargs = dict(width=8, depth=8, num_chains=8, seed=20100308,
                      chunk_size=16, batch_size=8, engine="jit-pure",
                      sampler="array", summary_path="jit",
                      executor="thread")
        one = run_sharded_single_error_campaign(64, **kwargs)
        two = run_sharded_single_error_campaign(64, num_workers=2,
                                                **kwargs)
        simd = run_sharded_single_error_campaign(
            64, width=8, depth=8, num_chains=8, seed=20100308,
            chunk_size=16, batch_size=8, engine="simd",
            sampler="array")
        assert one == two == simd
    finally:
        unregister_engine("jit-pure")


def test_fingerprint_carries_summary_path():
    auto = FIFOValidationCampaignTask(**COMMON)
    delta = FIFOValidationCampaignTask(summary_path="delta", **COMMON)
    assert "summary_path='auto'" in auto.fingerprint()
    assert "summary_path='delta'" in delta.fingerprint()
    assert auto.fingerprint() != delta.fingerprint()


def _strip_field(fingerprint: str, field: str) -> str:
    """A pre-PR8 fingerprint: the same dataclass repr without one
    field (checkpoints written before the field existed look exactly
    like this)."""
    needle = f", {field}="
    start = fingerprint.index(needle)
    depth = 0
    end = start + len(needle)
    while end < len(fingerprint):
        ch = fingerprint[end]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            if depth == 0:
                break
            depth -= 1
        elif ch == "," and depth == 0:
            break
        end += 1
    return fingerprint[:start] + fingerprint[end:]


def test_stale_checkpoint_names_the_new_field():
    """A checkpoint predating the summary_path field is refused with a
    message naming exactly that field (not just 'task')."""
    task = FIFOValidationCampaignTask(**COMMON)
    new = task.fingerprint()
    old = _strip_field(new, "summary_path")
    assert "summary_path" not in old
    with pytest.raises(ValueError) as excinfo:
        CheckpointStore.validate({"task": old, "format": 1},
                                 {"task": new, "format": 1})
    message = str(excinfo.value)
    assert "summary_path" in message
    assert "predates" in message
    assert "delete the file" in message


def test_changed_field_values_are_spelled_out():
    old = FIFOValidationCampaignTask(**COMMON).fingerprint()
    new = FIFOValidationCampaignTask(summary_path="delta",
                                     **COMMON).fingerprint()
    with pytest.raises(ValueError,
                       match=r"summary_path: 'auto' -> 'delta'"):
        CheckpointStore.validate({"task": old}, {"task": new})


def test_unparseable_fingerprint_falls_back_to_generic_message():
    with pytest.raises(ValueError, match="stale fields: task"):
        CheckpointStore.validate({"task": "opaque-hash-1234"},
                                 {"task": "opaque-hash-5678"})


def test_resume_with_stale_checkpoint_end_to_end(tmp_path):
    """Through the runner: a checkpoint written by a pre-PR8 campaign
    (task fingerprint without summary_path) aborts the resume with the
    field named in the error."""
    path = str(tmp_path / "campaign.json")
    task = FIFOValidationCampaignTask(**COMMON)
    ShardedCampaignRunner(task, 32, seed=9, chunk_size=16,
                          checkpoint_path=path).run()
    payload = json.loads((tmp_path / "campaign.json").read_text())
    payload["task"] = _strip_field(payload["task"], "summary_path")
    (tmp_path / "campaign.json").write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="summary_path"):
        ShardedCampaignRunner(task, 64, seed=9, chunk_size=16,
                              checkpoint_path=path).run()
