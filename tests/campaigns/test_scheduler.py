"""Scheduler layer: fair-share interleaving, result cache, determinism."""

import pytest

from repro.campaigns.runner import CampaignProgress, ShardedCampaignRunner
from repro.campaigns.scheduler import CampaignScheduler
from repro.campaigns.tasks import FIFOValidationCampaignTask
from tests.campaigns.test_executors import TrialTask


def _counting(calls):
    original = TrialTask.run_chunk

    def counting(self, seed, count):
        calls.append(seed)
        return original(self, seed, count)

    return counting, original


class TestFairShare:
    def test_two_jobs_interleave_on_a_shared_executor(self):
        scheduler = CampaignScheduler(executor="serial")
        events = []
        a = scheduler.submit(TrialTask(scale=3), 40, seed=1, chunk_size=10,
                             progress_callback=lambda e: events.append("a"))
        b = scheduler.submit(TrialTask(scale=5), 40, seed=2, chunk_size=10,
                             progress_callback=lambda e: events.append("b"))
        scheduler.run()
        # Round-robin dispatch: one chunk from each job per round, so
        # completions strictly alternate on the serial executor.
        assert events == ["a", "b", "a", "b", "a", "b", "a", "b"]
        assert a.done and b.done
        assert a.result.sequences == b.result.sequences == 40

    def test_small_job_not_starved_by_huge_job(self):
        scheduler = CampaignScheduler(executor="serial")
        events = []
        scheduler.submit(TrialTask(scale=3), 120, seed=1, chunk_size=10,
                         progress_callback=lambda e: events.append("big"))
        small = scheduler.submit(
            TrialTask(scale=5), 20, seed=2, chunk_size=10,
            progress_callback=lambda e: events.append("small"))
        scheduler.run()
        # The 2-chunk job finishes within the first two rounds of the
        # 12-chunk job, not after it.
        assert events.index("small") == 1
        assert [e for e in events[:4]] == ["big", "small", "big", "small"]
        assert small.result.sequences == 20

    def test_jobs_report_progress_with_rates(self):
        scheduler = CampaignScheduler(executor="serial")
        events = []
        scheduler.submit(TrialTask(), 30, seed=3, chunk_size=10,
                         progress_callback=events.append)
        scheduler.run()
        assert [e.sequences_completed for e in events] == [10, 20, 30]
        assert all(isinstance(e, CampaignProgress) for e in events)
        assert events[-1].fraction == 1.0
        assert events[-1].sequences_per_second > 0
        assert events[0].eta_seconds is None or events[0].eta_seconds >= 0


class TestResultCache:
    def test_identical_resubmission_runs_no_chunks(self):
        scheduler = CampaignScheduler(executor="serial")
        first = scheduler.submit(TrialTask(), 60, seed=9, chunk_size=10)
        scheduler.run()
        calls = []
        counting, original = _counting(calls)
        TrialTask.run_chunk = counting
        try:
            again = scheduler.submit(TrialTask(), 60, seed=9,
                                     chunk_size=10)
            results = scheduler.run()
        finally:
            TrialTask.run_chunk = original
        assert calls == []
        assert again.from_cache and again.done
        assert again.result == first.result
        assert results == [first.result, again.result]

    def test_cache_returns_a_private_copy(self):
        scheduler = CampaignScheduler(executor="serial")
        first = scheduler.submit(TrialTask(), 30, seed=9, chunk_size=10)
        scheduler.run()
        hit = scheduler.submit(TrialTask(), 30, seed=9, chunk_size=10)
        assert hit.result is not first.result
        hit.result.sequences = -1
        fresh = scheduler.submit(TrialTask(), 30, seed=9, chunk_size=10)
        assert fresh.result.sequences == 30

    def test_different_campaigns_do_not_collide(self):
        scheduler = CampaignScheduler(executor="serial")
        scheduler.submit(TrialTask(), 30, seed=9, chunk_size=10)
        scheduler.run()
        for kwargs in (dict(seed=10, chunk_size=10),
                       dict(seed=9, chunk_size=15)):
            job = scheduler.submit(TrialTask(), 30, **kwargs)
            assert not job.from_cache
        other_task = scheduler.submit(TrialTask(scale=4), 30, seed=9,
                                      chunk_size=10)
        assert not other_task.from_cache
        random_root = scheduler.submit(TrialTask(), 30, seed=None,
                                       chunk_size=10)
        assert not random_root.from_cache

    def test_cached_job_exposes_plan_identity(self):
        scheduler = CampaignScheduler(executor="serial")
        job = scheduler.submit(TrialTask(), 30, seed=9, chunk_size=10)
        assert job.root_seed == 9
        assert job.plan.identity == (9, 30, 10)


class TestSchedulerDeterminism:
    def test_matches_individual_runners(self):
        tasks = [(TrialTask(scale=3), 70, 1), (TrialTask(scale=5), 50, 2)]
        expected = [ShardedCampaignRunner(task, total, seed=seed,
                                          chunk_size=10).run()
                    for task, total, seed in tasks]
        for spec, workers in (("serial", 1), ("thread", 3),
                              ("process", 2)):
            scheduler = CampaignScheduler(executor=spec,
                                          num_workers=workers)
            jobs = [scheduler.submit(task, total, seed=seed, chunk_size=10)
                    for task, total, seed in tasks]
            scheduler.run()
            assert [job.result for job in jobs] == expected, (spec, workers)

    def test_fifo_jobs_share_a_process_pool(self):
        task = FIFOValidationCampaignTask(
            width=4, depth=4, num_chains=4, engine="packed",
            words_per_sequence=2)
        expected = ShardedCampaignRunner(task, 12, seed=20100308,
                                         chunk_size=4).run()
        expected_two = ShardedCampaignRunner(task, 12, seed=77,
                                             chunk_size=4).run()
        scheduler = CampaignScheduler(executor="process", num_workers=2)
        one = scheduler.submit(task, 12, seed=20100308, chunk_size=4)
        two = scheduler.submit(task, 12, seed=77, chunk_size=4)
        scheduler.run()
        assert one.result == expected
        assert two.result == expected_two
        assert two.result.stats.num_sequences == 12


class TestSchedulerCheckpoints:
    def test_job_resumes_from_checkpoint(self, tmp_path):
        path = str(tmp_path / "job.json")
        reference = ShardedCampaignRunner(TrialTask(), 60, seed=4,
                                          chunk_size=10).run()
        # Seed the checkpoint with a partial run.
        partial = ShardedCampaignRunner(TrialTask(), 60, seed=4,
                                        chunk_size=10,
                                        checkpoint_path=path)
        partial.run()
        import json
        payload = json.loads((tmp_path / "job.json").read_text())
        for lost in ("3", "4", "5"):
            del payload["completed"][lost]
        (tmp_path / "job.json").write_text(json.dumps(payload))

        scheduler = CampaignScheduler(executor="serial")
        events = []
        job = scheduler.submit(TrialTask(), 60, seed=4, chunk_size=10,
                               checkpoint_path=path, save_interval=2,
                               progress_callback=events.append)
        scheduler.run()
        assert job.result == reference
        assert events[0].from_checkpoint
        assert events[0].sequences_completed == 30
        # Restored sequences are excluded from the throughput estimate.
        assert all(e.sequences_restored == 30 for e in events)

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "job.json")
        ShardedCampaignRunner(TrialTask(), 60, seed=4, chunk_size=10,
                              checkpoint_path=path).run()
        scheduler = CampaignScheduler(executor="serial")
        scheduler.submit(TrialTask(), 60, seed=5, chunk_size=10,
                         checkpoint_path=path)
        with pytest.raises(ValueError, match="checkpoint"):
            scheduler.run()
