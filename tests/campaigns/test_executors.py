"""Executor layer: equivalence across executors, error wrapping,
once-per-worker task shipping."""

import multiprocessing
import pickle
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correction_capability import CorrectionCounters
from repro.campaigns.executors import (
    ChunkExecutionError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    _slot_jobs,
    resolve_executor,
)
from repro.campaigns.plan import ChunkPlan
from repro.campaigns.runner import CampaignTask, ShardedCampaignRunner
from repro.campaigns.tasks import FIFOValidationCampaignTask

EXECUTORS = ("serial", "thread", "process")
WORKER_COUNTS = (1, 2, 4)


@dataclass
class TrialTask(CampaignTask):
    """Cheap deterministic task for exercising executor mechanics."""

    scale: int = 3

    def empty_result(self):
        return CorrectionCounters()

    def run_chunk(self, chunk_seed, num_sequences):
        import random
        rng = random.Random(chunk_seed)
        value = sum(rng.randrange(self.scale * 1000)
                    for _ in range(num_sequences))
        return CorrectionCounters(sequences=num_sequences,
                                  corrected_bits=value)


@dataclass
class FailingTask(TrialTask):
    """Fails on the chunk whose seed hits ``poison_seed``."""

    poison_seed: int = -1

    def run_chunk(self, chunk_seed, num_sequences):
        if chunk_seed == self.poison_seed:
            raise RuntimeError("poisoned chunk")
        return super().run_chunk(chunk_seed, num_sequences)


def _sampler_task(mode: str) -> FIFOValidationCampaignTask:
    """A tiny Fig. 8 task in one of the three sampler modes."""
    common = dict(width=4, depth=4, codes=("hamming(7,4)", "crc16"),
                  num_chains=4, pattern="burst", burst_size=2,
                  words_per_sequence=2)
    if mode == "scalar":
        return FIFOValidationCampaignTask(engine="packed", **common)
    if mode == "batched":
        return FIFOValidationCampaignTask(engine="batched", batch_size=4,
                                          **common)
    return FIFOValidationCampaignTask(engine="simd", batch_size=4,
                                      sampler="array", **common)


class TestExecutorEquivalence:
    """The PR's acceptance invariant: same plan => same merged stats,
    for every executor kind and worker count."""

    def test_trial_task_identical_everywhere(self):
        reference = ShardedCampaignRunner(
            TrialTask(), 200, seed=99, chunk_size=13).run()
        for spec in EXECUTORS:
            for workers in WORKER_COUNTS:
                result = ShardedCampaignRunner(
                    TrialTask(), 200, seed=99, chunk_size=13,
                    num_workers=workers, executor=spec).run()
                assert result == reference, (spec, workers)

    @pytest.mark.parametrize("mode", ("scalar", "batched", "array"))
    def test_sampler_modes_identical_across_executors(self, mode):
        if mode == "array":
            pytest.importorskip("numpy")
        task = _sampler_task(mode)
        reference = ShardedCampaignRunner(
            task, 12, seed=20100308, chunk_size=4,
            executor="serial").run()
        assert reference.stats.num_sequences == 12
        for spec, workers in (("thread", 2), ("thread", 4),
                              ("process", 2), ("process", 4)):
            result = ShardedCampaignRunner(
                task, 12, seed=20100308, chunk_size=4,
                num_workers=workers, executor=spec).run()
            assert result == reference, (mode, spec, workers)

    @given(seed=st.integers(0, 2**32), chunk=st.integers(1, 9))
    @settings(max_examples=20, deadline=None)
    def test_thread_executor_matches_serial_property(self, seed, chunk):
        serial = ShardedCampaignRunner(TrialTask(), 30, seed=seed,
                                       chunk_size=chunk,
                                       executor="serial").run()
        threaded = ShardedCampaignRunner(TrialTask(), 30, seed=seed,
                                         chunk_size=chunk, num_workers=3,
                                         executor="thread").run()
        assert serial == threaded


class TestChunkExecutionError:
    def _poisoned(self, executor, workers=2):
        plan = ChunkPlan.build(7, 40, 10)
        poison = plan.entries[2].chunk_seed
        return ShardedCampaignRunner(
            FailingTask(poison_seed=poison), 40, seed=7, chunk_size=10,
            num_workers=workers, executor=executor), plan.entries[2]

    @pytest.mark.parametrize("spec", EXECUTORS)
    def test_failure_names_the_chunk(self, spec):
        runner, entry = self._poisoned(spec)
        with pytest.raises(ChunkExecutionError) as excinfo:
            runner.run()
        error = excinfo.value
        assert error.chunk_index == entry.index
        assert error.chunk_seed == entry.chunk_seed
        assert error.count == entry.count
        assert str(entry.index) in str(error)

    def test_serial_failure_chains_original_exception(self):
        runner, _ = self._poisoned("serial", workers=1)
        with pytest.raises(ChunkExecutionError) as excinfo:
            runner.run()
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_process_failure_carries_worker_traceback(self):
        runner, _ = self._poisoned("process")
        with pytest.raises(ChunkExecutionError) as excinfo:
            runner.run()
        assert "poisoned chunk" in (excinfo.value.worker_traceback or "")

    def test_checkpoint_survives_failure_and_resumes(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        reference = ShardedCampaignRunner(TrialTask(), 40, seed=7,
                                          chunk_size=10).run()
        plan = ChunkPlan.build(7, 40, 10)
        poison = plan.entries[2].chunk_seed
        failing = ShardedCampaignRunner(
            FailingTask(poison_seed=poison), 40, seed=7, chunk_size=10,
            checkpoint_path=path, save_interval=4, executor="serial")
        # FailingTask and TrialTask share repr-based fingerprints only
        # if the fields match; pin the fingerprint so the resumed
        # (fixed) task accepts the failed run's checkpoint.
        failing.task.fingerprint = TrialTask().fingerprint
        with pytest.raises(ChunkExecutionError):
            failing.run()
        # The final flush on the way out persisted the partial
        # interval: both chunks that completed before the poison.
        resumed_calls = []
        fixed_task = TrialTask()
        original = TrialTask.run_chunk

        def counting(self, seed, count):
            resumed_calls.append(seed)
            return original(self, seed, count)

        TrialTask.run_chunk = counting
        try:
            resumed = ShardedCampaignRunner(
                fixed_task, 40, seed=7, chunk_size=10,
                checkpoint_path=path).run()
        finally:
            TrialTask.run_chunk = original
        assert resumed == reference
        assert len(resumed_calls) == 2  # only the poisoned chunk + tail


class TestProcessExecutorShipping:
    def test_task_not_pickled_per_job_under_fork(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")

        class CountingTask(TrialTask):
            pickles = 0

            def __reduce__(self):
                CountingTask.pickles += 1
                return (TrialTask, (self.scale,))

        CountingTask.pickles = 0
        result = ShardedCampaignRunner(
            CountingTask(), 120, seed=3, chunk_size=10, num_workers=2,
            executor=ProcessExecutor(2, start_method="fork")).run()
        assert result.sequences == 120
        # 12 chunks historically meant 12 task pickles through the job
        # queue; the initializer table under fork means zero.
        assert CountingTask.pickles == 0

    def test_task_pickled_once_per_worker_under_spawn(self):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        task = TrialTask()
        payload = pickle.dumps(task)
        # The job tuples the pool ships are plan coordinates only.
        entries = ChunkPlan.build(3, 40, 10).entries
        tuples = [(pos, 0, e.index, e.chunk_seed, e.count)
                  for pos, e in enumerate(entries)]
        assert all(isinstance(v, int) for job in tuples for v in job)
        assert len(pickle.dumps(tuples)) < len(payload) * len(entries)


class TestSlotJobs:
    """Task-table slots key on ``fingerprint()``, never ``id()``."""

    def _jobs(self, *tasks):
        entries = ChunkPlan.build(1, 10 * len(tasks), 10).entries
        return [(None, entry, task)
                for entry, task in zip(entries, tasks)]

    def test_equal_fingerprint_tasks_share_one_slot(self):
        # Two distinct objects describing the same work: one table
        # entry, one per-worker pickle.
        a, b = TrialTask(scale=5), TrialTask(scale=5)
        assert a is not b
        tuples, tasks = _slot_jobs(self._jobs(a, b))
        assert len(tasks) == 1
        assert [slot for _pos, slot, *_ in tuples] == [0, 0]

    def test_distinct_fingerprints_get_distinct_slots(self):
        tuples, tasks = _slot_jobs(
            self._jobs(TrialTask(scale=1), TrialTask(scale=2)))
        assert len(tasks) == 2
        assert [slot for _pos, slot, *_ in tuples] == [0, 1]

    def test_id_reuse_cannot_alias_slots(self):
        # The historical id(task)-keyed table could alias two
        # *different* tasks if CPython reused a freed id mid-run.
        # Fingerprint keys are value-based, so even tasks constructed
        # at the same recycled address slot separately.
        jobs = []
        entries = ChunkPlan.build(1, 20, 10).entries
        for entry, scale in zip(entries, (1, 2)):
            task = TrialTask(scale=scale)
            jobs.append((None, entry, task))
            del task  # eligible for id reuse before slotting runs
        tuples, tasks = _slot_jobs(jobs)
        assert len(tasks) == 2
        assert sorted(t.scale for t in tasks.values()) == [1, 2]


class TestResolveExecutor:
    def test_none_keeps_historical_behaviour(self):
        assert isinstance(resolve_executor(None, 1), SerialExecutor)
        assert isinstance(resolve_executor(None, 4), ProcessExecutor)

    def test_strings_and_instances(self):
        assert isinstance(resolve_executor("serial", 4), SerialExecutor)
        assert isinstance(resolve_executor("thread", 4), ThreadExecutor)
        assert isinstance(resolve_executor("process", 4), ProcessExecutor)
        instance = ThreadExecutor(2)
        assert resolve_executor(instance) is instance

    def test_rejects_unknown_specs(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu", 2)
        with pytest.raises(TypeError):
            resolve_executor(42, 2)
        with pytest.raises(ValueError):
            ThreadExecutor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(0)
