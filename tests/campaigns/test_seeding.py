"""Seed-splitting: determinism, independence, no ``seed + offset`` aliasing."""

import itertools

import pytest

from repro.campaigns.seeding import SEED_BITS, child_seed, spawn_seeds


class TestChildSeed:
    def test_deterministic(self):
        assert child_seed(1234, "fig10", 7, 4) == child_seed(1234, "fig10",
                                                             7, 4)

    def test_in_64_bit_range(self):
        for seed in (0, 1, -5, 2**80, "campaign"):
            value = child_seed(seed, "x")
            assert 0 <= value < 2**SEED_BITS

    def test_distinct_across_paths(self):
        seeds = {child_seed(99, *path)
                 for path in [("a",), ("b",), ("a", "b"), ("a", 0),
                              ("a", 1), (0, "a"), (1,), ("1",)]}
        assert len(seeds) == 8

    def test_concatenation_is_unambiguous(self):
        # Length-prefixed encoding: ("ab", "c") must differ from
        # ("a", "bc") even though the concatenated text is equal.
        assert child_seed(0, "ab", "c") != child_seed(0, "a", "bc")
        # ...and int 12 must differ from str "12".
        assert child_seed(0, 12) != child_seed(0, "12")

    def test_no_offset_aliasing(self):
        """The bug class this replaces: with ``seed + offset``, curve
        ``i`` at user seed ``s`` collides with curve ``i - d`` at user
        seed ``s + d``.  Hash-split children never alias that way."""
        user_seeds = range(1000, 1010)
        offsets = range(10)
        derived = [child_seed(seed, "curve", offset)
                   for seed, offset in itertools.product(user_seeds, offsets)]
        assert len(set(derived)) == len(derived)

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            child_seed(0, 1.5)
        with pytest.raises(TypeError):
            child_seed(0, True)


class TestSpawnSeeds:
    def test_matches_indexed_children(self):
        assert spawn_seeds(7, 4, "chunk") == [
            child_seed(7, "chunk", index) for index in range(4)]

    def test_all_distinct(self):
        seeds = spawn_seeds(20100308, 512, "chunk")
        assert len(set(seeds)) == 512

    def test_prefix_stability(self):
        """Growing a campaign keeps the existing chunk seeds, so a
        checkpoint of the first N chunks stays valid."""
        assert spawn_seeds(3, 8, "chunk")[:5] == spawn_seeds(3, 5, "chunk")

    def test_count_validation(self):
        assert spawn_seeds(0, 0) == []
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
