"""Regression tests for campaign-result bookkeeping (corrected counts)."""

from repro.core.controller import ErrorCode
from repro.core.protected import CycleOutcome
from repro.validation.campaign import CampaignResult
from repro.validation.comparator import ComparisonResult
from repro.validation.testbench import TestSequenceResult as SequenceResult


def make_sequence(injected, detected, state_intact, residual=None,
                  error_code=ErrorCode.NONE, mismatched_words=()):
    cycle = CycleOutcome(
        injected_errors=injected,
        detected=detected,
        corrected_claim=detected and state_intact,
        state_intact=state_intact,
        residual_errors=(residual if residual is not None
                         else (0 if state_intact else injected)),
        error_code=error_code,
        corrections_applied=injected if detected and state_intact else 0,
        wake_event=None)
    comparison = ComparisonResult(words_compared=4,
                                  mismatched_words=tuple(mismatched_words))
    return SequenceResult(cycle=cycle, comparison=comparison,
                          words_written=4)


class TestCorrectedCounting:
    def test_detected_and_repaired_sequence_counts_as_corrected(self):
        result = CampaignResult()
        result.add(make_sequence(injected=1, detected=True, state_intact=True,
                                 error_code=ErrorCode.CORRECTED))
        assert result.stats.corrected_sequences == 1
        assert result.stats.correction_rate() == 1.0

    def test_undetected_error_with_intact_state_is_not_corrected(self):
        """Regression for the miscount fixed in this PR: a sequence with
        injected errors that the monitor never detected must not be
        counted as corrected, even when the final state happens to be
        intact (e.g. an upset in a cell the decode pass masks).  The
        old bookkeeping used ``injected > 0 and state_intact`` and
        reported a 100 % correction rate for a campaign the monitor
        slept through."""
        result = CampaignResult()
        result.add(make_sequence(injected=1, detected=False,
                                 state_intact=True))
        assert result.stats.corrected_sequences == 0
        assert result.stats.correction_rate() == 0.0
        # It is still an error-carrying, undetected sequence.
        assert result.stats.sequences_with_errors == 1
        assert result.stats.detection_rate() == 0.0

    def test_detected_but_unrepaired_sequence_is_not_corrected(self):
        result = CampaignResult()
        result.add(make_sequence(injected=4, detected=True,
                                 state_intact=False,
                                 error_code=ErrorCode.UNCORRECTABLE,
                                 mismatched_words=(1,)))
        assert result.stats.corrected_sequences == 0
        assert result.stats.detection_rate() == 1.0

    def test_clean_sequence_is_neither_corrected_nor_with_errors(self):
        result = CampaignResult()
        result.add(make_sequence(injected=0, detected=False,
                                 state_intact=True))
        assert result.stats.corrected_sequences == 0
        assert result.stats.sequences_with_errors == 0


class TestFig8CountersStayConsistentWithLog:
    def test_counters_match_the_sequence_log(self):
        result = CampaignResult()
        sequences = [
            make_sequence(1, True, True, error_code=ErrorCode.CORRECTED),
            make_sequence(3, True, False,
                          error_code=ErrorCode.UNCORRECTABLE,
                          mismatched_words=(0, 2)),
            make_sequence(0, False, True),
        ]
        for sequence in sequences:
            result.add(sequence)
        # The streaming counters agree with recounting the retained log.
        assert len(result.sequences) == 3
        assert result.errors_reported_by_dut == sum(
            1 for s in result.sequences if s.error_reported)
        assert result.mismatches_reported_by_comparator == sum(
            1 for s in result.sequences if s.mismatch_reported)
        assert result.inconsistent_sequences == sum(
            1 for s in result.sequences if not s.outcome_consistent)
