"""Tests for the FPGA-style validation test bench and campaigns."""

import pytest

from repro.circuit.fifo import SyncFIFO
from repro.circuit.generators import make_counter
from repro.core.protected import ProtectedDesign
from repro.faults.patterns import ErrorPattern
from repro.validation.campaign import (
    run_multiple_error_campaign,
    run_single_error_campaign,
)
from repro.validation.comparator import Comparator
from repro.validation.stimulus import StimulusGenerator
from repro.validation.testbench import FIFOTestbench


def _make_testbench(width=8, depth=8, codes=("hamming(7,4)", "crc16"),
                    num_chains=10, seed=2010):
    fifo = SyncFIFO(width, depth, name="dut_fifo")
    design = ProtectedDesign(fifo, codes=list(codes), num_chains=num_chains)
    return FIFOTestbench(design, seed=seed)


class TestStimulusGenerator:
    def test_reproducible_streams(self):
        a = StimulusGenerator(16, seed=1)
        b = StimulusGenerator(16, seed=1)
        assert a.burst(10) == b.burst(10)

    def test_word_width(self):
        generator = StimulusGenerator(32, seed=2)
        assert len(generator.next_word()) == 32
        assert 0 <= generator.next_int() < 2 ** 32

    def test_reset_restarts_stream(self):
        generator = StimulusGenerator(8, seed=3)
        first = generator.burst(5)
        generator.reset()
        assert generator.burst(5) == first

    def test_validation(self):
        with pytest.raises(ValueError):
            StimulusGenerator(0)
        with pytest.raises(ValueError):
            list(StimulusGenerator(8).words(-1))


class TestComparator:
    def test_identical_fifos_match(self):
        a, b = SyncFIFO(8, 4), SyncFIFO(8, 4)
        for value in (1, 2, 3):
            a.push_int(value)
            b.push_int(value)
        result = Comparator().compare(a, b)
        assert result.match
        assert result.words_compared == 3

    def test_word_mismatch_detected(self):
        a, b = SyncFIFO(8, 4), SyncFIFO(8, 4)
        a.push_int(0x0F)
        b.push_int(0x0E)
        result = Comparator().compare(a, b)
        assert not result.match
        assert result.mismatched_words == (0,)
        assert result.bit_mismatches == 1

    def test_occupancy_mismatch_is_structural(self):
        a, b = SyncFIFO(8, 4), SyncFIFO(8, 4)
        a.push_int(1)
        result = Comparator().compare(a, b)
        assert result.structural_mismatch
        assert not result.match

    def test_history_recorded(self):
        comparator = Comparator()
        comparator.compare(SyncFIFO(8, 2), SyncFIFO(8, 2))
        assert len(comparator.history) == 1


class TestFIFOTestbench:
    def test_requires_fifo_circuit(self):
        counter_design = ProtectedDesign(make_counter(16), codes="crc16",
                                         num_chains=4)
        with pytest.raises(TypeError):
            FIFOTestbench(counter_design)

    def test_reference_geometry_must_match(self):
        testbench_design = ProtectedDesign(SyncFIFO(8, 8), codes="crc16",
                                           num_chains=8)
        with pytest.raises(ValueError):
            FIFOTestbench(testbench_design, reference_fifo=SyncFIFO(8, 4))

    def test_clean_sequence_matches_reference(self):
        testbench = _make_testbench()
        result = testbench.run_sequence()
        assert not result.error_reported
        assert not result.mismatch_reported
        assert result.outcome_consistent
        assert result.words_written == 4

    def test_single_error_sequence_corrected_and_consistent(self):
        testbench = _make_testbench()
        pattern = ErrorPattern(locations=frozenset({(3, 2)}), kind="single")
        result = testbench.run_sequence(pattern)
        assert result.error_reported
        assert not result.mismatch_reported
        assert result.outcome_consistent

    def test_sequences_are_independent(self):
        testbench = _make_testbench()
        corrupted = testbench.run_sequence(
            ErrorPattern(locations=frozenset({(0, 0), (1, 0)})))
        clean = testbench.run_sequence()
        assert not clean.error_reported
        assert not clean.mismatch_reported


class TestCampaigns:
    def test_single_error_campaign_matches_paper_claims(self):
        # Paper Section IV, first experiment: every single error is
        # detected and corrected; FIFO_A and FIFO_B never mismatch.
        testbench = _make_testbench()
        result = run_single_error_campaign(testbench, num_sequences=30)
        assert result.stats.num_sequences == 30
        assert result.stats.detection_rate() == 1.0
        assert result.stats.correction_rate() == 1.0
        assert result.mismatches_reported_by_comparator == 0
        assert result.stats.silent_corruptions == 0

    def test_multiple_error_campaign_detects_everything(self):
        # Paper Section IV, second experiment: clustered bursts are not
        # corrected but always detected.
        testbench = _make_testbench()
        result = run_multiple_error_campaign(testbench, num_sequences=30,
                                             burst_size=4)
        assert result.stats.detection_rate() == 1.0
        assert result.stats.correction_rate() < 1.0
        assert result.stats.silent_corruptions == 0
        assert result.inconsistent_sequences == 0

    def test_campaign_summary_text(self):
        testbench = _make_testbench()
        result = run_single_error_campaign(testbench, num_sequences=5)
        summary = result.summary()
        assert "detection rate" in summary
        assert "comparator mismatches" in summary

    def test_campaign_requires_positive_sequences(self):
        testbench = _make_testbench()
        with pytest.raises(ValueError):
            run_single_error_campaign(testbench, num_sequences=0)

    def test_spread_multi_errors_often_corrected(self):
        # With clustered=False the errors are spread uniformly and a
        # Hamming(7,4) monitor corrects most of them (cf. Fig. 10).
        testbench = _make_testbench(width=16, depth=16, num_chains=16)
        result = run_multiple_error_campaign(testbench, num_sequences=20,
                                             burst_size=2, clustered=False)
        assert result.stats.detection_rate() == 1.0
        assert result.stats.correction_rate() > 0.5
