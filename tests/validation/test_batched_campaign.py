"""Batched validation campaigns: engine-independence and determinism."""

import pytest

from repro.campaigns.tasks import FIFOValidationCampaignTask
from repro.circuit.fifo import SyncFIFO
from repro.core.protected import ProtectedDesign
from repro.validation.campaign import (
    run_sharded_multiple_error_campaign,
    run_sharded_single_error_campaign,
)
from repro.validation.testbench import BatchSequenceResult, FIFOTestbench

KWARGS = dict(width=8, depth=8, num_chains=8, seed=20100308, chunk_size=16,
              batch_size=8)


class TestBatchedCampaignEquivalence:
    def test_single_error_campaign_engine_independent(self):
        """A batched campaign is bit-identical across engines: the
        bit-plane fast path and the per-sequence fallback describe the
        same experiment."""
        reference = run_sharded_single_error_campaign(
            64, engine="reference", **KWARGS)
        batched = run_sharded_single_error_campaign(
            64, engine="batched", **KWARGS)
        packed = run_sharded_single_error_campaign(
            64, engine="packed", **KWARGS)
        assert batched == reference
        assert packed == reference
        # The paper's single-error headline: everything detected and
        # corrected, nothing silent.
        assert batched.stats.detection_rate() == 1.0
        assert batched.stats.correction_rate() == 1.0
        assert batched.stats.silent_corruptions == 0
        assert batched.mismatches_reported_by_comparator == 0

    def test_multiple_error_campaign_engine_independent(self):
        reference = run_sharded_multiple_error_campaign(
            48, engine="reference", **KWARGS)
        batched = run_sharded_multiple_error_campaign(
            48, engine="batched", **KWARGS)
        assert batched == reference
        # Clustered bursts defeat Hamming but never escape detection.
        assert batched.stats.detection_rate() == 1.0
        assert batched.stats.silent_corruptions == 0

    def test_worker_count_determinism(self):
        one = run_sharded_single_error_campaign(
            64, engine="batched", num_workers=1, **KWARGS)
        two = run_sharded_single_error_campaign(
            64, engine="batched", num_workers=2, **KWARGS)
        assert one == two

    def test_repeatability(self):
        first = run_sharded_single_error_campaign(
            32, engine="batched", **KWARGS)
        second = run_sharded_single_error_campaign(
            32, engine="batched", **KWARGS)
        assert first == second

    def test_short_final_group(self):
        """Sequence counts that do not divide the batch size run a
        short final group, covering every sequence exactly once."""
        result = run_sharded_single_error_campaign(
            21, engine="batched", width=8, depth=8, num_chains=8,
            seed=1, chunk_size=21, batch_size=8)
        assert result.stats.num_sequences == 21
        assert result.stats.sequences_with_errors == 21


class TestBatchedTestbench:
    def _bench(self, engine="batched"):
        fifo = SyncFIFO(4, 4, name="fifo4x4")
        design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                                 num_chains=4, engine=engine)
        return FIFOTestbench(design, words_per_sequence=2, seed=77)

    def test_run_sequence_batch_shapes(self):
        bench = self._bench()
        results = bench.run_sequence_batch([None, None, None])
        assert len(results) == 3
        assert all(isinstance(r, BatchSequenceResult) for r in results)
        assert all(r.words_written == 2 for r in results)
        assert all(not r.error_reported for r in results)
        assert all(not r.mismatch_reported for r in results)
        assert all(r.outcome_consistent for r in results)

    def test_state_comparator_flags_residual_corruption(self):
        from repro.faults.patterns import burst_error_pattern
        import random

        bench = self._bench()
        design = bench.dut_design
        rng = random.Random(5)
        patterns = [burst_error_pattern(design.num_chains,
                                        design.chain_length, 4, rng)
                    for _ in range(6)]
        results = bench.run_sequence_batch(patterns)
        # Bursts defeat Hamming(7,4): some sequence keeps residual
        # errors, and the state comparator must report the mismatch.
        assert any(r.mismatch_reported for r in results)
        assert all(r.outcome_consistent for r in results)


class TestChunkGranularity:
    def test_default_chunk_size_aligns_to_batches(self):
        """The runner's default chunk size rounds up to a whole number
        of batches, so small campaigns keep full-size bit-plane passes
        instead of silently truncating every batch to the chunk."""
        from repro.campaigns.runner import ShardedCampaignRunner

        task = FIFOValidationCampaignTask(width=8, depth=8, num_chains=8,
                                          engine="batched", batch_size=256)
        runner = ShardedCampaignRunner(task, 1000, seed=1)
        assert runner.chunk_size == 256
        unbatched = FIFOValidationCampaignTask(width=8, depth=8,
                                               num_chains=8)
        assert ShardedCampaignRunner(unbatched, 1000, seed=1).chunk_size \
            == 16

    def test_explicit_chunk_size_is_respected(self):
        from repro.campaigns.runner import ShardedCampaignRunner

        task = FIFOValidationCampaignTask(width=8, depth=8, num_chains=8,
                                          engine="batched", batch_size=256)
        runner = ShardedCampaignRunner(task, 1000, seed=1, chunk_size=10)
        assert runner.chunk_size == 10


class TestTaskValidation:
    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            FIFOValidationCampaignTask(batch_size=0)

    def test_engine_validated_against_registry(self):
        with pytest.raises(ValueError):
            FIFOValidationCampaignTask(engine="fpga")
        task = FIFOValidationCampaignTask(engine="batched", batch_size=4)
        assert task.engine == "batched"
        assert task.batch_size == 4

    def test_fingerprint_includes_batch_size(self):
        a = FIFOValidationCampaignTask(batch_size=4)
        b = FIFOValidationCampaignTask(batch_size=8)
        assert a.fingerprint() != b.fingerprint()
