"""Engine selection on the campaign drivers (packed vs reference)."""

from repro.analysis.correction_capability import correction_capability_curve
from repro.circuit.fifo import SyncFIFO
from repro.codes.hamming import HammingCode
from repro.core.protected import ProtectedDesign
from repro.validation.campaign import (
    run_multiple_error_campaign,
    run_single_error_campaign,
)
from repro.validation.testbench import FIFOTestbench


def _testbench(engine="reference"):
    fifo = SyncFIFO(4, 4, name="fifo4x4")
    design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                             num_chains=4, engine=engine)
    return FIFOTestbench(design, words_per_sequence=2, seed=77)


class TestValidationCampaignEngine:
    def test_engine_override_is_scoped_to_the_run(self):
        testbench = _testbench("reference")
        run_single_error_campaign(testbench, num_sequences=2, engine="packed")
        # The override applies while the campaign runs, then the
        # design's own engine setting is restored.
        assert testbench.dut_design.engine == "reference"

    def test_engine_override_validated_eagerly(self):
        from repro.validation.campaign import ValidationCampaign
        testbench = _testbench("reference")
        try:
            ValidationCampaign(testbench, lambda rng: None, engine="fpga")
        except ValueError as err:
            assert "fpga" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_campaign_statistics_match_across_engines(self):
        results = {}
        for engine in ("reference", "packed"):
            testbench = _testbench()
            single = run_single_error_campaign(
                testbench, num_sequences=6, seed=123, engine=engine)
            multi = run_multiple_error_campaign(
                testbench, num_sequences=6, burst_size=3, seed=321,
                engine=engine)
            results[engine] = (
                single.stats.num_sequences, single.stats.detected_sequences,
                single.stats.corrected_sequences,
                single.errors_reported_by_dut,
                single.mismatches_reported_by_comparator,
                multi.stats.detected_sequences,
                multi.stats.corrected_sequences,
                multi.stats.silent_corruptions,
                multi.mismatches_reported_by_comparator)
        assert results["packed"] == results["reference"]


class TestAnalysisCampaignEngine:
    def test_fig10_trials_identical_across_engines(self):
        code = HammingCode(7, 4)
        reference = correction_capability_curve(
            code, error_counts=(1, 3, 5), num_bits=200, sequences=150,
            seed=9, engine="reference")
        packed = correction_capability_curve(
            code, error_counts=(1, 3, 5), num_bits=200, sequences=150,
            seed=9, engine="packed")
        assert packed == reference

    def test_unknown_engine_rejected(self):
        code = HammingCode(7, 4)
        try:
            correction_capability_curve(code, sequences=1, engine="fpga")
        except ValueError as err:
            assert "fpga" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")
