"""Tests for the Hamming(n, k) code family."""

import itertools

import pytest

from repro.codes.base import CodeError, DecodeStatus
from repro.codes.hamming import PAPER_HAMMING_CODES, HammingCode


@pytest.fixture(params=PAPER_HAMMING_CODES, ids=lambda nk: f"hamming{nk}")
def code(request):
    n, k = request.param
    return HammingCode(n, k)


class TestConstruction:
    def test_paper_codes_have_expected_redundancy(self):
        redundancies = {
            (7, 4): 3, (15, 11): 4, (31, 26): 5, (63, 57): 6}
        for (n, k), r in redundancies.items():
            assert HammingCode(n, k).r == r

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CodeError):
            HammingCode(8, 4)
        with pytest.raises(CodeError):
            HammingCode(7, 5)
        with pytest.raises(CodeError):
            HammingCode(3, 2)  # r = 1 is not a Hamming code

    def test_correction_capability_matches_table3(self):
        # Paper Table III 'cap' column: 14.3, 6.67, 3.23, 1.59 percent.
        expected = {(7, 4): 14.3, (15, 11): 6.67, (31, 26): 3.23,
                    (63, 57): 1.59}
        for (n, k), cap in expected.items():
            measured = HammingCode(n, k).correction_capability * 100
            assert measured == pytest.approx(cap, abs=0.05)

    def test_name_and_equality(self):
        assert HammingCode(7, 4).name == "hamming(7,4)"
        assert HammingCode(7, 4) == HammingCode(7, 4)
        assert HammingCode(7, 4) != HammingCode(15, 11)
        assert len({HammingCode(7, 4), HammingCode(7, 4)}) == 1


class TestEncode:
    def test_codeword_is_systematic(self, code):
        data = tuple((i * 7 + 1) % 2 for i in range(code.k))
        codeword = code.encode(data)
        assert codeword[:code.k] == data
        assert len(codeword) == code.n

    def test_encode_rejects_wrong_length(self, code):
        with pytest.raises(CodeError):
            code.encode([0] * (code.k + 1))

    def test_all_zero_data_gives_all_zero_codeword(self, code):
        assert code.encode([0] * code.k) == (0,) * code.n

    def test_hamming74_known_vector(self):
        # Classic Hamming(7,4) example: data 1011 has parity 010 in the
        # positional construction (p1=0, p2=1, p4=0).
        code = HammingCode(7, 4)
        codeword = code.encode([1, 0, 1, 1])
        result = code.decode(codeword)
        assert result.is_clean
        assert result.data == (1, 0, 1, 1)

    def test_minimum_distance_is_three(self):
        code = HammingCode(7, 4)
        codewords = [code.encode([(v >> i) & 1 for i in range(4)])
                     for v in range(16)]
        min_distance = min(
            sum(a != b for a, b in zip(c1, c2))
            for c1, c2 in itertools.combinations(codewords, 2))
        assert min_distance == 3


class TestDecode:
    def test_clean_codeword_decodes_clean(self, code):
        data = tuple(i % 2 for i in range(code.k))
        result = code.decode(code.encode(data))
        assert result.status is DecodeStatus.NO_ERROR
        assert result.data == data

    def test_every_single_error_is_corrected(self, code):
        data = tuple((i % 3) & 1 for i in range(code.k))
        codeword = list(code.encode(data))
        for position in range(code.n):
            corrupted = list(codeword)
            corrupted[position] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data
            assert result.corrected_positions == (position,)

    def test_decode_rejects_wrong_length(self, code):
        with pytest.raises(CodeError):
            code.decode([0] * (code.n - 1))

    def test_double_error_is_not_silently_accepted_as_clean(self):
        # A perfect Hamming code maps double errors to a (wrong) single
        # correction; it must never report NO_ERROR.
        code = HammingCode(7, 4)
        data = (1, 0, 1, 1)
        codeword = list(code.encode(data))
        for i, j in itertools.combinations(range(code.n), 2):
            corrupted = list(codeword)
            corrupted[i] ^= 1
            corrupted[j] ^= 1
            result = code.decode(corrupted)
            assert result.status is not DecodeStatus.NO_ERROR

    def test_check_uses_separate_data_and_parity(self, code):
        data = tuple((i + 1) % 2 for i in range(code.k))
        codeword = code.encode(data)
        parity = codeword[code.k:]
        result = code.check(data, parity)
        assert result.is_clean
        corrupted = list(data)
        corrupted[0] ^= 1
        result = code.check(corrupted, parity)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    def test_check_validates_lengths(self, code):
        with pytest.raises(CodeError):
            code.check([0] * (code.k - 1), [0] * code.r)
        with pytest.raises(CodeError):
            code.check([0] * code.k, [0] * (code.r + 1))


class TestHardwareSizing:
    def test_encoder_and_decoder_gate_counts_positive(self, code):
        assert code.encoder_xor_count() > 0
        assert code.decoder_xor_count() >= code.encoder_xor_count()
        assert code.corrector_gate_count() > code.k

    def test_redundancy_decreases_along_the_family(self):
        family = [HammingCode(n, k) for n, k in PAPER_HAMMING_CODES]
        redundancies = [code.redundancy for code in family]
        assert redundancies == sorted(redundancies, reverse=True)
