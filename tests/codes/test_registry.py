"""Tests for the code registry used by the synthesis flow."""

import pytest

from repro.codes.base import CodeError
from repro.codes.crc import CRCCode
from repro.codes.hamming import HammingCode
from repro.codes.parity import ParityCode
from repro.codes.registry import available_codes, get_code, register_code
from repro.codes.secded import SECDEDCode


class TestGetCode:
    def test_crc_by_name(self):
        code = get_code("crc16")
        assert isinstance(code, CRCCode)
        assert code.width == 16

    def test_crc_ccitt_by_name(self):
        assert get_code("crc16-ccitt").poly == 0x1021

    def test_hamming_patterns(self):
        for n, k in ((7, 4), (15, 11), (31, 26), (63, 57)):
            code = get_code(f"hamming({n},{k})")
            assert isinstance(code, HammingCode)
            assert (code.n, code.k) == (n, k)

    def test_whitespace_and_case_insensitive(self):
        code = get_code("Hamming(7, 4)")
        assert isinstance(code, HammingCode)
        assert code.n == 7

    def test_secded_pattern(self):
        code = get_code("secded(8,4)")
        assert isinstance(code, SECDEDCode)
        assert code.n == 8 and code.k == 4

    def test_parity_pattern(self):
        code = get_code("parity(8)")
        assert isinstance(code, ParityCode)
        assert code.k == 8

    def test_unknown_name_raises(self):
        with pytest.raises(CodeError):
            get_code("reed-solomon(255,223)")

    def test_each_call_returns_fresh_instance(self):
        assert get_code("crc16") is not get_code("crc16")


class TestRegistry:
    def test_available_codes_lists_builtins(self):
        names = available_codes()
        assert "crc16" in names
        assert "hamming(7,4)" in names

    def test_register_custom_code(self):
        register_code("my-parity", lambda: ParityCode(12))
        code = get_code("my-parity")
        assert isinstance(code, ParityCode)
        assert code.k == 12
