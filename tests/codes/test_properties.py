"""Property-based tests (hypothesis) on the code implementations."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.base import DecodeStatus, bits_to_int, int_to_bits
from repro.codes.crc import CRCCode
from repro.codes.hamming import PAPER_HAMMING_CODES, HammingCode
from repro.codes.interleave import InterleavedCode
from repro.codes.secded import SECDEDCode

bits = st.integers(min_value=0, max_value=1)


def bit_lists(length):
    return st.lists(bits, min_size=length, max_size=length)


hamming_params = st.sampled_from(PAPER_HAMMING_CODES)


class TestBitConversionProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=32, max_value=40))
    def test_int_bits_round_trip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value

    @given(st.lists(bits, min_size=1, max_size=64))
    def test_bits_int_round_trip(self, stream):
        assert list(int_to_bits(bits_to_int(stream), len(stream))) == stream


class TestHammingProperties:
    @given(hamming_params, st.data())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip(self, params, data):
        n, k = params
        code = HammingCode(n, k)
        payload = data.draw(bit_lists(k))
        result = code.decode(code.encode(payload))
        assert result.status is DecodeStatus.NO_ERROR
        assert list(result.data) == payload

    @given(hamming_params, st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_single_error_corrected(self, params, data):
        n, k = params
        code = HammingCode(n, k)
        payload = data.draw(bit_lists(k))
        position = data.draw(st.integers(min_value=0, max_value=n - 1))
        corrupted = list(code.encode(payload))
        corrupted[position] ^= 1
        result = code.decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert list(result.data) == payload

    @given(hamming_params, st.data())
    @settings(max_examples=40, deadline=None)
    def test_double_error_never_reported_clean(self, params, data):
        n, k = params
        code = HammingCode(n, k)
        payload = data.draw(bit_lists(k))
        i = data.draw(st.integers(min_value=0, max_value=n - 1))
        j = data.draw(st.integers(min_value=0, max_value=n - 1).filter(
            lambda x: x != i))
        corrupted = list(code.encode(payload))
        corrupted[i] ^= 1
        corrupted[j] ^= 1
        assert code.decode(corrupted).status is not DecodeStatus.NO_ERROR

    @given(hamming_params, st.data())
    @settings(max_examples=40, deadline=None)
    def test_parity_bits_are_linear(self, params, data):
        """Hamming codes are linear: parity(a xor b) == parity(a) xor parity(b)."""
        n, k = params
        code = HammingCode(n, k)
        a = data.draw(bit_lists(k))
        b = data.draw(bit_lists(k))
        xored = [x ^ y for x, y in zip(a, b)]
        pa = code.parity_bits(a)
        pb = code.parity_bits(b)
        assert code.parity_bits(xored) == tuple(x ^ y for x, y in zip(pa, pb))


class TestSECDEDProperties:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_single_error_corrected_double_detected(self, data):
        code = SECDEDCode(7, 4)
        payload = data.draw(bit_lists(4))
        codeword = list(code.encode(payload))
        i = data.draw(st.integers(min_value=0, max_value=7))
        corrupted = list(codeword)
        corrupted[i] ^= 1
        single = code.decode(corrupted)
        assert single.status is DecodeStatus.CORRECTED
        assert list(single.data) == payload
        j = data.draw(st.integers(min_value=0, max_value=7).filter(
            lambda x: x != i))
        corrupted[j] ^= 1
        double = code.decode(corrupted)
        assert double.status is DecodeStatus.DETECTED


class TestCRCProperties:
    @given(st.lists(bits, min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_serial_and_batch_signatures_agree(self, stream):
        crc = CRCCode.from_name("crc16")
        state = crc.new_state()
        state.shift_many(stream)
        assert state.signature() == crc.signature(stream)

    @given(st.lists(bits, min_size=8, max_size=200), st.data())
    @settings(max_examples=80, deadline=None)
    def test_single_bit_flip_always_detected(self, stream, data):
        crc = CRCCode.from_name("crc16")
        signature = crc.signature(stream)
        position = data.draw(
            st.integers(min_value=0, max_value=len(stream) - 1))
        corrupted = list(stream)
        corrupted[position] ^= 1
        assert crc.verify(corrupted, signature).status is DecodeStatus.DETECTED

    @given(st.lists(bits, min_size=20, max_size=200), st.data())
    @settings(max_examples=60, deadline=None)
    def test_bursts_up_to_width_detected(self, stream, data):
        crc = CRCCode.from_name("crc16")
        signature = crc.signature(stream)
        burst_len = data.draw(st.integers(min_value=1, max_value=16))
        start = data.draw(st.integers(
            min_value=0, max_value=len(stream) - burst_len))
        corrupted = list(stream)
        # Burst with non-zero endpoints (a burst of length L by definition
        # flips its first and last bit).
        for offset in range(burst_len):
            if offset in (0, burst_len - 1):
                corrupted[start + offset] ^= 1
            else:
                corrupted[start + offset] = data.draw(bits)
        if corrupted != list(stream):
            assert crc.verify(corrupted, signature).status is \
                DecodeStatus.DETECTED


class TestInterleaveProperties:
    @given(st.integers(min_value=2, max_value=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_burst_up_to_depth_corrected(self, depth, data):
        code = InterleavedCode(HammingCode(7, 4), depth=depth)
        payload = data.draw(bit_lists(code.k))
        start = data.draw(st.integers(min_value=0,
                                      max_value=code.k - depth))
        corrupted = list(code.encode(payload))
        for offset in range(depth):
            corrupted[start + offset] ^= 1
        result = code.decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert list(result.data) == payload
