"""Tests for the shared code interfaces and bit utilities."""

import pytest

from repro.codes.base import (
    CodeError,
    DecodeResult,
    DecodeStatus,
    as_bits,
    bits_to_int,
    hamming_distance,
    int_to_bits,
)
from repro.codes.crc import CRCCode


class TestBitUtilities:
    def test_as_bits_accepts_zeros_and_ones(self):
        assert as_bits([0, 1, 1, 0]) == (0, 1, 1, 0)

    def test_as_bits_accepts_booleans(self):
        assert as_bits([True, False]) == (1, 0)

    def test_as_bits_rejects_other_values(self):
        with pytest.raises(CodeError):
            as_bits([0, 2, 1])

    def test_bits_to_int_msb_first(self):
        assert bits_to_int([1, 0, 1, 1]) == 0b1011

    def test_int_to_bits_round_trip(self):
        for value in (0, 1, 5, 0xAB, 0xFFFF):
            width = max(value.bit_length(), 1)
            assert bits_to_int(int_to_bits(value, width)) == value

    def test_int_to_bits_rejects_overflow(self):
        with pytest.raises(CodeError):
            int_to_bits(16, 4)

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(CodeError):
            int_to_bits(-1, 4)

    def test_hamming_distance_counts_differences(self):
        assert hamming_distance([0, 0, 1, 1], [0, 1, 1, 0]) == 2

    def test_hamming_distance_requires_equal_length(self):
        with pytest.raises(CodeError):
            hamming_distance([0, 1], [0, 1, 0])


class TestDecodeResult:
    def test_clean_result_flags(self):
        result = DecodeResult(status=DecodeStatus.NO_ERROR, data=(1, 0))
        assert result.is_clean
        assert not result.error_observed

    def test_corrected_result_flags(self):
        result = DecodeResult(status=DecodeStatus.CORRECTED, data=(1, 0),
                              corrected_positions=(1,), syndrome=2)
        assert not result.is_clean
        assert result.error_observed

    def test_detected_result_flags(self):
        result = DecodeResult(status=DecodeStatus.DETECTED, data=(1, 0),
                              syndrome=3)
        assert not result.is_clean
        assert result.error_observed


class TestStreamState:
    def test_stream_state_matches_whole_stream_signature(self):
        crc = CRCCode.from_name("crc16")
        stream = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0]
        state = crc.new_state()
        state.shift_many(stream)
        assert state.signature() == crc.signature(stream)
        assert state.bits_consumed == len(stream)

    def test_stream_state_rejects_bad_bits(self):
        crc = CRCCode.from_name("crc16")
        state = crc.new_state()
        with pytest.raises(CodeError):
            state.shift(3)

    def test_verify_requires_correct_signature_width(self):
        crc = CRCCode.from_name("crc16")
        with pytest.raises(CodeError):
            crc.verify([1, 0, 1], [0, 1])
