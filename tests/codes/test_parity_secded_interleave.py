"""Tests for the parity, SECDED and interleaved codes."""

import itertools
import random

import pytest

from repro.codes.base import CodeError, DecodeStatus
from repro.codes.hamming import HammingCode
from repro.codes.interleave import InterleavedCode
from repro.codes.parity import ParityCode
from repro.codes.secded import SECDEDCode


class TestParity:
    def test_even_parity_encoding(self):
        code = ParityCode(4)
        assert code.encode([1, 1, 0, 0]) == (1, 1, 0, 0, 0)
        assert code.encode([1, 0, 0, 0]) == (1, 0, 0, 0, 1)

    def test_odd_parity_encoding(self):
        code = ParityCode(4, odd=True)
        assert code.encode([1, 1, 0, 0])[-1] == 1
        assert code.encode([1, 0, 0, 0])[-1] == 0

    def test_single_error_detected_never_corrected(self):
        code = ParityCode(8)
        data = [1, 0, 1, 1, 0, 0, 1, 0]
        codeword = list(code.encode(data))
        for position in range(len(codeword)):
            corrupted = list(codeword)
            corrupted[position] ^= 1
            assert code.decode(corrupted).status is DecodeStatus.DETECTED

    def test_double_error_missed(self):
        # A single parity bit cannot see even-weight errors.
        code = ParityCode(8)
        codeword = list(code.encode([1, 0, 1, 1, 0, 0, 1, 0]))
        codeword[0] ^= 1
        codeword[3] ^= 1
        assert code.decode(codeword).status is DecodeStatus.NO_ERROR

    def test_invalid_sizes_rejected(self):
        with pytest.raises(CodeError):
            ParityCode(0)
        code = ParityCode(4)
        with pytest.raises(CodeError):
            code.encode([0, 1])
        with pytest.raises(CodeError):
            code.decode([0, 1, 0])


class TestSECDED:
    def test_dimensions(self):
        code = SECDEDCode(7, 4)
        assert code.n == 8
        assert code.k == 4
        assert code.name == "secded(8,4)"

    def test_single_errors_corrected(self):
        code = SECDEDCode(7, 4)
        data = (1, 1, 0, 1)
        codeword = code.encode(data)
        assert len(codeword) == 8
        for position in range(8):
            corrupted = list(codeword)
            corrupted[position] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data

    def test_double_errors_detected_not_miscorrected(self):
        code = SECDEDCode(7, 4)
        data = (0, 1, 1, 0)
        codeword = code.encode(data)
        for i, j in itertools.combinations(range(8), 2):
            corrupted = list(codeword)
            corrupted[i] ^= 1
            corrupted[j] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.DETECTED

    def test_clean_decode(self):
        code = SECDEDCode(15, 11)
        data = tuple(i % 2 for i in range(11))
        result = code.decode(code.encode(data))
        assert result.is_clean
        assert result.data == data

    def test_encoder_size_exceeds_plain_hamming(self):
        assert (SECDEDCode(7, 4).encoder_xor_count()
                > HammingCode(7, 4).encoder_xor_count())


class TestInterleaved:
    def test_dimensions(self):
        code = InterleavedCode(HammingCode(7, 4), depth=4)
        assert code.k == 16
        assert code.n == 28
        assert code.correctable_errors == 4
        assert code.burst_tolerance == 4

    def test_clean_round_trip(self):
        code = InterleavedCode(HammingCode(7, 4), depth=3)
        rng = random.Random(2)
        data = tuple(rng.randint(0, 1) for _ in range(code.k))
        result = code.decode(code.encode(data))
        assert result.is_clean
        assert result.data == data

    def test_burst_up_to_depth_is_corrected(self):
        depth = 4
        code = InterleavedCode(HammingCode(7, 4), depth=depth)
        rng = random.Random(7)
        data = tuple(rng.randint(0, 1) for _ in range(code.k))
        codeword = code.encode(data)
        for start in range(code.k - depth):
            corrupted = list(codeword)
            for offset in range(depth):
                corrupted[start + offset] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data

    def test_plain_hamming_fails_the_same_burst(self):
        # The ablation claim: without interleaving, a burst of 4 inside
        # one codeword is not corrected back to the original data.
        inner = HammingCode(7, 4)
        data = (1, 0, 1, 1)
        codeword = list(inner.encode(data))
        for position in range(4):
            codeword[position] ^= 1
        result = inner.decode(codeword)
        assert result.data != data

    def test_invalid_depth_rejected(self):
        with pytest.raises(CodeError):
            InterleavedCode(HammingCode(7, 4), depth=0)

    def test_length_validation(self):
        code = InterleavedCode(HammingCode(7, 4), depth=2)
        with pytest.raises(CodeError):
            code.encode([0] * (code.k - 1))
        with pytest.raises(CodeError):
            code.decode([0] * (code.n + 1))
