"""Tests for the CRC stream codes."""

import random

import pytest

from repro.codes.base import CodeError, DecodeStatus
from repro.codes.crc import CRC_POLYNOMIALS, CRCCode


class TestConstruction:
    def test_from_name_builds_known_polynomials(self):
        for name, params in CRC_POLYNOMIALS.items():
            code = CRCCode.from_name(name)
            assert code.width == params["width"]
            assert code.poly == params["poly"]
            assert code.signature_bits == params["width"]

    def test_from_name_rejects_unknown(self):
        with pytest.raises(CodeError):
            CRCCode.from_name("crc99")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CodeError):
            CRCCode(width=0)
        with pytest.raises(CodeError):
            CRCCode(width=8, poly=0x1FF)
        with pytest.raises(CodeError):
            CRCCode(width=8, poly=0x07, init=0x100)

    def test_equality_and_hash(self):
        assert CRCCode.from_name("crc16") == CRCCode.from_name("crc16-ibm")
        assert CRCCode.from_name("crc16") != CRCCode.from_name("crc16-ccitt")
        assert len({CRCCode.from_name("crc16"),
                    CRCCode.from_name("crc16-ibm")}) == 1


class TestSignature:
    def test_signature_width(self):
        crc = CRCCode.from_name("crc16")
        assert len(crc.signature([1, 0, 1])) == 16

    def test_all_zero_stream_with_zero_init_gives_zero_signature(self):
        crc = CRCCode(width=16, poly=0x8005, init=0)
        assert crc.signature([0] * 64) == (0,) * 16

    def test_signature_depends_on_bit_order(self):
        crc = CRCCode.from_name("crc16")
        assert crc.signature([1, 0, 0, 0]) != crc.signature([0, 0, 0, 1])

    def test_signature_int_matches_bits(self):
        crc = CRCCode.from_name("crc16-ccitt")
        stream = [random.Random(3).randint(0, 1) for _ in range(100)]
        packed = crc.signature_int(stream)
        bits = crc.signature(stream)
        assert packed == sum(b << (15 - i) for i, b in enumerate(bits))

    def test_serial_state_matches_batch(self):
        crc = CRCCode.from_name("crc16")
        rng = random.Random(11)
        stream = [rng.randint(0, 1) for _ in range(257)]
        state = crc.new_state()
        state.shift_many(stream)
        assert state.signature() == crc.signature(stream)


class TestVerify:
    def test_clean_stream_verifies(self):
        crc = CRCCode.from_name("crc16")
        stream = [1, 1, 0, 1, 0, 0, 1, 0]
        signature = crc.signature(stream)
        assert crc.verify(stream, signature).status is DecodeStatus.NO_ERROR

    def test_any_single_bit_flip_is_detected(self):
        crc = CRCCode.from_name("crc16")
        rng = random.Random(5)
        stream = [rng.randint(0, 1) for _ in range(200)]
        signature = crc.signature(stream)
        for position in range(0, 200, 7):
            corrupted = list(stream)
            corrupted[position] ^= 1
            result = crc.verify(corrupted, signature)
            assert result.status is DecodeStatus.DETECTED
            assert result.syndrome != 0

    def test_burst_errors_up_to_width_are_detected(self):
        # CRC-16 detects all bursts of length <= 16.
        crc = CRCCode.from_name("crc16")
        rng = random.Random(9)
        stream = [rng.randint(0, 1) for _ in range(300)]
        signature = crc.signature(stream)
        for start in range(0, 280, 13):
            for burst_len in (2, 5, 16):
                corrupted = list(stream)
                for offset in range(burst_len):
                    corrupted[start + offset] ^= 1
                assert crc.verify(corrupted, signature).status is \
                    DecodeStatus.DETECTED

    def test_correction_capability_is_zero(self):
        assert CRCCode.from_name("crc16").correction_capability == 0.0


class TestHardwareSizing:
    def test_register_and_xor_counts(self):
        crc = CRCCode.from_name("crc16")
        assert crc.register_bit_count() == 16
        # poly 0x8005 has 3 set bits, plus the input XOR.
        assert crc.feedback_xor_count() == 4
