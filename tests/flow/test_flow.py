"""Tests for the reliability-aware synthesis flow emulation."""

import pytest

from repro.circuit.fifo import SyncFIFO
from repro.circuit.generators import make_random_state_circuit
from repro.flow.config import FlowConfig, OptimizationTarget
from repro.flow.dft import insert_scan
from repro.flow.report import format_cost_table, format_synthesis_report
from repro.flow.synthesizer import ReliabilityAwareSynthesizer


class TestFlowConfig:
    def test_defaults(self):
        config = FlowConfig()
        assert config.codes == ["hamming(7,4)"]
        assert config.clock_hz == pytest.approx(100e6)
        assert config.target is OptimizationTarget.BALANCED

    def test_text_round_trip(self):
        config = FlowConfig(codes=["hamming(7,4)", "crc16"], num_chains=40,
                            test_width=8, clock_mhz=50.0,
                            target=OptimizationTarget.ENERGY,
                            max_area_overhead_percent=20.0,
                            max_latency_ns=500.0)
        parsed = FlowConfig.from_text(config.to_text())
        assert parsed.codes == config.codes
        assert parsed.num_chains == 40
        assert parsed.test_width == 8
        assert parsed.clock_mhz == 50.0
        assert parsed.target is OptimizationTarget.ENERGY
        assert parsed.max_area_overhead_percent == 20.0
        assert parsed.max_latency_ns == 500.0

    def test_auto_chain_round_trip(self):
        config = FlowConfig(num_chains=None, candidate_chains=[8, 16])
        parsed = FlowConfig.from_text(config.to_text())
        assert parsed.num_chains is None
        assert parsed.candidate_chains == [8, 16]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "flow.cfg"
        config = FlowConfig(codes=["crc16"], num_chains=16)
        config.save(path)
        assert FlowConfig.load(path).codes == ["crc16"]

    def test_malformed_text_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig.from_text("codes crc16")

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowConfig(codes=[])
        with pytest.raises(ValueError):
            FlowConfig(clock_mhz=0)
        with pytest.raises(ValueError):
            FlowConfig(num_chains=0)
        with pytest.raises(ValueError):
            FlowConfig(num_chains=None, candidate_chains=[])

    def test_target_accepts_string(self):
        assert FlowConfig(target="area").target is OptimizationTarget.AREA


class TestScanInsertion:
    def test_insert_scan_reports_geometry(self):
        circuit = make_random_state_circuit(128, seed=1)
        result = insert_scan(circuit, num_chains=16, monitor_width=4)
        assert result.num_chains == 16
        assert result.chain_lengths == (8,) * 16
        assert result.config.num_monitor_blocks == 4
        assert result.test_mapping.test_width == 4
        assert result.test_mapping.test_chain_length == 32


class TestSynthesizer:
    def test_fixed_chain_count(self):
        circuit = make_random_state_circuit(128, seed=2)
        config = FlowConfig(codes=["hamming(7,4)"], num_chains=16)
        result = ReliabilityAwareSynthesizer(config).synthesize(circuit)
        assert result.selected_chains == 16
        assert len(result.explored) == 1
        assert result.design.num_chains == 16

    def test_latency_target_picks_most_chains(self):
        circuit = make_random_state_circuit(128, seed=3)
        config = FlowConfig(codes=["crc16"], num_chains=None,
                            candidate_chains=[4, 8, 16, 32],
                            target=OptimizationTarget.LATENCY)
        result = ReliabilityAwareSynthesizer(config).synthesize(circuit)
        assert result.selected_chains == 32

    def test_area_target_picks_fewest_chains(self):
        circuit = make_random_state_circuit(128, seed=4)
        config = FlowConfig(codes=["crc16"], num_chains=None,
                            candidate_chains=[4, 8, 16, 32],
                            target=OptimizationTarget.AREA)
        result = ReliabilityAwareSynthesizer(config).synthesize(circuit)
        assert result.selected_chains == 4

    def test_area_cap_excludes_expensive_configurations(self):
        circuit = SyncFIFO(16, 16)
        config = FlowConfig(codes=["hamming(7,4)"], num_chains=None,
                            candidate_chains=[4, 8, 16],
                            target=OptimizationTarget.LATENCY,
                            max_area_overhead_percent=5.0)
        result = ReliabilityAwareSynthesizer(config).synthesize(circuit)
        # Nothing satisfies a 5% cap with Hamming; the synthesizer falls
        # back to the best-scoring candidate rather than failing.
        assert result.selected_chains in (4, 8, 16)
        config_crc = FlowConfig(codes=["crc16"], num_chains=None,
                                candidate_chains=[4, 8, 16],
                                target=OptimizationTarget.LATENCY,
                                max_area_overhead_percent=8.0)
        result_crc = ReliabilityAwareSynthesizer(config_crc).synthesize(
            circuit)
        assert (result_crc.cost.area_overhead_percent <= 8.0
                or len(result_crc.explored) == 3)

    def test_candidates_larger_than_circuit_are_skipped(self):
        circuit = make_random_state_circuit(12, seed=5)
        config = FlowConfig(codes=["crc16"], num_chains=None,
                            candidate_chains=[4, 8, 80])
        result = ReliabilityAwareSynthesizer(config).synthesize(circuit)
        assert result.selected_chains in (4, 8)

    def test_no_feasible_candidate_raises(self):
        circuit = make_random_state_circuit(2, seed=6)
        config = FlowConfig(codes=["crc16"], num_chains=None,
                            candidate_chains=[40, 80])
        with pytest.raises(ValueError):
            ReliabilityAwareSynthesizer(config).synthesize(circuit)

    def test_synthesized_design_is_functional(self):
        circuit = make_random_state_circuit(64, seed=7)
        config = FlowConfig(codes=["hamming(7,4)", "crc16"], num_chains=8)
        result = ReliabilityAwareSynthesizer(config).synthesize(circuit)
        outcome = result.design.sleep_wake_cycle()
        assert outcome.state_intact


class TestReports:
    def test_cost_table_contains_all_rows(self):
        circuit = make_random_state_circuit(64, seed=8)
        config = FlowConfig(codes=["crc16"], num_chains=None,
                            candidate_chains=[4, 8, 16])
        result = ReliabilityAwareSynthesizer(config).synthesize(circuit)
        table = format_cost_table(result.explored, title="costs")
        assert "costs" in table
        assert table.count("\n") >= 4

    def test_synthesis_report_mentions_key_fields(self):
        circuit = make_random_state_circuit(64, seed=9)
        config = FlowConfig(codes=["hamming(7,4)"], num_chains=8)
        result = ReliabilityAwareSynthesizer(config).synthesize(circuit)
        report = format_synthesis_report(result)
        assert "hamming(7,4)" in report
        assert "area overhead" in report
        assert "encode latency" in report
