"""Tests for the dynamic-power estimator and energy calculator."""

import pytest

from repro.circuit.fifo import SyncFIFO
from repro.circuit.netlist import Netlist
from repro.tech.energy import CodingCost, EnergyCalculator
from repro.tech.power import (
    DEFAULT_SCAN_ACTIVITY,
    PowerBreakdown,
    PowerEstimator,
)


class TestPowerEstimator:
    def test_power_scales_with_frequency(self):
        netlist = Netlist("x")
        netlist.add_cells("rsdff", 100, group="fifo")
        slow = PowerEstimator(clock_hz=50e6).scan_mode_power(netlist)
        fast = PowerEstimator(clock_hz=100e6).scan_mode_power(netlist)
        assert fast.total == pytest.approx(2 * slow.total)

    def test_power_scales_with_cell_count(self):
        small = Netlist("s")
        small.add_cells("rsdff", 10, group="fifo")
        large = Netlist("l")
        large.add_cells("rsdff", 100, group="fifo")
        estimator = PowerEstimator()
        assert estimator.scan_mode_power(large).total == pytest.approx(
            10 * estimator.scan_mode_power(small).total)

    def test_sequential_cells_dominate_combinational(self):
        seq = Netlist("seq")
        seq.add_cells("rsdff", 10, group="fifo")
        comb = Netlist("comb")
        comb.add_cells("nand2", 10, group="fifo")
        estimator = PowerEstimator()
        assert (estimator.scan_mode_power(seq).total
                > estimator.scan_mode_power(comb).total)

    def test_breakdown_by_group_and_merge(self):
        netlist = Netlist("x")
        netlist.add_cells("rsdff", 10, group="fifo")
        netlist.add_cells("aon_dff", 5, group="monitor")
        breakdown = PowerEstimator().scan_mode_power(netlist)
        assert set(breakdown.by_group) == {"fifo", "monitor"}
        merged = breakdown.merged_with(
            PowerBreakdown(by_group={"fifo": 1e-3}))
        assert merged.group("fifo") == pytest.approx(
            breakdown.group("fifo") + 1e-3)

    def test_custom_activity_map(self):
        netlist = Netlist("x")
        netlist.add_cells("rsdff", 10, group="fifo")
        estimator = PowerEstimator()
        idle = estimator.netlist_power(netlist, {"fifo": 0.0})
        busy = estimator.netlist_power(netlist, {"fifo": 1.0})
        assert idle.total == 0.0
        assert busy.total > 0.0

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            PowerEstimator(clock_hz=0)

    def test_fifo_scan_power_in_milliwatt_range(self):
        # The paper reports ~5 mW of encode/decode power at 100 MHz for
        # the 1040-flop FIFO; the model should be in the same ballpark.
        fifo = SyncFIFO(32, 32)
        power = PowerEstimator(clock_hz=100e6).scan_mode_power(fifo.netlist)
        assert 2e-3 < power.total < 10e-3

    def test_default_activity_covers_all_protection_groups(self):
        for group in ("fifo", "monitor", "corrector", "controller",
                      "scan_routing"):
            assert group in DEFAULT_SCAN_ACTIVITY


class TestEnergyCalculator:
    def _netlist(self):
        netlist = Netlist("x")
        netlist.add_cells("rsdff", 1000, group="fifo")
        netlist.add_cells("mux2", 50, group="corrector")
        return netlist

    def test_latency_is_chain_length_times_period(self):
        calc = EnergyCalculator(PowerEstimator(clock_hz=100e6))
        cost = calc.encode_cost(self._netlist(), chain_length=260)
        assert cost.latency_ns == pytest.approx(2600.0)
        cost = calc.encode_cost(self._netlist(), chain_length=13)
        assert cost.latency_ns == pytest.approx(130.0)

    def test_energy_is_power_times_latency(self):
        calc = EnergyCalculator(PowerEstimator(clock_hz=100e6))
        cost = calc.encode_cost(self._netlist(), chain_length=100)
        assert cost.energy_j == pytest.approx(cost.power_w * cost.latency_s)
        assert cost.energy_nj == pytest.approx(cost.energy_j * 1e9)

    def test_decode_cost_at_least_encode_cost(self):
        calc = EnergyCalculator(PowerEstimator(clock_hz=100e6))
        netlist = self._netlist()
        encode = calc.encode_cost(netlist, 64)
        decode = calc.decode_cost(netlist, 64)
        assert decode.power_w >= encode.power_w

    def test_invalid_chain_length(self):
        calc = EnergyCalculator()
        with pytest.raises(ValueError):
            calc.encode_cost(self._netlist(), 0)

    def test_coding_cost_units(self):
        cost = CodingCost(cycles=13, clock_hz=100e6, power_w=5e-3)
        assert cost.latency_s == pytest.approx(130e-9)
        assert cost.latency_ns == pytest.approx(130.0)
        assert cost.power_mw == pytest.approx(5.0)
        assert cost.energy_nj == pytest.approx(0.65)
