"""Tests for the standard-cell library model and area estimation."""

import pytest

from repro.circuit.fifo import SyncFIFO
from repro.circuit.netlist import Netlist
from repro.tech.area import AreaBreakdown, AreaEstimator
from repro.tech.library import (
    Cell,
    ST120NM_CELLS,
    StandardCellLibrary,
    default_library,
)


class TestLibrary:
    def test_default_library_has_core_cells(self):
        library = default_library()
        for name in ("inv", "nand2", "xor2", "mux2", "dff", "sdff", "rsdff",
                     "aon_dff"):
            assert name in library
            cell = library.cell(name)
            assert cell.area_um2 > 0

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            default_library().cell("magic_gate")

    def test_sequential_cells_larger_than_combinational(self):
        library = default_library()
        assert library.cell("dff").area_um2 > library.cell("nand2").area_um2
        # Retention flop carries the balloon latch, so it is the largest.
        assert library.cell("rsdff").area_um2 > library.cell("sdff").area_um2
        assert library.cell("sdff").area_um2 > library.cell("dff").area_um2

    def test_scaling_creates_new_library(self):
        library = default_library()
        scaled = library.scaled("half", area_scale=0.5)
        assert scaled.cell("inv").area_um2 == pytest.approx(
            library.cell("inv").area_um2 * 0.5)
        # Original untouched.
        assert library.cell("inv").area_um2 == ST120NM_CELLS["inv"].area_um2

    def test_add_cell_and_empty_library_rejected(self):
        library = StandardCellLibrary("mini", {"inv": ST120NM_CELLS["inv"]})
        library.add_cell(Cell("special", 1.0, 1.0, 1.0))
        assert "special" in library
        with pytest.raises(ValueError):
            StandardCellLibrary("empty", {})

    def test_negative_cell_parameters_rejected(self):
        with pytest.raises(ValueError):
            Cell("bad", -1.0, 1.0, 1.0)


class TestAreaEstimator:
    def test_netlist_area_is_sum_of_cells(self):
        estimator = AreaEstimator()
        netlist = Netlist("x")
        netlist.add_cells("inv", 10)
        netlist.add_cells("dff", 2)
        expected = (10 * estimator.cell_area("inv")
                    + 2 * estimator.cell_area("dff"))
        assert estimator.netlist_area(netlist) == pytest.approx(expected)

    def test_breakdown_by_group(self):
        estimator = AreaEstimator()
        netlist = Netlist("x")
        netlist.add_cells("dff", 4, group="fifo")
        netlist.add_cells("xor2", 3, group="monitor")
        breakdown = estimator.breakdown(netlist)
        assert breakdown.group("fifo") > 0
        assert breakdown.group("monitor") > 0
        assert breakdown.total == pytest.approx(
            breakdown.group("fifo") + breakdown.group("monitor"))

    def test_overhead_fraction_counts_protection_groups_only(self):
        breakdown = AreaBreakdown(by_group={
            "fifo": 1000.0, "monitor": 100.0, "corrector": 50.0,
            "controller": 25.0, "scan_routing": 25.0})
        assert breakdown.base_area == pytest.approx(1000.0)
        assert breakdown.protection_area == pytest.approx(200.0)
        assert breakdown.overhead_fraction == pytest.approx(0.2)

    def test_empty_breakdown(self):
        breakdown = AreaBreakdown(by_group={})
        assert breakdown.total == 0.0
        assert breakdown.overhead_fraction == 0.0

    def test_merged_breakdowns(self):
        a = AreaBreakdown(by_group={"fifo": 10.0})
        b = AreaBreakdown(by_group={"fifo": 5.0, "monitor": 2.0})
        merged = a.merged_with(b)
        assert merged.group("fifo") == 15.0
        assert merged.group("monitor") == 2.0

    def test_fifo_base_area_near_paper_value(self):
        # The paper reports 71,628 um^2 for the bare 32x32 FIFO; the
        # calibrated cost model should land within ~10 %.
        fifo = SyncFIFO(32, 32)
        area = AreaEstimator().netlist_area(fifo.netlist)
        assert area == pytest.approx(71628, rel=0.10)
