"""Tests for the retention-upset model, leakage model and power domain."""

import pytest

from repro.circuit.fifo import SyncFIFO
from repro.circuit.flipflop import RetentionFlipFlop
from repro.circuit.generators import make_counter, make_random_state_circuit
from repro.power.domain import DomainState, PowerDomain, SwitchNetwork
from repro.power.leakage import LeakageModel
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters


class TestRetentionUpsetModel:
    def test_probability_monotone_in_droop(self):
        model = RetentionUpsetModel(nominal_margin=0.35, slope=0.05)
        probabilities = [model.upset_probability(d)
                         for d in (0.0, 0.1, 0.3, 0.35, 0.5, 1.0)]
        assert probabilities == sorted(probabilities)
        assert probabilities[0] == 0.0
        assert probabilities[-1] > 0.99

    def test_half_probability_at_margin(self):
        model = RetentionUpsetModel(nominal_margin=0.4, slope=0.05)
        assert model.upset_probability(0.4) == pytest.approx(0.5)

    def test_margin_scale_shifts_threshold(self):
        model = RetentionUpsetModel(nominal_margin=0.4, slope=0.05)
        weak = model.upset_probability(0.4, margin_scale=0.8)
        strong = model.upset_probability(0.4, margin_scale=1.2)
        assert weak > 0.5 > strong

    def test_sample_upsets_corrupts_latches(self):
        model = RetentionUpsetModel(nominal_margin=0.3, slope=0.01, seed=3)
        flops = [RetentionFlipFlop(name=f"f{i}", init=1) for i in range(50)]
        for ff in flops:
            ff.retain()
        flipped = model.sample_upsets(flops, droop=1.0)  # far above margin
        assert len(flipped) == 50
        assert all(ff.retention_value == 0 for ff in flops)

    def test_sample_upsets_no_droop_no_flips(self):
        model = RetentionUpsetModel(seed=3)
        flops = [RetentionFlipFlop(init=1) for _ in range(20)]
        for ff in flops:
            ff.retain()
        assert model.sample_upsets(flops, droop=0.0) == []

    def test_expected_upsets(self):
        model = RetentionUpsetModel(nominal_margin=0.3, slope=0.01)
        assert model.expected_upsets(100, droop=1.0) == pytest.approx(100, rel=1e-3)
        assert model.expected_upsets(100, droop=0.0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetentionUpsetModel(nominal_margin=0)
        with pytest.raises(ValueError):
            RetentionUpsetModel(slope=0)


class TestLeakageModel:
    def test_sleep_leakage_much_smaller_than_active(self):
        fifo = SyncFIFO(16, 16)
        report = LeakageModel().report(fifo.netlist)
        assert report.sleep_leakage < report.active_leakage
        # Default fractions model the paper's ~95% reduction.
        assert report.reduction == pytest.approx(0.95, abs=0.02)

    def test_savings_scale_with_sleep_duration(self):
        fifo = SyncFIFO(8, 8)
        report = LeakageModel().report(fifo.netlist)
        assert report.savings(2.0) == pytest.approx(2 * report.savings(1.0))

    def test_break_even_time_positive(self):
        fifo = SyncFIFO(8, 8)
        model = LeakageModel()
        break_even = model.break_even_sleep_time(fifo.netlist,
                                                 overhead_energy_j=1e-9)
        assert break_even > 0

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            LeakageModel(switch_leakage_fraction=1.5)
        with pytest.raises(ValueError):
            LeakageModel(retention_leakage_fraction=-0.1)


class TestSwitchNetwork:
    def test_effective_resistance(self):
        network = SwitchNetwork(num_switches=100,
                                on_resistance_per_switch=100.0)
        assert network.effective_resistance == pytest.approx(1.0)

    def test_leakage_total(self):
        network = SwitchNetwork(num_switches=10, leakage_per_switch_nw=2.0)
        assert network.total_leakage_w == pytest.approx(20e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchNetwork(num_switches=0)
        with pytest.raises(ValueError):
            SwitchNetwork(num_switches=4, stages=5)


class TestPowerDomain:
    def test_sleep_wake_cycle_restores_state(self):
        counter = make_counter(12)
        for _ in range(100):
            counter.tick()
        domain = PowerDomain(counter)
        domain.enter_sleep()
        assert domain.is_asleep
        assert domain.state is DomainState.SLEEP
        event = domain.wake_up()
        assert not domain.is_asleep
        assert counter.value == 100
        assert event.peak_current_a > 0
        assert event.num_upsets == 0

    def test_double_sleep_or_wake_rejected(self):
        domain = PowerDomain(make_counter(4))
        domain.enter_sleep()
        with pytest.raises(RuntimeError):
            domain.enter_sleep()
        domain.wake_up()
        with pytest.raises(RuntimeError):
            domain.wake_up()

    def test_wake_history_accumulates(self):
        domain = PowerDomain(make_counter(4))
        for _ in range(3):
            domain.enter_sleep()
            domain.wake_up()
        assert len(domain.wake_history) == 3

    def test_upset_model_corrupts_state_on_wake(self):
        circuit = make_random_state_circuit(64, seed=9)
        # Margin far below the droop so every latch flips.
        upset = RetentionUpsetModel(nominal_margin=1e-4, slope=1e-5, seed=1)
        rlc = RLCParameters()
        domain = PowerDomain(circuit, rlc=rlc, upset_model=upset)
        before = circuit.snapshot()
        domain.enter_sleep()
        event = domain.wake_up()
        after = circuit.snapshot()
        assert event.num_upsets > 0
        assert before.hamming_distance(after) == event.num_upsets

    def test_staggered_switches_reduce_droop(self):
        circuit_a = make_random_state_circuit(32, seed=2)
        circuit_b = make_random_state_circuit(32, seed=2)
        rlc = RLCParameters()
        abrupt = PowerDomain(circuit_a, rlc=rlc,
                             switches=SwitchNetwork(stages=1))
        gentle = PowerDomain(circuit_b, rlc=rlc,
                             switches=SwitchNetwork(stages=8))
        abrupt.enter_sleep()
        gentle.enter_sleep()
        event_abrupt = abrupt.wake_up()
        event_gentle = gentle.wake_up()
        assert event_gentle.peak_droop_v < event_abrupt.peak_droop_v
