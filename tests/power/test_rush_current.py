"""Tests for the RLC rush-current / supply-droop model."""

import math

import pytest

from repro.power.rush_current import (
    DampingRegime,
    RLCParameters,
    RushCurrentModel,
)


class TestRLCParameters:
    def test_damping_classification(self):
        underdamped = RLCParameters(resistance=0.5, inductance=1e-9,
                                    capacitance=200e-12)
        assert underdamped.regime is DampingRegime.UNDERDAMPED
        overdamped = RLCParameters(resistance=20.0, inductance=1e-9,
                                   capacitance=200e-12)
        assert overdamped.regime is DampingRegime.OVERDAMPED

    def test_critical_damping(self):
        # zeta == 1 when R == 2 * sqrt(L / C).
        L, C = 1e-9, 100e-12
        R = 2 * math.sqrt(L / C)
        params = RLCParameters(resistance=R, inductance=L, capacitance=C)
        assert params.regime is DampingRegime.CRITICALLY_DAMPED
        assert params.damping_ratio == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RLCParameters(vdd=0)
        with pytest.raises(ValueError):
            RLCParameters(resistance=-1)
        with pytest.raises(ValueError):
            RLCParameters(share_resistance=-0.1)


class TestRushCurrentModel:
    def test_current_is_zero_at_time_zero_and_before(self):
        model = RushCurrentModel(RLCParameters())
        assert model.current(0.0) == pytest.approx(0.0)
        assert model.current(-1e-9) == 0.0

    def test_current_rises_then_decays(self):
        model = RushCurrentModel(RLCParameters())
        peak_time_guess = None
        peak = model.peak_current()
        assert peak > 0
        # Long after the transient the current is negligible.
        late = model.current(model._time_horizon())
        assert abs(late) < 0.05 * peak

    def test_peak_current_bounded_by_ideal_step(self):
        params = RLCParameters()
        model = RushCurrentModel(params)
        # The peak of an RLC step response never exceeds Vdd / (omega_d L)
        # and is far above zero for an underdamped circuit.
        assert 0 < model.peak_current() < params.vdd / (
            params.omega0 * params.inductance) * 1.01

    def test_droop_positive_and_bounded(self):
        model = RushCurrentModel(RLCParameters())
        droop = model.peak_droop()
        assert droop > 0

    def test_staggered_wakeup_reduces_peak_current_and_droop(self):
        params = RLCParameters()
        baseline = RushCurrentModel(params, num_switch_stages=1)
        staggered = RushCurrentModel(params, num_switch_stages=4)
        assert staggered.peak_current() < baseline.peak_current()
        assert staggered.peak_droop() < baseline.peak_droop()

    def test_total_charge_independent_of_staggering(self):
        params = RLCParameters()
        one = RushCurrentModel(params, num_switch_stages=1)
        four = RushCurrentModel(params, num_switch_stages=4)
        assert one.total_wakeup_charge() == pytest.approx(
            four.total_wakeup_charge())
        assert one.wakeup_energy() == pytest.approx(four.wakeup_energy())

    def test_settle_time_positive_and_reasonable(self):
        model = RushCurrentModel(RLCParameters())
        settle = model.settle_time()
        assert settle > 0
        assert settle <= model._time_horizon()

    def test_waveform_shapes(self):
        model = RushCurrentModel(RLCParameters())
        times, currents, droops = model.waveform(num_points=100)
        assert len(times) == len(currents) == len(droops) == 100
        assert times[0] == 0.0
        assert max(currents) == pytest.approx(model.peak_current(), rel=0.1)

    def test_waveform_rejects_bad_points(self):
        with pytest.raises(ValueError):
            RushCurrentModel(RLCParameters()).waveform(num_points=1)

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            RushCurrentModel(RLCParameters(), num_switch_stages=0)

    def test_overdamped_waveform_is_monotone_after_peak(self):
        params = RLCParameters(resistance=50.0)
        model = RushCurrentModel(params)
        assert params.regime is DampingRegime.OVERDAMPED
        times, currents, _ = model.waveform(num_points=400)
        peak_index = currents.index(max(currents))
        tail = currents[peak_index:]
        assert all(a >= b - 1e-12 for a, b in zip(tail, tail[1:]))

    def test_derivative_sign_change_at_peak(self):
        model = RushCurrentModel(RLCParameters())
        # di/dt is positive at t=0+ and negative well after the peak.
        assert model.current_derivative(1e-12) > 0
