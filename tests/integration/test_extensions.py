"""Integration tests for the extension features beyond the paper.

Covers the SECDED upgrade of the monitoring block, the interleaved
monitor on the scan path, and the RTL package for different code
stacks -- features DESIGN.md lists as ablations/extensions of the
paper's design choices.
"""

import random

import pytest

from repro.circuit.generators import make_random_state_circuit
from repro.codes.hamming import HammingCode
from repro.codes.interleave import InterleavedCode
from repro.codes.secded import SECDEDCode
from repro.core.controller import ErrorCode
from repro.core.protected import ProtectedDesign
from repro.faults.patterns import ErrorPattern, single_error_pattern
from repro.rtl import emit_rtl_package


class TestSECDEDMonitoring:
    @pytest.fixture
    def design(self):
        circuit = make_random_state_circuit(128, seed=41)
        return ProtectedDesign(circuit, codes=SECDEDCode(7, 4),
                               num_chains=16)

    def test_single_errors_still_corrected(self, design):
        rng = random.Random(1)
        for _ in range(5):
            pattern = single_error_pattern(design.num_chains,
                                           design.chain_length, rng)
            outcome = design.sleep_wake_cycle(injection=pattern)
            assert outcome.state_intact
            assert outcome.error_code is ErrorCode.CORRECTED

    def test_double_error_in_one_slice_flagged_uncorrectable(self, design):
        # Two errors in the same cycle of the same monitoring block: a
        # plain Hamming monitor would mis-correct silently (needing the
        # CRC to catch it); SECDED flags it as uncorrectable by itself.
        pattern = ErrorPattern(locations=frozenset({(0, 3), (1, 3)}))
        outcome = design.sleep_wake_cycle(injection=pattern)
        assert outcome.detected
        assert outcome.error_code is ErrorCode.UNCORRECTABLE
        assert not outcome.silent_corruption


class TestInterleavedMonitoring:
    def test_adjacent_chain_burst_corrected_end_to_end(self):
        circuit = make_random_state_circuit(128, seed=43)
        design = ProtectedDesign(
            circuit,
            codes=[InterleavedCode(HammingCode(7, 4), depth=4), "crc16"],
            num_chains=16)
        # Four adjacent chains corrupted at the same scan position: the
        # interleaver spreads them across four inner codewords.
        pattern = ErrorPattern(
            locations=frozenset({(4, 2), (5, 2), (6, 2), (7, 2)}),
            kind="burst")
        outcome = design.sleep_wake_cycle(injection=pattern)
        assert outcome.injected_errors == 4
        assert outcome.detected
        assert outcome.state_intact
        assert outcome.error_code is ErrorCode.CORRECTED


class TestRTLPackaging:
    def test_hamming_only_package_has_no_crc_file(self):
        circuit = make_random_state_circuit(64, seed=45)
        design = ProtectedDesign(circuit, codes="hamming(15,11)",
                                 num_chains=11)
        package = emit_rtl_package(design)
        assert "monitor_hamming_15_11.v" in package.files
        assert not any(name.startswith("monitor_crc")
                       for name in package.file_names)

    def test_secded_stack_documented_not_dropped(self):
        circuit = make_random_state_circuit(64, seed=46)
        design = ProtectedDesign(circuit, codes=SECDEDCode(7, 4),
                                 num_chains=8)
        package = emit_rtl_package(design)
        # SECDED has no dedicated emitter yet; the package must say so
        # explicitly instead of silently omitting the monitor.
        assert any(name.startswith("monitor_secdedcode")
                   for name in package.file_names)
