"""End-to-end integration tests across the whole stack.

These exercise the complete methodology on the paper's actual case
study (the 32x32 FIFO with 80 chains of 13 flops) rather than on the
reduced circuits the unit tests use.
"""

import random

import pytest

from repro import (
    FlowConfig,
    ProtectedDesign,
    ReliabilityAwareSynthesizer,
    SyncFIFO,
)
from repro.analysis import paper_data
from repro.core.controller import ErrorCode
from repro.faults.patterns import burst_error_pattern, single_error_pattern
from repro.validation.campaign import (
    run_multiple_error_campaign,
    run_single_error_campaign,
)
from repro.validation.testbench import FIFOTestbench


@pytest.fixture(scope="module")
def paper_fifo_design():
    """The paper's configuration: 32x32 FIFO, 80 chains x 13 flops."""
    fifo = SyncFIFO(32, 32, name="fifo32x32")
    return ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                           num_chains=80)


class TestPaperConfiguration:
    def test_geometry_matches_paper(self, paper_fifo_design):
        assert paper_fifo_design.circuit.num_registers == 1040
        assert paper_fifo_design.num_chains == 80
        assert paper_fifo_design.chain_length == 13
        assert paper_fifo_design.padding_cells == 0
        assert paper_fifo_design.config.encode_latency_ns == pytest.approx(
            130.0)

    def test_clean_sleep_wake_on_full_fifo(self, paper_fifo_design):
        fifo = paper_fifo_design.circuit
        fifo.reset()
        values = [random.Random(0).getrandbits(32) for _ in range(16)]
        for value in values:
            fifo.push_int(value)
        outcome = paper_fifo_design.sleep_wake_cycle()
        assert outcome.state_intact
        for value in values:
            assert fifo.pop_int() == value

    def test_single_errors_on_paper_fifo_always_corrected(
            self, paper_fifo_design):
        rng = random.Random(42)
        for _ in range(5):
            pattern = single_error_pattern(80, 13, rng)
            outcome = paper_fifo_design.sleep_wake_cycle(injection=pattern)
            assert outcome.detected
            assert outcome.state_intact
            assert outcome.error_code is ErrorCode.CORRECTED

    def test_burst_errors_on_paper_fifo_always_detected(
            self, paper_fifo_design):
        rng = random.Random(43)
        for _ in range(3):
            pattern = burst_error_pattern(80, 13, 6, rng)
            outcome = paper_fifo_design.sleep_wake_cycle(injection=pattern)
            assert outcome.detected
            assert not outcome.silent_corruption


class TestSmallScaleFPGACampaign:
    """A scaled-down version of the paper's 10^8-sequence campaign."""

    def test_campaigns_reproduce_section4_headlines(self):
        fifo = SyncFIFO(16, 16, name="fifo16x16")
        design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                                 num_chains=16)
        testbench = FIFOTestbench(design, seed=77)
        single = run_single_error_campaign(testbench, num_sequences=25)
        assert single.stats.detection_rate() == pytest.approx(
            paper_data.VALIDATION_SUMMARY["single_error"]["detection_rate"])
        assert single.stats.correction_rate() == pytest.approx(
            paper_data.VALIDATION_SUMMARY["single_error"]["correction_rate"])

        multiple = run_multiple_error_campaign(testbench, num_sequences=25,
                                               burst_size=4)
        assert multiple.stats.detection_rate() == pytest.approx(
            paper_data.VALIDATION_SUMMARY["multiple_error"]["detection_rate"])
        assert multiple.stats.silent_corruptions == 0


class TestFlowEndToEnd:
    def test_config_file_to_validated_design(self, tmp_path):
        # Write a configuration file, load it, synthesize, then verify a
        # fault-injection cycle on the produced design -- the complete
        # Fig. 4 flow plus the Fig. 8 validation in one pass.
        config_path = tmp_path / "flow.cfg"
        FlowConfig(codes=["hamming(7,4)", "crc16"], num_chains=None,
                   candidate_chains=[8, 16],
                   target="latency").save(config_path)
        config = FlowConfig.load(config_path)
        fifo = SyncFIFO(8, 8)
        result = ReliabilityAwareSynthesizer(config).synthesize(fifo)
        assert result.selected_chains == 16
        design = result.design
        rng = random.Random(3)
        pattern = single_error_pattern(design.num_chains,
                                       design.chain_length, rng)
        outcome = design.sleep_wake_cycle(injection=pattern)
        assert outcome.state_intact
