"""Streaming, mergeable campaign statistics.

The paper's FPGA campaigns run 10^8 test sequences; the "Counter" block
of Fig. 8 keeps *counts*, not a log of every sequence.  The original
software bookkeeping (:mod:`repro.faults.campaign`) instead appended an
:class:`InjectionRecord` per sequence, so campaign memory grew linearly
with the sequence count.  This module provides the counter-based
replacement:

* :class:`StreamingCampaignStats` -- the injected / detected /
  corrected / silent-corruption counters with the exact rate and
  summary API of the old record-list ``CampaignStats``, in O(1) memory;
* :class:`StreamingCampaignResult` -- the validation-campaign wrapper
  with the Fig. 8 test-bench counters (errors reported by FIFO_A,
  comparator mismatches, inconsistent sequences);
* :func:`injection_record_from_sequence` -- the single place where a
  test-bench sequence outcome is folded into an injection record.

Both statistics objects are **mergeable** (integer counter addition, so
merging is associative and commutative) and **serializable** to plain
dictionaries -- the two properties the sharded runner of
:mod:`repro.campaigns.runner` builds on: any partition of a campaign
into chunks, merged in any order, yields bit-identical statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict


@dataclass(frozen=True)
class InjectionRecord:
    """Outcome of one sleep/wake test sequence with injection.

    Attributes
    ----------
    injected:
        Number of bit errors injected in this sequence.
    detected:
        Whether the monitoring logic reported *any* error.
    corrected:
        Whether the monitoring + correction logic repaired every
        injected error (i.e. the post-decode state equals the
        pre-sleep state).
    state_intact:
        Whether the architectural state after the sequence matches the
        reference (from the comparator, independent of what the monitor
        reported).
    residual_errors:
        Number of register bits still wrong after correction.
    """

    injected: int
    detected: bool
    corrected: bool
    state_intact: bool
    residual_errors: int = 0

    @property
    def silent_corruption(self) -> bool:
        """True when state was corrupted but nothing was reported."""
        return (not self.state_intact) and (not self.detected)


def injection_record_from_sequence(result: Any) -> InjectionRecord:
    """Fold one test-bench sequence outcome into an injection record.

    ``result`` is a :class:`~repro.validation.testbench.TestSequenceResult`
    (duck-typed here so this module stays free of validation imports).

    A sequence only counts as *corrected* when errors were injected,
    the monitor actually **detected** them and the final state is
    intact.  Requiring detection matters: an injected flip that the
    monitor never saw but that happens to leave the state intact (for
    example a bit that a droop event flips back, or an upset in a
    don't-care cell) is not a correction event, and counting it as one
    overstated the correction rate of exactly the campaigns whose
    correction statistics the paper reports.
    """
    cycle = result.cycle
    return InjectionRecord(
        injected=cycle.injected_errors,
        detected=cycle.detected,
        corrected=(cycle.injected_errors > 0
                   and cycle.detected
                   and cycle.state_intact),
        state_intact=cycle.state_intact,
        residual_errors=cycle.residual_errors)


@dataclass
class StreamingCampaignStats:
    """Counter-based campaign statistics (O(1) memory, mergeable).

    Exposes the same names as the historical record-list
    ``CampaignStats`` -- ``num_sequences``, ``total_injected``,
    ``sequences_with_errors``, ``detected_sequences``,
    ``corrected_sequences``, ``silent_corruptions``,
    ``intact_sequences``, the three rate methods and ``summary()`` --
    but every one of them is a plain integer counter updated by
    :meth:`add`, so a 10^8-sequence campaign costs the same resident
    memory as a 10-sequence one.
    """

    num_sequences: int = 0
    total_injected: int = 0
    sequences_with_errors: int = 0
    detected_sequences: int = 0
    corrected_sequences: int = 0
    silent_corruptions: int = 0
    intact_sequences: int = 0
    #: Detected / corrected counts restricted to sequences that carried
    #: at least one injected error (the rate denominators).
    detected_with_errors: int = 0
    corrected_with_errors: int = 0
    total_residual_errors: int = 0

    def add(self, record: InjectionRecord) -> None:
        """Fold one sequence's outcome into the counters."""
        self.num_sequences += 1
        self.total_injected += record.injected
        self.total_residual_errors += record.residual_errors
        if record.detected:
            self.detected_sequences += 1
        if record.corrected:
            self.corrected_sequences += 1
        if record.state_intact:
            self.intact_sequences += 1
        if record.silent_corruption:
            self.silent_corruptions += 1
        if record.injected > 0:
            self.sequences_with_errors += 1
            if record.detected:
                self.detected_with_errors += 1
            if record.corrected:
                self.corrected_with_errors += 1

    def add_batch(self, arrays) -> None:
        """Fold a whole batch's columnar outcome into the counters.

        ``arrays`` is a
        :class:`~repro.engines.base.BatchOutcomeArrays`; every counter
        updates through one ndarray reduction, so ingesting a
        ``B``-sequence batch costs a handful of vector operations
        instead of ``B`` :meth:`add` calls.  The definitions mirror
        :func:`injection_record_from_sequence` exactly -- *corrected*
        means injected, detected **and** intact -- so a batch folded
        here is bit-identical to folding its per-sequence records
        (property-tested).
        """
        detected = arrays.detected
        state_intact = arrays.state_intact
        injected = arrays.injected
        with_errors = injected > 0
        corrected = with_errors & detected & state_intact
        self.num_sequences += int(detected.shape[0])
        self.total_injected += int(injected.sum())
        self.total_residual_errors += int(arrays.residual_errors.sum())
        self.detected_sequences += int(detected.sum())
        self.corrected_sequences += int(corrected.sum())
        self.intact_sequences += int(state_intact.sum())
        self.silent_corruptions += int((~state_intact & ~detected).sum())
        self.sequences_with_errors += int(with_errors.sum())
        self.detected_with_errors += int((with_errors & detected).sum())
        self.corrected_with_errors += int(corrected.sum())

    def merge(self, other: "StreamingCampaignStats"
              ) -> "StreamingCampaignStats":
        """Add another shard's counters into this one (in place)."""
        for f in fields(StreamingCampaignStats):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return self

    # -- rates (same definitions as the record-list implementation) ----
    def detection_rate(self) -> float:
        """Fraction of error-carrying sequences that were detected."""
        if self.sequences_with_errors == 0:
            return 1.0
        return self.detected_with_errors / self.sequences_with_errors

    def correction_rate(self) -> float:
        """Fraction of error-carrying sequences fully corrected."""
        if self.sequences_with_errors == 0:
            return 1.0
        return self.corrected_with_errors / self.sequences_with_errors

    def bit_correction_rate(self) -> float:
        """Fraction of injected *bits* that ended up corrected.

        This is the metric plotted in the paper's Fig. 10 ("errors
        corrected %").
        """
        if self.total_injected == 0:
            return 1.0
        return ((self.total_injected - self.total_residual_errors)
                / self.total_injected)

    # -- serialization (checkpoints, worker -> parent transfer) --------
    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form (JSON-safe) for checkpoints."""
        return {f.name: getattr(self, f.name)
                for f in fields(StreamingCampaignStats)}

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "StreamingCampaignStats":
        """Rebuild counters from :meth:`to_dict` output."""
        return cls(**{f.name: int(payload[f.name])
                      for f in fields(StreamingCampaignStats)})

    def summary(self) -> str:
        """Human-readable multi-line summary of the campaign."""
        lines = [
            f"sequences run            : {self.num_sequences}",
            f"sequences with injection : {self.sequences_with_errors}",
            f"total bits injected      : {self.total_injected}",
            f"detection rate           : {self.detection_rate():.4%}",
            f"full-correction rate     : {self.correction_rate():.4%}",
            f"bit correction rate      : {self.bit_correction_rate():.4%}",
            f"silent corruptions       : {self.silent_corruptions}",
        ]
        return "\n".join(lines)


@dataclass
class StreamingCampaignResult:
    """Streaming form of a validation-campaign outcome.

    Wraps :class:`StreamingCampaignStats` with the test-bench-specific
    counters of the paper's Fig. 8 ("Counter" block): errors reported
    by FIFO_A, mismatches reported by the comparator, and sequences
    where the two views disagree.  Unlike the legacy
    :class:`~repro.validation.campaign.CampaignResult` it does not keep
    the per-sequence records, so it is the result type the sharded
    runner streams and merges.
    """

    stats: StreamingCampaignStats = field(
        default_factory=StreamingCampaignStats)
    errors_reported_by_dut: int = 0
    mismatches_reported_by_comparator: int = 0
    inconsistent_sequences: int = 0

    def add(self, result: Any) -> None:
        """Record one test sequence (a ``TestSequenceResult``)."""
        self.stats.add(injection_record_from_sequence(result))
        if result.error_reported:
            self.errors_reported_by_dut += 1
        if result.mismatch_reported:
            self.mismatches_reported_by_comparator += 1
        if not result.outcome_consistent:
            self.inconsistent_sequences += 1

    def add_batch(self, arrays) -> None:
        """Record a whole batch from its columnar outcome.

        The array form of folding one
        :class:`~repro.validation.testbench.BatchSequenceResult` per
        sequence: the state-domain comparator's verdict is
        ``state_intact``, and a mismatching sequence is *consistent*
        only when the monitor flagged it uncorrectable -- the same
        rules as ``BatchSequenceResult``'s properties, applied as mask
        algebra.
        """
        self.stats.add_batch(arrays)
        mismatch = ~arrays.state_intact
        self.errors_reported_by_dut += int(arrays.detected.sum())
        self.mismatches_reported_by_comparator += int(mismatch.sum())
        self.inconsistent_sequences += int(
            (mismatch & ~(arrays.detected & arrays.uncorrectable)).sum())

    def merge(self, other: "StreamingCampaignResult"
              ) -> "StreamingCampaignResult":
        """Add another shard's counters into this one (in place)."""
        self.stats.merge(other.stats)
        self.errors_reported_by_dut += other.errors_reported_by_dut
        self.mismatches_reported_by_comparator += (
            other.mismatches_reported_by_comparator)
        self.inconsistent_sequences += other.inconsistent_sequences
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe) for checkpoints."""
        return {
            "stats": self.stats.to_dict(),
            "errors_reported_by_dut": self.errors_reported_by_dut,
            "mismatches_reported_by_comparator":
                self.mismatches_reported_by_comparator,
            "inconsistent_sequences": self.inconsistent_sequences,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StreamingCampaignResult":
        """Rebuild the counters from :meth:`to_dict` output."""
        return cls(
            stats=StreamingCampaignStats.from_dict(payload["stats"]),
            errors_reported_by_dut=int(payload["errors_reported_by_dut"]),
            mismatches_reported_by_comparator=int(
                payload["mismatches_reported_by_comparator"]),
            inconsistent_sequences=int(payload["inconsistent_sequences"]))

    def summary(self) -> str:
        """Human-readable campaign summary (same layout as the legacy
        ``CampaignResult.summary``)."""
        lines = [
            self.stats.summary(),
            f"errors reported by DUT   : {self.errors_reported_by_dut}",
            "comparator mismatches    : "
            f"{self.mismatches_reported_by_comparator}",
            f"inconsistent sequences   : {self.inconsistent_sequences}",
        ]
        return "\n".join(lines)


__all__ = [
    "InjectionRecord",
    "StreamingCampaignStats",
    "StreamingCampaignResult",
    "injection_record_from_sequence",
]
