"""Checkpoint layer: durable, resumable campaign state.

A :class:`CheckpointStore` owns everything about the JSON checkpoint
file that the runner used to do inline: header validation (a resume
refuses a file from a different campaign identity), atomic replacement
(a reader never observes a torn file), and the **save-interval policy**
-- completed chunks are buffered and the full payload is rewritten only
every ``save_interval`` completions plus one final flush.  The
historical write-after-every-chunk behaviour (``save_interval=1``)
rewrote the whole growing payload per chunk, O(chunks^2) bytes over a
campaign; at interval ``k`` that drops by a factor of ``k``, and the
worst case lost to a hard crash is bounded by ``k`` chunks of work.

The file format itself is unchanged from the inline implementation
(``CHECKPOINT_FORMAT`` 1): a header of the campaign identity plus a
``completed`` mapping of chunk index to serialized counters.  Format
bump rules stay with the tasks -- a task field added to
``fingerprint()`` invalidates old checkpoints without a format bump.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Callable, Dict, Optional

#: JSON checkpoint schema version.
CHECKPOINT_FORMAT = 1


def _fingerprint_fields(fingerprint: Any) -> Optional[Dict[str, str]]:
    """Parse a dataclass-repr task fingerprint into ``{field: value}``.

    Task fingerprints are dataclass reprs
    (``Task(width=32, codes=('a', 'b'), ...)``); splitting happens at
    top-level commas only (bracket/quote aware).  Returns ``None`` for
    anything that does not look like one -- custom tasks may fingerprint
    differently, and the caller then falls back to the generic message.
    """
    if not isinstance(fingerprint, str):
        return None
    start = fingerprint.find("(")
    if start <= 0 or not fingerprint.endswith(")"):
        return None
    body = fingerprint[start + 1:-1]
    fields: Dict[str, str] = {}
    depth = 0
    quote = None
    token_start = 0
    tokens = []
    for i, ch in enumerate(body):
        if quote is not None:
            if ch == quote and body[i - 1] != "\\":
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            tokens.append(body[token_start:i])
            token_start = i + 1
    tokens.append(body[token_start:])
    for token in tokens:
        token = token.strip()
        if not token:
            continue
        name, eq, value = token.partition("=")
        if not eq or not name.isidentifier():
            return None
        fields[name] = value
    return fields


def _describe_task_mismatch(old: Any, new: Any) -> Optional[str]:
    """Name the task-fingerprint fields that differ between a stored
    checkpoint and the running campaign (``None`` when unparseable)."""
    old_fields = _fingerprint_fields(old)
    new_fields = _fingerprint_fields(new)
    if old_fields is None or new_fields is None:
        return None
    added = sorted(set(new_fields) - set(old_fields))
    removed = sorted(set(old_fields) - set(new_fields))
    changed = sorted(name for name in set(old_fields) & set(new_fields)
                     if old_fields[name] != new_fields[name])
    parts = []
    if added:
        parts.append(
            f"task field(s) new in this version: {', '.join(added)} "
            f"(the checkpoint predates them)")
    if removed:
        parts.append(
            f"task field(s) no longer present: {', '.join(removed)}")
    if changed:
        parts.append("task field(s) with different values: " + ", ".join(
            f"{name}: {old_fields[name]} -> {new_fields[name]}"
            for name in changed))
    return "; ".join(parts) if parts else None


class CheckpointStore:
    """Owns one campaign's checkpoint file (or none).

    Parameters
    ----------
    path:
        Checkpoint file path; ``None`` makes every method a no-op, so
        callers need no conditional plumbing.
    save_interval:
        Completed chunks buffered between payload rewrites.  ``1``
        reproduces the historical write-per-chunk behaviour;  larger
        intervals trade a bounded amount of re-run work after a hard
        crash for dramatically less IO on many-chunk campaigns.
        :meth:`flush` (called by the runner on normal completion *and*
        on the way out of a failed run) persists any partial interval,
        so an orderly interruption loses nothing.
    """

    def __init__(self, path: Optional[str], save_interval: int = 1):
        if save_interval < 1:
            raise ValueError("save_interval must be >= 1")
        self.path = path
        self.save_interval = save_interval
        self._header: Dict[str, Any] = {}
        self._completed: Dict[int, Any] = {}
        self._unsaved = 0

    # -- reading -------------------------------------------------------
    def load_payload(self) -> Optional[Dict[str, Any]]:
        """The raw JSON payload of an existing file, or ``None``."""
        if self.path is None or not os.path.exists(self.path):
            return None
        with open(self.path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    @staticmethod
    def validate(payload: Dict[str, Any],
                 header: Dict[str, Any]) -> None:
        """Refuse a payload whose header fields disagree with ours.

        A ``task`` fingerprint mismatch is the common upgrade hazard (a
        new task field -- e.g. ``summary_path`` in PR 8 -- changes the
        fingerprint of every pre-existing checkpoint), so the error
        names the exact task fields that were added, removed or changed
        rather than just saying "task".
        """
        mismatched = [key for key, value in header.items()
                      if payload.get(key) != value]
        if mismatched:
            detail = ""
            if "task" in mismatched:
                described = _describe_task_mismatch(
                    payload.get("task"), header["task"])
                if described:
                    detail = f"; {described}"
            raise ValueError(
                f"does not match this campaign "
                f"(stale fields: {', '.join(sorted(mismatched))}"
                f"{detail}); delete the file to start over, or re-run "
                f"with the original campaign parameters")

    @staticmethod
    def restore_completed(payload: Dict[str, Any],
                          result_from_dict: Callable[[Dict[str, Any]], Any]
                          ) -> Dict[int, Any]:
        """Rebuild the completed-chunk results of a payload."""
        return {int(index): result_from_dict(result)
                for index, result in payload.get("completed", {}).items()}

    # -- writing -------------------------------------------------------
    def attach(self, header: Dict[str, Any],
               completed: Dict[int, Any]) -> None:
        """Adopt the campaign header and the live completed dict.

        The store keeps a reference to ``completed`` (the runner keeps
        appending to the same dict), so a flush always persists the
        freshest state.
        """
        self._header = dict(header)
        self._completed = completed
        self._unsaved = 0

    def record(self, index: int, result: Any) -> None:
        """Note one newly completed chunk; flush on a full interval."""
        self._completed[index] = result
        if self.path is None:
            return
        self._unsaved += 1
        if self._unsaved >= self.save_interval:
            self.flush()

    @property
    def unsaved_chunks(self) -> int:
        """Completed chunks not yet persisted (0 with no path)."""
        return self._unsaved

    def flush(self) -> None:
        """Atomically rewrite the payload if anything is unsaved."""
        if self.path is None or self._unsaved == 0:
            return
        self.write(self._header, self._completed)
        self._unsaved = 0

    def write(self, header: Dict[str, Any],
              completed: Dict[int, Any]) -> None:
        """Unconditionally write one payload (atomic replace)."""
        if self.path is None:
            return
        payload = dict(header)
        payload["completed"] = {str(index): result.to_dict()
                                for index, result in completed.items()}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


__all__ = ["CHECKPOINT_FORMAT", "CheckpointStore"]
