"""Sharded, chunked campaign execution with checkpoint/resume.

The paper's validation campaigns run 10^8 test sequences; the sharded
runner brings the software reproduction toward that scale by splitting
a campaign into fixed-size **chunks** and fanning the chunks out over
an executor.  Since the plan/executor/checkpoint decomposition, this
module is a thin **facade**: the actual mechanics live in one layer
each --

* :mod:`repro.campaigns.plan` -- the deterministic chunk plan, pure
  immutable data derived from ``(root_seed, total_sequences,
  chunk_size)`` alone (never the worker count), which is why the
  merged statistics are **bit-identical for any executor and any
  number of workers**;
* :mod:`repro.campaigns.executors` -- where chunks run: inline,
  thread pool, or process pool (tasks pickled once per worker), with
  failures wrapped as :class:`~repro.campaigns.executors.\
ChunkExecutionError` naming the chunk that died;
* :mod:`repro.campaigns.checkpoints` -- the JSON checkpoint: header
  validation, atomic replace, and the ``save_interval`` flush policy
  (plus a final flush -- also on the way out of a failed run, so a
  fixed run resumes from everything that completed);
* :mod:`repro.campaigns.scheduler` -- many campaigns multiplexed
  fair-share over one shared executor, with result memoization.

Work is described by a :class:`CampaignTask`: a small picklable object
that knows how to run one chunk from one chunk seed.  Tasks build
their (unpicklable) simulation state -- test benches, protected
designs -- inside ``run_chunk``, in the worker process.

:class:`ShardedCampaignRunner` keeps its historical constructor and
``run()`` semantics (existing callers are untouched); ``executor=``
and ``save_interval=`` opt into the new layers explicitly.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.campaigns.checkpoints import CHECKPOINT_FORMAT, CheckpointStore
from repro.campaigns.executors import (
    ChunkExecutionError,
    ChunkExecutor,
    resolve_executor,
)
from repro.campaigns.plan import (
    ChunkPlan,
    default_chunk_size,
    resolve_chunk_size,
)
from repro.campaigns.seeding import child_seed


class CampaignTask:
    """Picklable description of a campaign's unit of work.

    Subclasses implement :meth:`run_chunk` and :meth:`empty_result`;
    results must be mergeable counter objects exposing ``merge``,
    ``to_dict`` and a ``from_dict`` classmethod (see
    :mod:`repro.campaigns.stats`).  Keep task fields down to plain
    primitives so the task pickles cheaply to worker processes; any
    heavyweight simulation state belongs inside :meth:`run_chunk`.
    """

    def run_chunk(self, chunk_seed: int, num_sequences: int) -> Any:
        """Run ``num_sequences`` sequences seeded from ``chunk_seed``."""
        raise NotImplementedError

    def build_worker_state(self) -> Any:
        """Seed-independent heavy state reused across chunks.

        The warm executors call this once per ``(worker,
        fingerprint())`` and memoize the result in a
        :class:`~repro.campaigns.worker_cache.WorkerStateCache`; the
        state is then passed to every :meth:`run_chunk_warm` call that
        worker serves for this task.  Only **seed-independent** work
        belongs here (circuit construction, engine instances, LUTs,
        kernel warm-up) -- anything derived from a chunk seed must stay
        in ``run_chunk_warm`` or warm results diverge from cold ones.
        The default returns ``None``: tasks without a warm path run
        unchanged (``run_chunk_warm`` falls back to :meth:`run_chunk`).
        """
        return None

    def run_chunk_warm(self, state: Any, chunk_seed: int,
                       num_sequences: int) -> Any:
        """Run one chunk against prebuilt worker ``state``.

        Must be bit-identical to ``run_chunk(chunk_seed,
        num_sequences)`` for any prior use of ``state`` -- including a
        previous chunk that raised mid-flight -- which in practice
        means re-deriving every random stream from ``chunk_seed`` and
        restoring any mutated simulation state before running.  The
        default ignores ``state`` and delegates to :meth:`run_chunk`.
        """
        return self.run_chunk(chunk_seed, num_sequences)

    def empty_result(self) -> Any:
        """A zero-valued result object (the merge identity)."""
        raise NotImplementedError

    def result_from_dict(self, payload: Dict[str, Any]) -> Any:
        """Rebuild one chunk result from its checkpointed dict form."""
        return type(self.empty_result()).from_dict(payload)

    def fingerprint(self) -> str:
        """Identity string stored in checkpoints and cache keys.

        A resumed run refuses a checkpoint whose fingerprint differs,
        and the scheduler's result cache keys on it, so statistics
        from one campaign configuration are never merged into (or
        served for) another.  Dataclass tasks get a faithful default
        from ``repr``.
        """
        return repr(self)

    def chunk_granularity(self) -> int:
        """Preferred multiple for the runner's *default* chunk size.

        Tasks whose chunks have internal structure (e.g. bit-plane
        batches of ``batch_size`` sequences) return that size here, and
        the runner rounds its default chunk size up to a multiple of it
        -- otherwise a small campaign's default ~total/64 chunks would
        silently truncate every batch.  An explicitly passed
        ``chunk_size`` is always respected as-is.
        """
        return 1


@dataclass(frozen=True)
class CampaignProgress:
    """Progress snapshot passed to the runner's callback.

    ``elapsed`` and ``sequences_restored`` are filled in by the parent
    process (no worker cooperation involved): ``elapsed`` is wall time
    since ``run()`` started, and restored-from-checkpoint sequences are
    excluded from the throughput estimate so a resumed campaign does
    not report an impossible rate.

    ``setup_seconds``/``compute_seconds`` are the campaign's cumulative
    worker-side setup-vs-compute split, reported by executors that
    expose per-chunk timing (the warm persistent executors; see
    :class:`~repro.campaigns.worker_cache.ChunkTiming`).  On a warm
    pool, ``setup_seconds`` stops growing once every worker has built
    the task's state -- that plateau is the amortization being
    observable.  Executors without timing leave both at ``0.0``.
    """

    chunk_index: int
    chunks_completed: int
    num_chunks: int
    sequences_completed: int
    total_sequences: int
    from_checkpoint: bool = False
    elapsed: float = 0.0
    sequences_restored: int = 0
    setup_seconds: float = 0.0
    compute_seconds: float = 0.0

    @property
    def fraction(self) -> float:
        """Completed fraction of the campaign, in [0, 1]."""
        return self.sequences_completed / self.total_sequences

    @property
    def sequences_per_second(self) -> float:
        """Throughput of *this run* (checkpoint-restored work excluded)."""
        executed = self.sequences_completed - self.sequences_restored
        if self.elapsed <= 0.0 or executed <= 0:
            return 0.0
        return executed / self.elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion, or ``None`` before any
        throughput signal exists."""
        rate = self.sequences_per_second
        if rate <= 0.0:
            return None
        return (self.total_sequences - self.sequences_completed) / rate


ProgressCallback = Callable[[CampaignProgress], None]


class ShardedCampaignRunner:
    """Fan one campaign out over an executor, deterministically.

    Parameters
    ----------
    task:
        The :class:`CampaignTask` describing one chunk's work.
    total_sequences:
        Campaign size in test sequences.
    seed:
        Campaign root seed (int or str).  Chunk seeds are spawned from
        it via :mod:`repro.campaigns.seeding`; equal ``(seed,
        total_sequences, chunk_size)`` triples give bit-identical
        results for **any** ``num_workers`` and any executor.  ``None``
        draws a random root (recorded in the checkpoint so a resume
        stays coherent).
    num_workers:
        Worker count; ``1`` runs inline (no pool), which is also the
        fallback when only one chunk is pending.
    chunk_size:
        Sequences per chunk; defaults to
        :func:`~repro.campaigns.plan.default_chunk_size` rounded to the
        task's granularity.  This is the determinism granularity *and*
        the checkpoint granularity -- do not change it between a run
        and its resume.
    checkpoint_path:
        Optional JSON file owned by a
        :class:`~repro.campaigns.checkpoints.CheckpointStore`.  An
        existing file is validated against the campaign parameters and
        its chunks are not re-run.
    progress_callback:
        Called in the parent after each chunk with a
        :class:`CampaignProgress` (including elapsed/rate/ETA fields).
    start_method:
        ``multiprocessing`` start method for the default process
        executor; default prefers ``fork`` and falls back to ``spawn``.
    executor:
        ``None`` (historical behaviour: inline for one worker,
        processes otherwise), an
        :data:`~repro.campaigns.executors.EXECUTOR_KINDS` string sized
        by ``num_workers``, or a
        :class:`~repro.campaigns.executors.ChunkExecutor` instance.
    save_interval:
        Checkpoint flush policy: rewrite the payload every this many
        completed chunks (default 1, the historical write-per-chunk
        behaviour) plus one final flush.  See
        :class:`~repro.campaigns.checkpoints.CheckpointStore`.
    """

    def __init__(self, task: CampaignTask, total_sequences: int,
                 seed: Optional[Union[int, str]] = None,
                 num_workers: int = 1,
                 chunk_size: Optional[int] = None,
                 checkpoint_path: Optional[str] = None,
                 progress_callback: Optional[ProgressCallback] = None,
                 start_method: Optional[str] = None,
                 executor: "ChunkExecutor | str | None" = None,
                 save_interval: int = 1):
        if total_sequences <= 0:
            raise ValueError("the campaign needs at least one sequence")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if save_interval < 1:
            raise ValueError("save_interval must be >= 1")
        self.task = task
        self.total_sequences = total_sequences
        self.num_workers = num_workers
        self.chunk_size = resolve_chunk_size(
            total_sequences, chunk_size,
            granularity=max(1, task.chunk_granularity()))
        self.checkpoint_path = checkpoint_path
        self.progress_callback = progress_callback
        self.save_interval = save_interval
        self._start_method = start_method
        self._executor_spec = executor
        self._seed = seed
        self._root = self._resolve_root(seed)

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_root(seed: Optional[Union[int, str]]) -> Union[int, str]:
        if seed is None:
            return random.SystemRandom().getrandbits(64)
        return seed

    @property
    def root_seed(self) -> Union[int, str]:
        """The effective campaign root seed (drawn when ``seed=None``)."""
        return self._root

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the campaign plan."""
        return math.ceil(self.total_sequences / self.chunk_size)

    def plan(self) -> ChunkPlan:
        """The campaign's :class:`~repro.campaigns.plan.ChunkPlan`."""
        return ChunkPlan.build(self._root, self.total_sequences,
                               self.chunk_size)

    def plan_chunks(self) -> List[Tuple[int, int, int]]:
        """The deterministic chunk plan: ``(index, chunk_seed, count)``.

        Only the final chunk may be short.  The plan is a pure function
        of ``(root_seed, total_sequences, chunk_size)``; see
        :class:`~repro.campaigns.plan.ChunkPlan`.
        """
        return list(self.plan().entries)

    def executor(self) -> ChunkExecutor:
        """The resolved chunk executor this runner fans out over."""
        return resolve_executor(self._executor_spec, self.num_workers,
                                start_method=self._start_method)

    # -- checkpointing --------------------------------------------------
    def _checkpoint_header(self) -> Dict[str, Any]:
        return {
            "format": CHECKPOINT_FORMAT,
            "total_sequences": self.total_sequences,
            "chunk_size": self.chunk_size,
            "root_seed": self._root,
            "task": self.task.fingerprint(),
        }

    def _restore(self, store: CheckpointStore) -> Dict[int, Any]:
        """Load, validate and adopt an existing checkpoint, if any."""
        payload = store.load_payload()
        if payload is None:
            return {}
        if self._seed is None:
            # Adopt the recorded root so the resumed plan matches.
            self._root = payload.get("root_seed", self._root)
        try:
            store.validate(payload, self._checkpoint_header())
        except ValueError as exc:
            raise ValueError(
                f"checkpoint {store.path!r} {exc}") from None
        return store.restore_completed(payload, self.task.result_from_dict)

    # -- execution ------------------------------------------------------
    def run(self) -> Any:
        """Execute the campaign and return the merged statistics."""
        store = CheckpointStore(self.checkpoint_path,
                                save_interval=self.save_interval)
        completed = self._restore(store)
        plan = self.plan()
        counts = plan.counts()
        unknown = set(completed) - set(counts)
        if unknown:
            raise ValueError(
                f"checkpoint contains chunks outside the campaign plan: "
                f"{sorted(unknown)}")
        store.attach(self._checkpoint_header(), completed)
        restored = sum(counts[i] for i in completed)
        started = time.perf_counter()
        # Cumulative worker-side setup/compute split, accumulated from
        # executors that report per-chunk timing (the warm pools).
        timing = {"setup": 0.0, "compute": 0.0}

        def emit(chunk_index: int, from_checkpoint: bool = False) -> None:
            if self.progress_callback is None:
                return
            self.progress_callback(CampaignProgress(
                chunk_index=chunk_index,
                chunks_completed=len(completed),
                num_chunks=plan.num_chunks,
                sequences_completed=sum(counts[i] for i in completed),
                total_sequences=self.total_sequences,
                from_checkpoint=from_checkpoint,
                elapsed=time.perf_counter() - started,
                sequences_restored=restored,
                setup_seconds=timing["setup"],
                compute_seconds=timing["compute"]))

        if completed:
            emit(max(completed), from_checkpoint=True)
        if len(completed) < plan.num_chunks:
            executor = self.executor()
            # Executors this runner resolved from a spec (None or a
            # kind string) are this runner's to tear down; a pre-built
            # instance belongs to the caller, who may be keeping its
            # pool warm across many runs.
            owns_executor = (self._executor_spec is None
                             or isinstance(self._executor_spec, str))
            try:
                for index, result in executor.submit(
                        plan.iter_pending(completed), self.task):
                    chunk_timing = getattr(executor, "last_chunk_timing",
                                           None)
                    if chunk_timing is not None:
                        timing["setup"] += chunk_timing.setup_seconds
                        timing["compute"] += chunk_timing.compute_seconds
                    store.record(index, result)
                    emit(index)
            finally:
                # Persist any partial interval -- on success, failure
                # (ChunkExecutionError) and interruption alike, so a
                # fixed run resumes from everything that completed.
                store.flush()
                if owns_executor and hasattr(executor, "close"):
                    executor.close()

        merged = self.task.empty_result()
        for index in sorted(completed):
            merged.merge(completed[index])
        return merged


__all__ = [
    "CampaignTask",
    "CampaignProgress",
    "ChunkExecutionError",
    "ShardedCampaignRunner",
    "default_chunk_size",
    "child_seed",
]
