"""Sharded, chunked campaign execution with checkpoint/resume.

The paper's validation campaigns run 10^8 test sequences; the sharded
runner brings the software reproduction toward that scale by splitting
a campaign into fixed-size **chunks** and fanning the chunks out over
``multiprocessing`` workers:

* the chunk plan (boundaries and per-chunk seeds, derived with
  :func:`repro.campaigns.seeding.spawn_seeds`) depends only on the
  campaign's total size, chunk size and root seed -- never on the
  worker count -- and the streamed statistics merge by integer
  addition, so the final result is **bit-identical for any number of
  workers**;
* each completed chunk's statistics are appended to an optional JSON
  **checkpoint** (written atomically), so an interrupted campaign
  resumes from the last completed chunk instead of restarting;
* a **progress callback** fires in the parent process after every
  chunk, carrying completed/total sequence counts;
* the per-chunk results are O(1)-size counter objects
  (:mod:`repro.campaigns.stats`), so resident memory stays flat no
  matter how many sequences the campaign runs.

Work is described by a :class:`CampaignTask`: a small picklable object
that knows how to run one chunk from one chunk seed.  Tasks build
their (unpicklable) simulation state -- test benches, protected
designs -- inside ``run_chunk``, in the worker process.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import random
import sys
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaigns.seeding import child_seed, spawn_seeds

#: JSON checkpoint schema version.
CHECKPOINT_FORMAT = 1


class CampaignTask:
    """Picklable description of a campaign's unit of work.

    Subclasses implement :meth:`run_chunk` and :meth:`empty_result`;
    results must be mergeable counter objects exposing ``merge``,
    ``to_dict`` and a ``from_dict`` classmethod (see
    :mod:`repro.campaigns.stats`).  Keep task fields down to plain
    primitives so the task pickles cheaply to worker processes; any
    heavyweight simulation state belongs inside :meth:`run_chunk`.
    """

    def run_chunk(self, chunk_seed: int, num_sequences: int) -> Any:
        """Run ``num_sequences`` sequences seeded from ``chunk_seed``."""
        raise NotImplementedError

    def empty_result(self) -> Any:
        """A zero-valued result object (the merge identity)."""
        raise NotImplementedError

    def result_from_dict(self, payload: Dict[str, Any]) -> Any:
        """Rebuild one chunk result from its checkpointed dict form."""
        return type(self.empty_result()).from_dict(payload)

    def fingerprint(self) -> str:
        """Identity string stored in checkpoints.

        A resumed run refuses a checkpoint whose fingerprint differs,
        so statistics from one campaign configuration are never merged
        into another.  Dataclass tasks get a faithful default from
        ``repr``.
        """
        return repr(self)

    def chunk_granularity(self) -> int:
        """Preferred multiple for the runner's *default* chunk size.

        Tasks whose chunks have internal structure (e.g. bit-plane
        batches of ``batch_size`` sequences) return that size here, and
        the runner rounds its default chunk size up to a multiple of it
        -- otherwise a small campaign's default ~total/64 chunks would
        silently truncate every batch.  An explicitly passed
        ``chunk_size`` is always respected as-is.
        """
        return 1


@dataclass(frozen=True)
class CampaignProgress:
    """Progress snapshot passed to the runner's callback."""

    chunk_index: int
    chunks_completed: int
    num_chunks: int
    sequences_completed: int
    total_sequences: int
    from_checkpoint: bool = False

    @property
    def fraction(self) -> float:
        """Completed fraction of the campaign, in [0, 1]."""
        return self.sequences_completed / self.total_sequences


ProgressCallback = Callable[[CampaignProgress], None]


def default_chunk_size(total_sequences: int) -> int:
    """Default chunk size: ~64 chunks per campaign.

    Depends only on the total sequence count (worker-count independent,
    as required for determinism) and keeps enough chunks in flight to
    load-balance a typical worker pool while amortising per-chunk
    test-bench construction.
    """
    return max(1, math.ceil(total_sequences / 64))


def _run_chunk_job(job: Tuple[CampaignTask, int, int, int]
                   ) -> Tuple[int, int, Any]:
    """Worker-side entry point: run one chunk, return its result."""
    task, index, chunk_seed, count = job
    return index, count, task.run_chunk(chunk_seed, count)


def _init_worker(parent_sys_path: List[str]) -> None:
    """Make spawned workers see the parent's import path.

    With the ``spawn`` start method a fresh interpreter imports this
    module from scratch; when the parent runs from a source checkout
    (``sys.path`` patched by conftest rather than PYTHONPATH), the
    child needs the same entries to unpickle the task.
    """
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


class ShardedCampaignRunner:
    """Fan a campaign out over processes, deterministically.

    Parameters
    ----------
    task:
        The :class:`CampaignTask` describing one chunk's work.
    total_sequences:
        Campaign size in test sequences.
    seed:
        Campaign root seed (int or str).  Chunk seeds are spawned from
        it via :mod:`repro.campaigns.seeding`; equal ``(seed,
        total_sequences, chunk_size)`` triples give bit-identical
        results for **any** ``num_workers``.  ``None`` draws a random
        root (recorded in the checkpoint so a resume stays coherent).
    num_workers:
        Process count; ``1`` runs inline (no multiprocessing), which is
        also the fallback when only one chunk is pending.
    chunk_size:
        Sequences per chunk; defaults to :func:`default_chunk_size`.
        This is the determinism granularity *and* the checkpoint
        granularity -- do not change it between a run and its resume.
    checkpoint_path:
        Optional JSON file; every completed chunk's counters are
        appended (atomic replace).  An existing file is validated
        against the campaign parameters and its chunks are not re-run.
    progress_callback:
        Called in the parent after each chunk with a
        :class:`CampaignProgress`.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap, inherits ``sys.path``) and falls back to ``spawn``.
    """

    def __init__(self, task: CampaignTask, total_sequences: int,
                 seed: Optional[Union[int, str]] = None,
                 num_workers: int = 1,
                 chunk_size: Optional[int] = None,
                 checkpoint_path: Optional[str] = None,
                 progress_callback: Optional[ProgressCallback] = None,
                 start_method: Optional[str] = None):
        if total_sequences <= 0:
            raise ValueError("the campaign needs at least one sequence")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.task = task
        self.total_sequences = total_sequences
        self.num_workers = num_workers
        if chunk_size is not None:
            self.chunk_size = chunk_size
        else:
            granularity = max(1, task.chunk_granularity())
            base = default_chunk_size(total_sequences)
            self.chunk_size = math.ceil(base / granularity) * granularity
        self.checkpoint_path = checkpoint_path
        self.progress_callback = progress_callback
        self._start_method = start_method
        self._seed = seed
        self._root = self._resolve_root(seed)

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_root(seed: Optional[Union[int, str]]) -> Union[int, str]:
        if seed is None:
            return random.SystemRandom().getrandbits(64)
        return seed

    @property
    def root_seed(self) -> Union[int, str]:
        """The effective campaign root seed (drawn when ``seed=None``)."""
        return self._root

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the campaign plan."""
        return math.ceil(self.total_sequences / self.chunk_size)

    def plan_chunks(self) -> List[Tuple[int, int, int]]:
        """The deterministic chunk plan: ``(index, chunk_seed, count)``.

        Only the final chunk may be short.  The plan is a pure function
        of ``(root_seed, total_sequences, chunk_size)``.
        """
        seeds = spawn_seeds(self._root, self.num_chunks, "chunk")
        plan = []
        remaining = self.total_sequences
        for index, seed in enumerate(seeds):
            count = min(self.chunk_size, remaining)
            plan.append((index, seed, count))
            remaining -= count
        return plan

    # -- checkpointing --------------------------------------------------
    def _checkpoint_header(self) -> Dict[str, Any]:
        return {
            "format": CHECKPOINT_FORMAT,
            "total_sequences": self.total_sequences,
            "chunk_size": self.chunk_size,
            "root_seed": self._root,
            "task": self.task.fingerprint(),
        }

    def _load_checkpoint(self) -> Dict[int, Any]:
        """Return previously completed chunk results, keyed by index."""
        path = self.checkpoint_path
        if path is None or not os.path.exists(path):
            return {}
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        header = self._checkpoint_header()
        if self._seed is None:
            # Adopt the recorded root so the resumed plan matches.
            self._root = payload.get("root_seed", self._root)
            header = self._checkpoint_header()
        mismatched = [key for key, value in header.items()
                      if payload.get(key) != value]
        if mismatched:
            raise ValueError(
                f"checkpoint {path!r} does not match this campaign "
                f"(stale fields: {', '.join(sorted(mismatched))}); "
                f"delete the file to start over")
        return {int(index): self.task.result_from_dict(result)
                for index, result in payload.get("completed", {}).items()}

    def _save_checkpoint(self, completed: Dict[int, Any]) -> None:
        path = self.checkpoint_path
        if path is None:
            return
        payload = self._checkpoint_header()
        payload["completed"] = {str(index): result.to_dict()
                                for index, result in completed.items()}
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    # -- execution ------------------------------------------------------
    def _emit_progress(self, chunk_index: int, completed: Dict[int, Any],
                       counts: Dict[int, int],
                       from_checkpoint: bool = False) -> None:
        if self.progress_callback is None:
            return
        self.progress_callback(CampaignProgress(
            chunk_index=chunk_index,
            chunks_completed=len(completed),
            num_chunks=self.num_chunks,
            sequences_completed=sum(counts[i] for i in completed),
            total_sequences=self.total_sequences,
            from_checkpoint=from_checkpoint))

    def _pool_context(self):
        method = self._start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        return multiprocessing.get_context(method)

    def run(self) -> Any:
        """Execute the campaign and return the merged statistics."""
        completed = self._load_checkpoint()
        plan = self.plan_chunks()
        counts = {index: count for index, _, count in plan}
        unknown = set(completed) - set(counts)
        if unknown:
            raise ValueError(
                f"checkpoint contains chunks outside the campaign plan: "
                f"{sorted(unknown)}")
        if completed:
            self._emit_progress(max(completed), completed, counts,
                                from_checkpoint=True)
        pending = [chunk for chunk in plan if chunk[0] not in completed]

        if self.num_workers == 1 or len(pending) <= 1:
            for index, seed, count in pending:
                result = self.task.run_chunk(seed, count)
                completed[index] = result
                self._save_checkpoint(completed)
                self._emit_progress(index, completed, counts)
        elif pending:
            jobs = [(self.task, index, seed, count)
                    for index, seed, count in pending]
            context = self._pool_context()
            workers = min(self.num_workers, len(jobs))
            with context.Pool(workers, initializer=_init_worker,
                              initargs=(list(sys.path),)) as pool:
                for index, _, result in pool.imap_unordered(
                        _run_chunk_job, jobs):
                    completed[index] = result
                    self._save_checkpoint(completed)
                    self._emit_progress(index, completed, counts)

        merged = self.task.empty_result()
        for index in sorted(completed):
            merged.merge(completed[index])
        return merged


__all__ = [
    "CampaignTask",
    "CampaignProgress",
    "ShardedCampaignRunner",
    "default_chunk_size",
    "child_seed",
]
