"""Executor layer: strategies for turning plan entries into results.

A :class:`ChunkExecutor` consumes :class:`~repro.campaigns.plan.\
ChunkPlanEntry` values and yields ``(index, result)`` pairs as chunks
complete -- in any order, because the merge is index-sorted downstream.
Executors own *where* chunks run and nothing else: the plan layer has
already fixed every seed and boundary, so any executor at any
concurrency produces bit-identical merged statistics for the same plan.

Three implementations ship:

* :class:`SerialExecutor` -- inline in the calling thread; the
  ``num_workers == 1`` path and the degenerate single-chunk fallback.
* :class:`ThreadExecutor` -- a ``concurrent.futures`` thread pool.
  Useful when chunk work releases the GIL (numpy kernels in the simd
  engine) and for the campaign service's many-small-interactive-jobs
  regime, where process fan-out overhead dominates tiny jobs.
* :class:`ProcessExecutor` -- ``multiprocessing`` fan-out.  Each
  worker receives the task table **once**, through the pool
  initializer, instead of a task copy pickled into every job tuple;
  job tuples carry only ``(position, slot, index, seed, count)``.

Chunk failures surface as :class:`ChunkExecutionError` carrying the
failing chunk's index, seed and count (plus the worker traceback for
process pools), so a 10^7-sequence campaign names the chunk that died
and a resume can re-run exactly that work.

The scheduler-facing entry point is :meth:`ChunkExecutorBase.\
submit_jobs`, which multiplexes entries from *several* tasks over one
executor; :meth:`~ChunkExecutorBase.submit` is the single-task
convenience defined in terms of it.
"""

from __future__ import annotations

import multiprocessing
import sys
import traceback
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.campaigns.plan import ChunkPlanEntry

try:  # pragma: no cover - typing nicety only
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]

#: A scheduler job: an opaque tag, the plan entry to run, and the task
#: that runs it.  Tags come back attached to results so the caller can
#: route completions to the right campaign.
TaggedJob = Tuple[Any, ChunkPlanEntry, Any]


class ChunkExecutionError(RuntimeError):
    """A chunk of campaign work failed.

    Carries the failing chunk's plan coordinates -- ``chunk_index``,
    ``chunk_seed``, ``count`` -- so a failed multi-hour campaign says
    *which* chunk died (and therefore which seed reproduces the crash
    in isolation), plus ``worker_traceback`` when the failure happened
    in a worker process whose live traceback cannot cross the pickle
    boundary.  The original exception is chained as ``__cause__`` when
    it is available in-process.
    """

    def __init__(self, chunk_index: int, chunk_seed: int, count: int,
                 message: str,
                 worker_traceback: Optional[str] = None):
        detail = (f"chunk {chunk_index} (seed={chunk_seed}, "
                  f"count={count}) failed: {message}")
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)
        self.chunk_index = chunk_index
        self.chunk_seed = chunk_seed
        self.count = count
        self.worker_traceback = worker_traceback

    @classmethod
    def wrap(cls, entry: ChunkPlanEntry,
             exc: BaseException) -> "ChunkExecutionError":
        """Wrap an in-process exception, preserving it as the cause."""
        error = cls(entry.index, entry.chunk_seed, entry.count,
                    f"{type(exc).__name__}: {exc}")
        error.__cause__ = exc
        return error


class ChunkExecutor(Protocol):
    """Protocol of the executor layer.

    ``submit`` runs one task's plan entries and yields ``(index,
    result)`` pairs as they complete (any order); implementations that
    also support :meth:`ChunkExecutorBase.submit_jobs` can serve the
    multi-campaign scheduler.  Failures are raised as
    :class:`ChunkExecutionError` from the consuming iterator.
    """

    def submit(self, entries: Sequence[ChunkPlanEntry],
               task: Any) -> Iterator[Tuple[int, Any]]:
        ...


class ChunkExecutorBase:
    """Shared plumbing: ``submit`` in terms of ``submit_jobs``."""

    def submit(self, entries: Sequence[ChunkPlanEntry],
               task: Any) -> Iterator[Tuple[int, Any]]:
        """Run one task's entries; yield ``(index, result)`` pairs."""
        for _, index, result in self.submit_jobs(
                [(None, entry, task) for entry in entries]):
            yield index, result

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        """Run tagged ``(tag, entry, task)`` jobs; yield ``(tag, index,
        result)`` as chunks complete."""
        raise NotImplementedError


def _run_entry(task: Any, entry: ChunkPlanEntry) -> Any:
    """Run one entry in-process, wrapping failures."""
    try:
        return task.run_chunk(entry.chunk_seed, entry.count)
    except ChunkExecutionError:
        raise
    except Exception as exc:
        raise ChunkExecutionError.wrap(entry, exc) from exc


class SerialExecutor(ChunkExecutorBase):
    """Run every chunk inline, in submission order."""

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        for tag, entry, task in jobs:
            yield tag, entry.index, _run_entry(task, entry)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadExecutor(ChunkExecutorBase):
    """Fan chunks out over a thread pool.

    Threads share the interpreter, so this pays no pickling or process
    start-up cost; it overlaps real work only where the chunk's inner
    loop releases the GIL (numpy kernels) or blocks on IO.  Jobs are
    dispatched in submission order, which is what gives the scheduler
    its fair-share interleaving.
    """

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        from concurrent.futures import FIRST_COMPLETED
        from concurrent.futures import ThreadPoolExecutor as _Pool
        from concurrent.futures import wait

        jobs = list(jobs)
        if len(jobs) <= 1 or self.num_workers == 1:
            yield from SerialExecutor().submit_jobs(jobs)
            return
        with _Pool(max_workers=min(self.num_workers, len(jobs))) as pool:
            futures = {pool.submit(_run_entry, task, entry): (tag, entry)
                       for tag, entry, task in jobs}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    tag, entry = futures[future]
                    yield tag, entry.index, future.result()

    def __repr__(self) -> str:
        return f"ThreadExecutor(num_workers={self.num_workers})"


# -- process pool plumbing (module level: pickled by name) -------------
#: Worker-side task table, installed once per worker by the pool
#: initializer.  Keys are small integer slots assigned by the parent,
#: so job tuples never carry a task copy.
_WORKER_TASKS: Dict[int, Any] = {}


def _init_worker(parent_sys_path: List[str],
                 tasks: Dict[int, Any]) -> None:
    """Pool initializer: import path + the per-worker task table.

    With the ``spawn`` start method a fresh interpreter imports this
    module from scratch; when the parent runs from a source checkout
    (``sys.path`` patched by conftest rather than PYTHONPATH), the
    child needs the same entries to unpickle the tasks.  The task
    table itself is the once-per-worker pickle that replaces the
    historical once-per-job task copy.
    """
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    _WORKER_TASKS.clear()
    _WORKER_TASKS.update(tasks)


def _run_pool_job(job: Tuple[int, int, int, int, int]
                  ) -> Tuple[int, Any, Optional[str]]:
    """Worker-side entry point: run one chunk from the task table.

    Returns ``(position, result, None)`` on success and ``(position,
    None, traceback_text)`` on failure -- the traceback crosses the
    process boundary as text because live exception objects (and their
    frames) may not pickle.
    """
    position, slot, _index, chunk_seed, count = job
    try:
        return position, _WORKER_TASKS[slot].run_chunk(chunk_seed,
                                                       count), None
    except Exception:
        return position, None, traceback.format_exc()


class ProcessExecutor(ChunkExecutorBase):
    """Fan chunks out over worker processes (today's scaling path).

    Each distinct task object is pickled exactly once per worker, via
    the pool initializer's task table; the per-job tuples carry only
    plan coordinates.  Worker failures come back as
    :class:`ChunkExecutionError` with the worker traceback attached.

    Parameters
    ----------
    num_workers:
        Process count.  A single worker (or a single pending job)
        degrades to inline execution -- same results, no pool.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap, inherits ``sys.path``) and falls back to ``spawn``.
    """

    def __init__(self, num_workers: int,
                 start_method: Optional[str] = None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._start_method = start_method

    def _pool_context(self):
        method = self._start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        return multiprocessing.get_context(method)

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        jobs = list(jobs)
        if len(jobs) <= 1 or self.num_workers == 1:
            yield from SerialExecutor().submit_jobs(jobs)
            return
        slots: Dict[int, int] = {}
        tasks: Dict[int, Any] = {}
        tuples = []
        for position, (tag, entry, task) in enumerate(jobs):
            slot = slots.setdefault(id(task), len(slots))
            tasks[slot] = task
            tuples.append((position, slot, entry.index, entry.chunk_seed,
                           entry.count))
        context = self._pool_context()
        workers = min(self.num_workers, len(tuples))
        with context.Pool(workers, initializer=_init_worker,
                          initargs=(list(sys.path), tasks)) as pool:
            for position, result, failure in pool.imap_unordered(
                    _run_pool_job, tuples):
                tag, entry, _task = jobs[position]
                if failure is not None:
                    raise ChunkExecutionError(
                        entry.index, entry.chunk_seed, entry.count,
                        "worker process raised",
                        worker_traceback=failure)
                yield tag, entry.index, result

    def __repr__(self) -> str:
        return (f"ProcessExecutor(num_workers={self.num_workers}, "
                f"start_method={self._start_method!r})")


#: Executor spec strings accepted by :func:`resolve_executor`.
EXECUTOR_KINDS = ("serial", "thread", "process")


def resolve_executor(executor: "ChunkExecutor | str | None",
                     num_workers: int = 1,
                     start_method: Optional[str] = None) -> ChunkExecutor:
    """Resolve an executor spec to an instance.

    ``None`` keeps the historical behaviour: inline for one worker,
    process fan-out otherwise.  A string names a kind from
    ``EXECUTOR_KINDS`` sized by ``num_workers``; an object exposing
    ``submit`` is returned as-is.
    """
    if executor is None:
        if num_workers == 1:
            return SerialExecutor()
        return ProcessExecutor(num_workers, start_method=start_method)
    if isinstance(executor, str):
        kind = executor.strip().lower()
        if kind == "serial":
            return SerialExecutor()
        if kind in ("thread", "threads"):
            return ThreadExecutor(num_workers)
        if kind in ("process", "processes"):
            return ProcessExecutor(num_workers, start_method=start_method)
        raise ValueError(
            f"unknown executor {executor!r}; choose from "
            f"{EXECUTOR_KINDS} or pass a ChunkExecutor instance")
    if hasattr(executor, "submit"):
        return executor
    raise TypeError(
        f"executor must be None, a kind string or a ChunkExecutor, "
        f"got {type(executor).__name__}")


__all__ = [
    "ChunkExecutionError",
    "ChunkExecutor",
    "ChunkExecutorBase",
    "EXECUTOR_KINDS",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "resolve_executor",
]
