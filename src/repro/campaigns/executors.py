"""Executor layer: strategies for turning plan entries into results.

A :class:`ChunkExecutor` consumes :class:`~repro.campaigns.plan.\
ChunkPlanEntry` values and yields ``(index, result)`` pairs as chunks
complete -- in any order, because the merge is index-sorted downstream.
Executors own *where* chunks run and nothing else: the plan layer has
already fixed every seed and boundary, so any executor at any
concurrency produces bit-identical merged statistics for the same plan.

Five implementations ship, in two families:

**One-shot** (pool per ``submit_jobs`` call):

* :class:`SerialExecutor` -- inline in the calling thread; the
  ``num_workers == 1`` path and the degenerate single-chunk fallback.
* :class:`ThreadExecutor` -- a ``concurrent.futures`` thread pool.
  Useful when chunk work releases the GIL (numpy kernels in the simd
  engine) and for the campaign service's many-small-interactive-jobs
  regime, where process fan-out overhead dominates tiny jobs.
* :class:`ProcessExecutor` -- ``multiprocessing`` fan-out.  Each
  worker receives the task table **once**, through the pool
  initializer, instead of a task copy pickled into every job tuple;
  job tuples carry only ``(position, slot, index, seed, count)``.

**Warm persistent** (pool outlives ``submit_jobs`` calls; explicit
``close()`` / context-manager lifecycle, optional idle teardown):

* :class:`PersistentProcessExecutor` -- long-lived worker processes
  created once and reused by every subsequent call (and every
  scheduler job).  Tasks ship **incrementally**: a worker receives a
  task at most once per process lifetime, keyed on
  ``task.fingerprint()``; workers memoize seed-independent heavy
  state per fingerprint in a :class:`~repro.campaigns.worker_cache.\
WorkerStateCache` and run chunks through ``run_chunk_warm``.
  Dispatch streams through a bounded in-flight window, so a
  10^5-chunk plan never materializes 10^5 job tuples.
* :class:`PersistentThreadExecutor` -- the same warm lifecycle over a
  long-lived thread pool, with one state cache per worker thread.

Chunk failures surface as :class:`ChunkExecutionError` carrying the
failing chunk's index, seed and count (plus the worker traceback for
process pools), so a 10^7-sequence campaign names the chunk that died
and a resume can re-run exactly that work.  A failed chunk does not
poison a warm pool: the pool survives, stale in-flight results are
discarded by epoch, and the next ``submit_jobs`` replaces any worker
that died.

The scheduler-facing entry point is :meth:`ChunkExecutorBase.\
submit_jobs`, which multiplexes entries from *several* tasks over one
executor; :meth:`~ChunkExecutorBase.submit` is the single-task
convenience defined in terms of it.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue
import sys
import threading
import time
import traceback
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from repro.campaigns.plan import ChunkPlanEntry
from repro.campaigns.worker_cache import (
    DEFAULT_MAX_ENTRIES,
    ChunkTiming,
    WorkerStateCache,
    task_state_key,
)

try:  # pragma: no cover - typing nicety only
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]

#: A scheduler job: an opaque tag, the plan entry to run, and the task
#: that runs it.  Tags come back attached to results so the caller can
#: route completions to the right campaign.
TaggedJob = Tuple[Any, ChunkPlanEntry, Any]


class ChunkExecutionError(RuntimeError):
    """A chunk of campaign work failed.

    Carries the failing chunk's plan coordinates -- ``chunk_index``,
    ``chunk_seed``, ``count`` -- so a failed multi-hour campaign says
    *which* chunk died (and therefore which seed reproduces the crash
    in isolation), plus ``worker_traceback`` when the failure happened
    in a worker process whose live traceback cannot cross the pickle
    boundary.  The original exception is chained as ``__cause__`` when
    it is available in-process.
    """

    def __init__(self, chunk_index: int, chunk_seed: int, count: int,
                 message: str,
                 worker_traceback: Optional[str] = None):
        detail = (f"chunk {chunk_index} (seed={chunk_seed}, "
                  f"count={count}) failed: {message}")
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)
        self.chunk_index = chunk_index
        self.chunk_seed = chunk_seed
        self.count = count
        self.worker_traceback = worker_traceback

    @classmethod
    def wrap(cls, entry: ChunkPlanEntry,
             exc: BaseException) -> "ChunkExecutionError":
        """Wrap an in-process exception, preserving it as the cause."""
        error = cls(entry.index, entry.chunk_seed, entry.count,
                    f"{type(exc).__name__}: {exc}")
        error.__cause__ = exc
        return error


class ChunkExecutor(Protocol):
    """Protocol of the executor layer.

    ``submit`` runs one task's plan entries and yields ``(index,
    result)`` pairs as they complete (any order); implementations that
    also support :meth:`ChunkExecutorBase.submit_jobs` can serve the
    multi-campaign scheduler.  Failures are raised as
    :class:`ChunkExecutionError` from the consuming iterator.
    """

    def submit(self, entries: Iterable[ChunkPlanEntry],
               task: Any) -> Iterator[Tuple[int, Any]]:
        ...


class ChunkExecutorBase:
    """Shared plumbing: ``submit`` in terms of ``submit_jobs``."""

    def submit(self, entries: Iterable[ChunkPlanEntry],
               task: Any) -> Iterator[Tuple[int, Any]]:
        """Run one task's entries; yield ``(index, result)`` pairs.

        ``entries`` is consumed lazily: streaming executors pull from
        it as their in-flight window frees up (one-shot executors
        materialize it).
        """
        for _, index, result in self.submit_jobs(
                ((None, entry, task) for entry in entries)):
            yield index, result

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        """Run tagged ``(tag, entry, task)`` jobs; yield ``(tag, index,
        result)`` as chunks complete."""
        raise NotImplementedError


def _run_entry(task: Any, entry: ChunkPlanEntry) -> Any:
    """Run one entry in-process, wrapping failures."""
    try:
        return task.run_chunk(entry.chunk_seed, entry.count)
    except ChunkExecutionError:
        raise
    except Exception as exc:
        raise ChunkExecutionError.wrap(entry, exc) from exc


class SerialExecutor(ChunkExecutorBase):
    """Run every chunk inline, in submission order."""

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        for tag, entry, task in jobs:
            yield tag, entry.index, _run_entry(task, entry)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadExecutor(ChunkExecutorBase):
    """Fan chunks out over a thread pool.

    Threads share the interpreter, so this pays no pickling or process
    start-up cost; it overlaps real work only where the chunk's inner
    loop releases the GIL (numpy kernels) or blocks on IO.  Jobs are
    dispatched in submission order, which is what gives the scheduler
    its fair-share interleaving.
    """

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        from concurrent.futures import FIRST_COMPLETED
        from concurrent.futures import ThreadPoolExecutor as _Pool
        from concurrent.futures import wait

        jobs = list(jobs)
        if len(jobs) <= 1 or self.num_workers == 1:
            yield from SerialExecutor().submit_jobs(jobs)
            return
        with _Pool(max_workers=min(self.num_workers, len(jobs))) as pool:
            futures = {pool.submit(_run_entry, task, entry): (tag, entry)
                       for tag, entry, task in jobs}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    tag, entry = futures[future]
                    yield tag, entry.index, future.result()

    def __repr__(self) -> str:
        return f"ThreadExecutor(num_workers={self.num_workers})"


def _start_context(start_method: Optional[str]):
    """The multiprocessing context for ``start_method`` (default:
    ``fork`` when available, else ``spawn``)."""
    method = start_method
    if method is None:
        available = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in available else "spawn"
    return multiprocessing.get_context(method)


# -- process pool plumbing (module level: pickled by name) -------------
#: Worker-side task table, installed once per worker by the pool
#: initializer.  Keys are small integer slots assigned by the parent,
#: so job tuples never carry a task copy.
_WORKER_TASKS: Dict[int, Any] = {}


def _init_worker(parent_sys_path: List[str],
                 tasks: Dict[int, Any]) -> None:
    """Pool initializer: import path + the per-worker task table.

    With the ``spawn`` start method a fresh interpreter imports this
    module from scratch; when the parent runs from a source checkout
    (``sys.path`` patched by conftest rather than PYTHONPATH), the
    child needs the same entries to unpickle the tasks.  The task
    table itself is the once-per-worker pickle that replaces the
    historical once-per-job task copy.
    """
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    _WORKER_TASKS.clear()
    _WORKER_TASKS.update(tasks)


def _slot_jobs(jobs: Sequence[TaggedJob]
               ) -> Tuple[List[Tuple[int, int, int, int, int]],
                          Dict[int, Any]]:
    """Assign task-table slots and build the pool's job tuples.

    Slots are keyed on ``task.fingerprint()`` -- **not** ``id(task)``:
    object identity is neither stable (a freed task's id can be
    reused by a different task while the pool is still running) nor
    meaningful (two equal-fingerprint task objects describe the same
    work and must share one table entry).  Factored out of
    :meth:`ProcessExecutor.submit_jobs` so the slotting contract is
    directly testable.
    """
    slots: Dict[str, int] = {}
    tasks: Dict[int, Any] = {}
    tuples: List[Tuple[int, int, int, int, int]] = []
    for position, (_tag, entry, task) in enumerate(jobs):
        key = task_state_key(task)
        slot = slots.get(key)
        if slot is None:
            slot = slots[key] = len(slots)
            tasks[slot] = task
        tuples.append((position, slot, entry.index, entry.chunk_seed,
                       entry.count))
    return tuples, tasks


def _run_pool_job(job: Tuple[int, int, int, int, int]
                  ) -> Tuple[int, Any, Optional[str]]:
    """Worker-side entry point: run one chunk from the task table.

    Returns ``(position, result, None)`` on success and ``(position,
    None, traceback_text)`` on failure -- the traceback crosses the
    process boundary as text because live exception objects (and their
    frames) may not pickle.
    """
    position, slot, _index, chunk_seed, count = job
    try:
        return position, _WORKER_TASKS[slot].run_chunk(chunk_seed,
                                                       count), None
    except Exception:
        return position, None, traceback.format_exc()


class ProcessExecutor(ChunkExecutorBase):
    """Fan chunks out over worker processes (today's scaling path).

    Each distinct task object is pickled exactly once per worker, via
    the pool initializer's task table; the per-job tuples carry only
    plan coordinates.  Worker failures come back as
    :class:`ChunkExecutionError` with the worker traceback attached.

    Parameters
    ----------
    num_workers:
        Process count.  A single worker (or a single pending job)
        degrades to inline execution -- same results, no pool.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap, inherits ``sys.path``) and falls back to ``spawn``.
    """

    def __init__(self, num_workers: int,
                 start_method: Optional[str] = None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._start_method = start_method

    def _pool_context(self):
        return _start_context(self._start_method)

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        jobs = list(jobs)
        if len(jobs) <= 1 or self.num_workers == 1:
            yield from SerialExecutor().submit_jobs(jobs)
            return
        tuples, tasks = _slot_jobs(jobs)
        context = self._pool_context()
        workers = min(self.num_workers, len(tuples))
        with context.Pool(workers, initializer=_init_worker,
                          initargs=(list(sys.path), tasks)) as pool:
            for position, result, failure in pool.imap_unordered(
                    _run_pool_job, tuples):
                tag, entry, _task = jobs[position]
                if failure is not None:
                    raise ChunkExecutionError(
                        entry.index, entry.chunk_seed, entry.count,
                        "worker process raised",
                        worker_traceback=failure)
                yield tag, entry.index, result

    def __repr__(self) -> str:
        return (f"ProcessExecutor(num_workers={self.num_workers}, "
                f"start_method={self._start_method!r})")


# -- warm persistent pool plumbing (module level: pickled by name) -----
def _persistent_worker_main(parent_sys_path: List[str], worker_id: int,
                            job_queue: Any, result_queue: Any,
                            max_cached: int) -> None:
    """Long-lived worker loop of :class:`PersistentProcessExecutor`.

    Protocol (one job queue per worker, one shared result queue):

    * ``("task", key, task)`` -- install ``task`` in this worker's
      table under its fingerprint ``key``.  The parent sends this at
      most once per (worker lifetime, fingerprint): that is the
      incremental task shipping that replaces the cold pool's
      re-shipping of the whole table on every ``submit_jobs``.
    * ``("job", epoch, position, key, chunk_seed, count)`` -- run one
      chunk through the warm path: lease the task's memoized state
      from the worker's :class:`~repro.campaigns.worker_cache.\
WorkerStateCache` (building it on first sight -- that build is the
      ``setup`` half of the reported timing) and ``run_chunk_warm``.
      Replies ``(worker_id, epoch, position, result, (setup, compute,
      cache_hit), None)`` on success, ``(worker_id, epoch, position,
      None, None, traceback_text)`` on failure.
    * ``("stop",)`` -- exit the loop (sent by ``close()``).
    """
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    tasks: Dict[str, Any] = {}
    cache = WorkerStateCache(max_entries=max_cached)
    while True:
        try:
            message = job_queue.get()
        except (EOFError, OSError):  # pragma: no cover - parent died
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "task":
            tasks[message[1]] = message[2]
            continue
        _, epoch, position, key, chunk_seed, count = message
        try:
            task = tasks[key]
            state, setup, cache_hit = cache.lease(task)
            started = time.perf_counter()
            result = task.run_chunk_warm(state, chunk_seed, count)
            compute = time.perf_counter() - started
            result_queue.put((worker_id, epoch, position, result,
                              (setup, compute, cache_hit), None))
        except Exception:
            result_queue.put((worker_id, epoch, position, None, None,
                              traceback.format_exc()))


class _WorkerRecord:
    """Parent-side bookkeeping for one persistent worker process."""

    __slots__ = ("process", "queue", "shipped", "inflight")

    def __init__(self, process: Any, job_queue: Any):
        self.process = process
        self.queue = job_queue
        #: Task fingerprints already shipped to this worker's table.
        self.shipped: Set[str] = set()
        #: Jobs dispatched but not yet answered (any epoch).
        self.inflight = 0


class _WarmLifecycleMixin:
    """Shared close/context-manager/idle-timer plumbing of the warm
    executors.  Subclasses implement ``_teardown()`` (drop the pool,
    keep the executor reusable) and set ``_closed`` in ``close()``."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net only
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} is closed; create a new "
                f"executor (close() is final)")

    def _cancel_idle_timer(self) -> None:
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None

    def _start_idle_timer(self) -> None:
        if self.idle_timeout is None:
            return
        timer = threading.Timer(self.idle_timeout, self._idle_teardown)
        timer.daemon = True
        timer.start()
        self._idle_timer = timer

    def _idle_teardown(self) -> None:
        with self._lock:
            if self._closed:
                return
            # Drop the idle pool but stay usable: the next submit_jobs
            # simply pays one (cold) pool spin-up again.
            self._teardown()

    def close(self) -> None:
        """Tear the pool down and retire the executor (idempotent)."""
        with self._lock:
            self._cancel_idle_timer()
            self._teardown()
            self._closed = True


class PersistentProcessExecutor(_WarmLifecycleMixin, ChunkExecutorBase):
    """Warm process fan-out: one pool, many ``submit_jobs`` calls.

    The cold :class:`ProcessExecutor` pays pool spin-up, task-table
    shipping and per-chunk bench construction on **every** call; this
    executor pays each cost once per worker lifetime:

    * worker processes are created on first use and reused by every
      subsequent ``submit_jobs`` (and so by every scheduler job);
    * a task ships to a worker at most once, keyed on
      ``task.fingerprint()``;
    * workers memoize seed-independent heavy state (design, engine,
      workspaces, LUTs, jit warm-up) per fingerprint and run chunks
      via ``run_chunk_warm`` -- bit-identical to the cold path, for
      any worker count and any pool-reuse order.

    Dispatch streams: jobs are pulled from the (lazily consumed)
    iterable only while fewer than ``window`` are in flight, each to
    the least-loaded worker.  After each yielded result,
    :attr:`last_chunk_timing` holds that chunk's
    :class:`~repro.campaigns.worker_cache.ChunkTiming` -- the runner
    and scheduler surface the cumulative split through
    ``CampaignProgress``.

    Failure containment: a raised :class:`ChunkExecutionError` leaves
    the pool warm.  Results of abandoned calls are discarded by epoch,
    dead workers are replaced (with cold caches) on the next call, and
    ``close()``/``with`` tears everything down; ``idle_timeout``
    additionally reclaims the pool after that many idle seconds (the
    executor stays usable -- the next call re-spawns).

    Unlike the cold executor there is **no** inline degradation for
    single-job calls or ``num_workers=1`` -- a one-worker warm pool is
    precisely the many-small-interactive-jobs service regime.
    """

    def __init__(self, num_workers: int,
                 start_method: Optional[str] = None,
                 window: Optional[int] = None,
                 idle_timeout: Optional[float] = None,
                 max_cached_states: int = DEFAULT_MAX_ENTRIES):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.num_workers = num_workers
        self._start_method = start_method
        #: In-flight dispatch bound; enough to keep every worker busy
        #: plus a small ready queue, small enough that a huge plan is
        #: never materialized.
        self.window = window if window is not None else max(
            2 * num_workers, 4)
        self.idle_timeout = idle_timeout
        self._max_cached = max_cached_states
        self._context: Any = None
        self._workers: Dict[int, _WorkerRecord] = {}
        self._next_worker_id = 0
        self._result_queue: Any = None
        self._epoch = 0
        self._closed = False
        self._lock = threading.RLock()
        self._idle_timer: Optional[threading.Timer] = None
        #: Timing of the most recently yielded chunk (consumers read it
        #: right after each ``submit_jobs`` yield).
        self.last_chunk_timing: Optional[ChunkTiming] = None

    # -- pool management ------------------------------------------------
    @property
    def alive_workers(self) -> int:
        """Live worker processes right now (0 before first use and
        after close/idle teardown)."""
        return sum(1 for record in self._workers.values()
                   if record.process.is_alive())

    def _ensure_pool(self) -> None:
        if self._context is None:
            self._context = _start_context(self._start_method)
        if self._result_queue is None:
            self._result_queue = self._context.Queue()
        self._drain_stale_results()
        for worker_id, record in list(self._workers.items()):
            if not record.process.is_alive():
                # A crashed worker's warm cache died with it; replace
                # below with a cold one rather than poisoning the pool.
                record.process.join(timeout=0.1)
                del self._workers[worker_id]
        while len(self._workers) < self.num_workers:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            job_queue = self._context.Queue()
            process = self._context.Process(
                target=_persistent_worker_main,
                args=(list(sys.path), worker_id, job_queue,
                      self._result_queue, self._max_cached),
                daemon=True,
                name=f"repro-warm-worker-{worker_id}")
            process.start()
            self._workers[worker_id] = _WorkerRecord(process, job_queue)

    def _drain_stale_results(self) -> None:
        """Consume results of abandoned epochs without blocking."""
        if self._result_queue is None:
            return
        while True:
            try:
                message = self._result_queue.get_nowait()
            except _queue.Empty:
                return
            record = self._workers.get(message[0])
            if record is not None:
                record.inflight -= 1

    def _teardown(self) -> None:
        workers, self._workers = self._workers, {}
        result_queue, self._result_queue = self._result_queue, None
        for record in workers.values():
            if record.process.is_alive():
                try:
                    record.queue.put(("stop",))
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for record in workers.values():
            record.process.join(timeout=5.0)
            if record.process.is_alive():  # pragma: no cover - stuck chunk
                record.process.terminate()
                record.process.join(timeout=1.0)
            record.queue.close()
            record.queue.cancel_join_thread()
        if result_queue is not None:
            while True:
                try:
                    result_queue.get_nowait()
                except _queue.Empty:
                    break
            result_queue.close()
            result_queue.cancel_join_thread()

    # -- dispatch -------------------------------------------------------
    def _dispatch(self, epoch: int, position: int, entry: ChunkPlanEntry,
                  task: Any) -> int:
        """Send one job to the least-loaded worker; returns its id."""
        worker_id, record = min(self._workers.items(),
                                key=lambda item: item[1].inflight)
        key = task_state_key(task)
        if key not in record.shipped:
            record.queue.put(("task", key, task))
            record.shipped.add(key)
        record.queue.put(("job", epoch, position, key, entry.chunk_seed,
                          entry.count))
        record.inflight += 1
        return worker_id

    def _next_result(self, epoch: int,
                     assigned: Dict[int, int]) -> Tuple[Any, ...]:
        """Block for the next worker reply, watching for worker death.

        A worker that dies mid-chunk would otherwise hang the consumer
        forever; instead its earliest outstanding chunk is reported as
        a failure (the pool replaces the worker on the next call).
        """
        while True:
            try:
                return self._result_queue.get(timeout=1.0)
            except _queue.Empty:
                for position in sorted(assigned):
                    worker_id = assigned[position]
                    record = self._workers.get(worker_id)
                    if record is None or record.process.is_alive():
                        continue
                    exitcode = record.process.exitcode
                    record.process.join(timeout=0.1)
                    del self._workers[worker_id]
                    return (None, epoch, position, None, None,
                            f"worker process died (exit code "
                            f"{exitcode}) before returning a result")

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        with self._lock:
            self._check_open()
            self._cancel_idle_timer()
            self._ensure_pool()
            self._epoch += 1
            epoch = self._epoch
        jobs_iter = iter(jobs)
        pending: Dict[int, Tuple[Any, ChunkPlanEntry]] = {}
        assigned: Dict[int, int] = {}
        next_position = 0
        exhausted = False
        try:
            while True:
                # Top the in-flight window up from the lazy job feed
                # (this backpressure is what keeps huge plans from
                # materializing).
                while not exhausted and len(pending) < self.window:
                    try:
                        tag, entry, task = next(jobs_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    position = next_position
                    next_position += 1
                    pending[position] = (tag, entry)
                    assigned[position] = self._dispatch(epoch, position,
                                                        entry, task)
                if not pending:
                    break
                (worker_id, reply_epoch, position, result, timing,
                 failure) = self._next_result(epoch, assigned)
                record = self._workers.get(worker_id)
                if record is not None:
                    record.inflight -= 1
                if reply_epoch != epoch:
                    # Left over from an abandoned call; already
                    # accounted above, nothing to route.
                    continue
                tag, entry = pending.pop(position)
                assigned.pop(position, None)
                if failure is not None:
                    raise ChunkExecutionError(
                        entry.index, entry.chunk_seed, entry.count,
                        "worker process raised",
                        worker_traceback=failure)
                self.last_chunk_timing = ChunkTiming(*timing)
                yield tag, entry.index, result
        finally:
            with self._lock:
                # Whatever this call leaves in flight (early consumer
                # exit, a raised chunk) is stale for the next one.
                self._epoch += 1
                if not self._closed:
                    self._start_idle_timer()

    def __repr__(self) -> str:
        return (f"PersistentProcessExecutor(num_workers="
                f"{self.num_workers}, start_method="
                f"{self._start_method!r}, window={self.window}, "
                f"alive_workers={self.alive_workers})")


class PersistentThreadExecutor(_WarmLifecycleMixin, ChunkExecutorBase):
    """Warm thread fan-out: a long-lived thread pool with per-thread
    state caches.

    The thread twin of :class:`PersistentProcessExecutor`: the pool
    survives across ``submit_jobs`` calls, each worker thread keeps
    its own :class:`~repro.campaigns.worker_cache.WorkerStateCache`
    (designs are not thread-safe, so states are never shared between
    threads), dispatch streams through the same bounded window, and
    the same ``close()``/context-manager/``idle_timeout`` lifecycle
    applies.  Best for GIL-releasing chunk work and for warm service
    regimes where even process spin-up is too much latency.
    """

    def __init__(self, num_workers: int,
                 window: Optional[int] = None,
                 idle_timeout: Optional[float] = None,
                 max_cached_states: int = DEFAULT_MAX_ENTRIES):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.num_workers = num_workers
        self.window = window if window is not None else max(
            2 * num_workers, 4)
        self.idle_timeout = idle_timeout
        self._max_cached = max_cached_states
        self._pool: Any = None
        self._local = threading.local()
        self._closed = False
        self._lock = threading.RLock()
        self._idle_timer: Optional[threading.Timer] = None
        self.last_chunk_timing: Optional[ChunkTiming] = None

    def _ensure_pool(self) -> None:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor as _Pool
            self._pool = _Pool(max_workers=self.num_workers,
                               thread_name_prefix="repro-warm")

    def _teardown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _thread_cache(self) -> WorkerStateCache:
        cache = getattr(self._local, "cache", None)
        if cache is None:
            cache = WorkerStateCache(max_entries=self._max_cached)
            self._local.cache = cache
        return cache

    def _run_warm(self, entry: ChunkPlanEntry, task: Any
                  ) -> Tuple[Any, ChunkTiming]:
        try:
            state, setup, cache_hit = self._thread_cache().lease(task)
            started = time.perf_counter()
            result = task.run_chunk_warm(state, entry.chunk_seed,
                                         entry.count)
        except ChunkExecutionError:
            raise
        except Exception as exc:
            raise ChunkExecutionError.wrap(entry, exc) from exc
        return result, ChunkTiming(setup, time.perf_counter() - started,
                                   cache_hit)

    def submit_jobs(self, jobs: Iterable[TaggedJob]
                    ) -> Iterator[Tuple[Any, int, Any]]:
        from concurrent.futures import FIRST_COMPLETED, wait

        with self._lock:
            self._check_open()
            self._cancel_idle_timer()
            self._ensure_pool()
            pool = self._pool
        jobs_iter = iter(jobs)
        futures: Dict[Any, Tuple[Any, ChunkPlanEntry]] = {}
        exhausted = False
        try:
            while True:
                while not exhausted and len(futures) < self.window:
                    try:
                        tag, entry, task = next(jobs_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    future = pool.submit(self._run_warm, entry, task)
                    futures[future] = (tag, entry)
                if not futures:
                    break
                done, _ = wait(list(futures),
                               return_when=FIRST_COMPLETED)
                for future in done:
                    tag, entry = futures.pop(future)
                    result, timing = future.result()
                    self.last_chunk_timing = timing
                    yield tag, entry.index, result
        finally:
            for future in futures:
                future.cancel()
            with self._lock:
                if not self._closed:
                    self._start_idle_timer()

    def __repr__(self) -> str:
        return (f"PersistentThreadExecutor(num_workers="
                f"{self.num_workers}, window={self.window}, "
                f"warm={self._pool is not None})")


#: Executor spec strings accepted by :func:`resolve_executor`.
EXECUTOR_KINDS = ("serial", "thread", "process", "thread-warm",
                  "process-warm")


def resolve_executor(executor: "ChunkExecutor | str | None",
                     num_workers: int = 1,
                     start_method: Optional[str] = None) -> ChunkExecutor:
    """Resolve an executor spec to an instance.

    ``None`` keeps the historical behaviour: inline for one worker,
    process fan-out otherwise.  A string names a kind from
    ``EXECUTOR_KINDS`` sized by ``num_workers``; an object exposing
    ``submit`` is returned as-is.  The warm kinds
    (``"process-warm"``/``"thread-warm"``) build persistent executors
    whose pool outlives individual calls -- whoever resolves a spec
    string owns the resulting lifecycle (the runner and scheduler
    close spec-resolved executors themselves; pass a pre-built
    instance to share one warm pool across runners/schedulers and
    close it yourself).
    """
    if executor is None:
        if num_workers == 1:
            return SerialExecutor()
        return ProcessExecutor(num_workers, start_method=start_method)
    if isinstance(executor, str):
        kind = executor.strip().lower()
        if kind == "serial":
            return SerialExecutor()
        if kind in ("thread", "threads"):
            return ThreadExecutor(num_workers)
        if kind in ("process", "processes"):
            return ProcessExecutor(num_workers, start_method=start_method)
        if kind in ("process-warm", "warm-process"):
            return PersistentProcessExecutor(num_workers,
                                             start_method=start_method)
        if kind in ("thread-warm", "warm-thread"):
            return PersistentThreadExecutor(num_workers)
        raise ValueError(
            f"unknown executor {executor!r}; choose from "
            f"{EXECUTOR_KINDS} or pass a ChunkExecutor instance")
    if hasattr(executor, "submit"):
        return executor
    raise TypeError(
        f"executor must be None, a kind string or a ChunkExecutor, "
        f"got {type(executor).__name__}")


__all__ = [
    "ChunkExecutionError",
    "ChunkExecutor",
    "ChunkExecutorBase",
    "ChunkTiming",
    "EXECUTOR_KINDS",
    "PersistentProcessExecutor",
    "PersistentThreadExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "resolve_executor",
]
