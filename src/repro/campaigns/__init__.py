"""Campaign orchestration: plan / executor / checkpoint / scheduler.

The paper validates the methodology with 10^8-sequence FPGA campaigns;
this package is the software path toward that scale, decomposed into
one layer per concern so each can evolve (and be swapped) alone:

* :mod:`repro.campaigns.plan` -- **what** to run: the deterministic
  chunk plan, pure immutable data derived from ``(root_seed,
  total_sequences, chunk_size)`` and nothing else -- the reason merged
  statistics are bit-identical for any executor and worker count;
* :mod:`repro.campaigns.executors` -- **where** chunks run: inline
  (:class:`~repro.campaigns.executors.SerialExecutor`), thread pool
  (:class:`~repro.campaigns.executors.ThreadExecutor`), process
  fan-out (:class:`~repro.campaigns.executors.ProcessExecutor`, tasks
  pickled once per worker), or the **warm persistent pools**
  (:class:`~repro.campaigns.executors.PersistentProcessExecutor` /
  :class:`~repro.campaigns.executors.PersistentThreadExecutor`) whose
  workers, task tables and per-fingerprint state caches survive
  across calls and scheduler jobs, with failures wrapped as
  :class:`~repro.campaigns.executors.ChunkExecutionError` naming the
  chunk that died;
* :mod:`repro.campaigns.worker_cache` -- the worker-side memo behind
  the warm pools: seed-independent heavy state per task fingerprint
  (:class:`~repro.campaigns.worker_cache.WorkerStateCache`), rebuilt
  seed-dependent streams per chunk, bit-identity preserved;
* :mod:`repro.campaigns.checkpoints` -- **durability**: the JSON
  checkpoint store (header validation, atomic replace, interval-based
  flush policy) behind resume-after-interruption;
* :mod:`repro.campaigns.scheduler` -- **many campaigns at once**:
  :class:`~repro.campaigns.scheduler.CampaignScheduler` interleaves
  jobs fair-share over one shared executor and memoizes merged
  results, the first concrete step of the campaign service;
* :mod:`repro.campaigns.runner` -- the facade:
  :class:`~repro.campaigns.runner.ShardedCampaignRunner` composes the
  layers behind the historical single-campaign API;
* :mod:`repro.campaigns.stats` -- counter-based, O(1)-memory,
  mergeable campaign statistics;
* :mod:`repro.campaigns.seeding` -- SeedSequence-style deterministic
  seed-splitting (hash-derived child seeds, immune to the ``seed +
  offset`` aliasing class of bugs);
* :mod:`repro.campaigns.tasks` -- picklable task descriptions (the
  Fig. 8 FIFO validation campaign; the Fig. 10 correction-capability
  task lives with its driver in
  :mod:`repro.analysis.correction_capability`).

The legacy entry points (`repro.validation.campaign`,
`repro.analysis.correction_capability`) remain available as thin
wrappers over this subsystem.
"""

from repro.campaigns.stats import (
    InjectionRecord,
    StreamingCampaignStats,
    StreamingCampaignResult,
    injection_record_from_sequence,
)
from repro.campaigns.seeding import child_seed, spawn_seeds
from repro.campaigns.plan import (
    ChunkPlan,
    ChunkPlanEntry,
    default_chunk_size,
)
from repro.campaigns.executors import (
    ChunkExecutionError,
    ChunkExecutor,
    ChunkTiming,
    PersistentProcessExecutor,
    PersistentThreadExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.campaigns.worker_cache import WorkerStateCache
from repro.campaigns.checkpoints import CheckpointStore
from repro.campaigns.runner import (
    CampaignProgress,
    CampaignTask,
    ShardedCampaignRunner,
)
from repro.campaigns.scheduler import CampaignJob, CampaignScheduler
from repro.campaigns.tasks import FIFOValidationCampaignTask

__all__ = [
    "InjectionRecord",
    "StreamingCampaignStats",
    "StreamingCampaignResult",
    "injection_record_from_sequence",
    "child_seed",
    "spawn_seeds",
    "ChunkPlan",
    "ChunkPlanEntry",
    "ChunkExecutionError",
    "ChunkExecutor",
    "ChunkTiming",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PersistentProcessExecutor",
    "PersistentThreadExecutor",
    "WorkerStateCache",
    "resolve_executor",
    "CheckpointStore",
    "CampaignProgress",
    "CampaignTask",
    "CampaignJob",
    "CampaignScheduler",
    "ShardedCampaignRunner",
    "default_chunk_size",
    "FIFOValidationCampaignTask",
]
