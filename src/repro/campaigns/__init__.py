"""Campaign orchestration: streaming statistics and sharded execution.

The paper validates the methodology with 10^8-sequence FPGA campaigns;
this package is the software path toward that scale:

* :mod:`repro.campaigns.stats` -- counter-based, O(1)-memory,
  mergeable campaign statistics (the streaming replacement for the
  historical record-list bookkeeping);
* :mod:`repro.campaigns.seeding` -- SeedSequence-style deterministic
  seed-splitting (hash-derived child seeds, immune to the ``seed +
  offset`` aliasing class of bugs);
* :mod:`repro.campaigns.runner` -- the sharded, chunked campaign
  runner: ``multiprocessing`` fan-out with worker-count-independent
  results, JSON checkpoint/resume and progress callbacks;
* :mod:`repro.campaigns.tasks` -- picklable task descriptions (the
  Fig. 8 FIFO validation campaign; the Fig. 10 correction-capability
  task lives with its driver in
  :mod:`repro.analysis.correction_capability`).

The legacy entry points (`repro.validation.campaign`,
`repro.analysis.correction_capability`) remain available as thin
wrappers over this subsystem.
"""

from repro.campaigns.stats import (
    InjectionRecord,
    StreamingCampaignStats,
    StreamingCampaignResult,
    injection_record_from_sequence,
)
from repro.campaigns.seeding import child_seed, spawn_seeds
from repro.campaigns.runner import (
    CampaignProgress,
    CampaignTask,
    ShardedCampaignRunner,
    default_chunk_size,
)
from repro.campaigns.tasks import FIFOValidationCampaignTask

__all__ = [
    "InjectionRecord",
    "StreamingCampaignStats",
    "StreamingCampaignResult",
    "injection_record_from_sequence",
    "child_seed",
    "spawn_seeds",
    "CampaignProgress",
    "CampaignTask",
    "ShardedCampaignRunner",
    "default_chunk_size",
    "FIFOValidationCampaignTask",
]
