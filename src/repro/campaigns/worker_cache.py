"""Worker-side state cache for the warm persistent executors.

A cold chunk pays for everything: the protected design (circuit,
chains, monitor bank), the engine instance with its workspaces, the
memoized GF(2) LUTs, and -- on the jit engine -- kernel warm-up.  The
kernels have long out-scaled those fixed costs, so the persistent
executors (:class:`~repro.campaigns.executors.PersistentProcessExecutor`
and friends) keep one :class:`WorkerStateCache` per worker *lifetime*
and rebuild only the cheap seed-dependent wrappers per chunk.

The split is the determinism contract of this module:

* **seed-independent** state -- circuit construction, chain balancing,
  monitor bank, engine instances and their workspaces, syndrome and
  verdict LUTs, jit warm-up -- is built once per ``(worker,
  task.fingerprint())`` by :meth:`~repro.campaigns.runner.CampaignTask.\
build_worker_state` and memoized here;
* **seed-dependent** state -- the injector's LFSRs, the stimulus RNG,
  the pattern RNG -- is rebuilt every chunk from ``child_seed(
  chunk_seed, ...)`` by the task's ``run_chunk_warm``, exactly as the
  cold ``run_chunk`` path derives it.

Because chunk results then depend only on ``(task fingerprint,
chunk_seed, count)``, a warm worker is bit-identical to a cold one for
any worker count and any pool-reuse order (property-tested in
``tests/campaigns/test_worker_cache.py``).

Everything stored in this module outlives single chunks inside
long-lived worker processes, so the ``pickle`` repro-lint rule checks
*every* class defined here (not just ``CampaignTask`` subclasses) for
lambda/handle state.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Dict, NamedTuple

from repro.campaigns.seeding import child_seed

#: Default per-worker cap on cached task states.  Cached states hold
#: full designs plus engine workspaces, so an unbounded cache would
#: grow with every distinct task a long-lived worker ever serves.
DEFAULT_MAX_ENTRIES = 4


class ChunkTiming(NamedTuple):
    """Per-chunk setup-vs-compute split reported by warm executors.

    ``setup_seconds`` is the worker-state build cost this chunk paid
    (zero on a cache hit -- that zero is the amortization being
    observable); ``compute_seconds`` is the chunk's actual simulation
    time, including the per-chunk reseed.  ``cache_hit`` says whether
    the worker served the chunk from warm state.
    """

    setup_seconds: float
    compute_seconds: float
    cache_hit: bool = False


def task_state_key(task: Any) -> str:
    """Cache/shipping key of a task: its fingerprint, never its id.

    ``task.fingerprint()`` is stable across processes and across
    equal-valued task objects; CPython ``id`` is neither (and a freed
    id can be reused by a *different* task mid-run).
    """
    fingerprint = getattr(task, "fingerprint", None)
    if callable(fingerprint):
        return str(fingerprint())
    return repr(task)


class WorkerStateCache:
    """Memoized per-task worker state, keyed on ``task.fingerprint()``.

    One instance lives per worker (process or thread) for that
    worker's whole lifetime.  :meth:`lease` returns the cached state
    for a task, building it through the task's
    :meth:`~repro.campaigns.runner.CampaignTask.build_worker_state` on
    the first sighting; ``hits``/``misses``/``evictions`` make the
    amortization auditable.  Entries are evicted least-recently-used
    beyond ``max_entries`` -- cached states hold whole protected
    designs, so the cap bounds a long-lived worker's footprint.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._states: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, key: str) -> bool:
        return key in self._states

    def stats(self) -> Dict[str, int]:
        """Counters snapshot: hits, misses, evictions, size."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._states)}

    def lease(self, task: Any) -> "tuple[Any, float, bool]":
        """State for ``task``: ``(state, setup_seconds, cache_hit)``.

        ``setup_seconds`` is the build cost paid by *this* lease --
        zero on a hit.  The state may be ``None`` for tasks without a
        warm path (the default ``build_worker_state``); such tasks are
        still memoized so repeat leases stay O(1).
        """
        key = task_state_key(task)
        if key in self._states:
            self._states.move_to_end(key)
            self.hits += 1
            return self._states[key], 0.0, True
        started = time.perf_counter()
        state = task.build_worker_state()
        setup = time.perf_counter() - started
        self.misses += 1
        self._states[key] = state
        while len(self._states) > self.max_entries:
            self._states.popitem(last=False)
            self.evictions += 1
        return state, setup, False

    def clear(self) -> None:
        """Drop every cached state (counters are kept)."""
        self._states.clear()


class FIFOChunkWorkspace:
    """Reusable Fig. 8 bench state for one FIFO-validation fingerprint.

    Owns the seed-independent heavy half of
    :class:`~repro.campaigns.tasks.FIFOValidationCampaignTask`'s chunk
    setup: the protected FIFO, the reference FIFO, the test bench, and
    (lazily, via the design's keyed engine cache) the engine instance
    with its workspaces.  :meth:`reseed` then makes the bench
    indistinguishable from a freshly built one for the given chunk
    seed:

    * every flip-flop of the DUT, the scan padding, and the reference
      FIFO is forced back to its pristine construction snapshot
      (power on, master and retention values) -- the scan-padding
      flops matter most, because injections can corrupt them and no
      test-bench stage ever resets them;
    * the power controller and power domain are rebuilt (their state
      machines and unbounded transition/wake logs must not leak
      across chunks -- nor survive a chunk that died mid-sleep);
    * the injector is rebuilt from ``child_seed(chunk_seed, "lfsr")``
      and the stimulus stream reseeded from ``child_seed(chunk_seed,
      "stimulus")``, the exact streams the cold path derives;
    * the corrector's event list is cleared.

    What deliberately survives: the design's engine cache (and with it
    the engine's workspaces and process-wide LUT memos) -- that is the
    amortization this class exists for.
    """

    def __init__(self, task: Any):
        self.task = task
        # Placeholder seed: the injector and stimulus built here are
        # thrown away by the first reseed(); only the seed-independent
        # structure built around them is kept.
        self.design, self.testbench = task._build_bench(0)
        if task.engine == "jit":
            # Pay kernel load/compile once per worker lifetime, inside
            # setup, never inside a timed chunk.
            from repro.engines.jit import warm_up_kernels
            warm_up_kernels()
        self._flops = (list(self.design.circuit.registers)
                       + list(self.design._padding)
                       + list(self.testbench.reference.registers))
        self._pristine = [(flop.q, flop.retention_value)
                          for flop in self._flops]
        self.chunks_run = 0

    def reseed(self, chunk_seed: int) -> None:
        """Restore the bench to its as-built state, seeded for one chunk."""
        from repro.core.controller import MonitoredPowerGatingController
        from repro.faults.injector import ScanErrorInjector
        from repro.power.domain import PowerDomain

        design = self.design
        for flop, (q0, retention0) in zip(self._flops, self._pristine):
            flop.power_on()
            flop.force(q0)
            flop.force_retention(retention0)
        design.controller = MonitoredPowerGatingController()
        # The task builds its design with default power-domain
        # configuration (no switches/rlc/upset-model override), so a
        # default-rebuilt domain is identical to a cold chunk's.
        design.domain = PowerDomain(design.circuit)
        design.injector = ScanErrorInjector(
            design.chains, lfsr_seed=child_seed(chunk_seed, "lfsr"))
        design.corrector.clear()
        self.testbench.stimulus.reset(
            seed=child_seed(chunk_seed, "stimulus"))
        self.chunks_run += 1


__all__ = [
    "ChunkTiming",
    "DEFAULT_MAX_ENTRIES",
    "FIFOChunkWorkspace",
    "WorkerStateCache",
    "task_state_key",
]
