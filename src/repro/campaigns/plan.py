"""Plan layer: the deterministic chunk plan as pure, immutable data.

A campaign's execution order, worker count and executor kind must never
change its statistics, so everything those layers consume is derived
from one pure value: the :class:`ChunkPlan`.  It is a function of the
``(root_seed, total_sequences, chunk_size)`` identity triple alone --
chunk boundaries from arithmetic, per-chunk seeds from the hash
splitting of :mod:`repro.campaigns.seeding` -- and it carries no
behaviour beyond bookkeeping queries.  The executor layer
(:mod:`repro.campaigns.executors`) turns plan entries into results; the
checkpoint layer (:mod:`repro.campaigns.checkpoints`) persists results
keyed by plan index; the scheduler (:mod:`repro.campaigns.scheduler`)
interleaves entries from many plans.  None of them re-derives seeds or
boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Tuple, Union

from repro.campaigns.seeding import spawn_seeds

RootSeed = Union[int, str]


class ChunkPlanEntry(NamedTuple):
    """One schedulable unit of campaign work.

    A plain tuple ``(index, chunk_seed, count)``: chunk ``index`` runs
    ``count`` sequences seeded from ``chunk_seed``.  Entries are what
    executors consume and what checkpoints key on.
    """

    index: int
    chunk_seed: int
    count: int


def default_chunk_size(total_sequences: int) -> int:
    """Default chunk size: ~64 chunks per campaign.

    Depends only on the total sequence count (worker-count independent,
    as required for determinism) and keeps enough chunks in flight to
    load-balance a typical worker pool while amortising per-chunk
    test-bench construction.
    """
    return max(1, math.ceil(total_sequences / 64))


def resolve_chunk_size(total_sequences: int, chunk_size: "int | None",
                       granularity: int = 1) -> int:
    """The effective chunk size of a campaign.

    An explicit ``chunk_size`` is always respected as-is; otherwise the
    default is rounded up to a multiple of the task's ``granularity``
    (e.g. a bit-plane batch size), so default-sized chunks never
    truncate every batch.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        return chunk_size
    granularity = max(1, granularity)
    base = default_chunk_size(total_sequences)
    return math.ceil(base / granularity) * granularity


@dataclass(frozen=True)
class ChunkPlan:
    """The full, immutable plan of one campaign.

    ``entries`` is the deterministic expansion of the identity triple
    ``(root_seed, total_sequences, chunk_size)``: chunk seeds are
    spawned by hash splitting from the root, only the final chunk may
    be short, and the counts sum exactly to ``total_sequences``.  Equal
    triples give equal plans -- that is the whole determinism story:
    any executor that runs every entry of the same plan and merges the
    results in index order produces bit-identical statistics.
    """

    root_seed: RootSeed
    total_sequences: int
    chunk_size: int
    entries: Tuple[ChunkPlanEntry, ...]

    @classmethod
    def build(cls, root_seed: RootSeed, total_sequences: int,
              chunk_size: int) -> "ChunkPlan":
        """Expand one identity triple into its plan."""
        if total_sequences <= 0:
            raise ValueError("the campaign needs at least one sequence")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        num_chunks = math.ceil(total_sequences / chunk_size)
        seeds = spawn_seeds(root_seed, num_chunks, "chunk")
        entries = []
        remaining = total_sequences
        for index, seed in enumerate(seeds):
            count = min(chunk_size, remaining)
            entries.append(ChunkPlanEntry(index, seed, count))
            remaining -= count
        return cls(root_seed=root_seed, total_sequences=total_sequences,
                   chunk_size=chunk_size, entries=tuple(entries))

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the plan."""
        return len(self.entries)

    @property
    def identity(self) -> Tuple[RootSeed, int, int]:
        """The ``(root_seed, total_sequences, chunk_size)`` triple the
        plan is a pure function of."""
        return (self.root_seed, self.total_sequences, self.chunk_size)

    def counts(self) -> Dict[int, int]:
        """Sequence count per chunk index."""
        return {entry.index: entry.count for entry in self.entries}

    def pending(self, completed) -> List[ChunkPlanEntry]:
        """Entries whose index is not in ``completed`` (a set or dict
        of chunk indices), in plan order."""
        return list(self.iter_pending(completed))

    def iter_pending(self, completed) -> Iterator[ChunkPlanEntry]:
        """Lazy :meth:`pending`: yields entries as consumed.

        The streaming feed for bounded-window executors -- a
        10^5-chunk plan's pending work reaches ``submit_jobs`` as an
        iterator, so only the executor's in-flight window is ever
        materialized as job tuples.
        """
        return (entry for entry in self.entries
                if entry.index not in completed)

    def __iter__(self) -> Iterator[ChunkPlanEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


__all__ = [
    "ChunkPlan",
    "ChunkPlanEntry",
    "default_chunk_size",
    "resolve_chunk_size",
]
