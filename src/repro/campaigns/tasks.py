"""Campaign tasks: picklable work descriptions for the sharded runner.

A task carries only plain parameters (geometry, code names, pattern
kind); the unpicklable simulation objects -- the protected design, the
FIFO test bench -- are built *inside* ``run_chunk`` in the worker
process, with all per-chunk random streams (stimulus data, error
placement, injector LFSRs) derived from the chunk seed via
:mod:`repro.campaigns.seeding`.  That is what makes chunks independent
and the campaign's result a pure function of the root seed and chunk
plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.campaigns.runner import CampaignTask
from repro.campaigns.seeding import child_seed
from repro.campaigns.stats import StreamingCampaignResult

#: Error patterns a validation task can inject per sequence.
VALIDATION_PATTERNS = ("single", "burst", "multiple", "none")


@dataclass(frozen=True)
class FIFOValidationCampaignTask(CampaignTask):
    """One chunk of a Fig. 8 FIFO validation campaign.

    Mirrors the paper's test bench: a protected ``width x depth``
    SyncFIFO (FIFO_A) against an error-free reference (FIFO_B), with
    one error pattern injected per sleep/wake sequence.

    Parameters
    ----------
    width, depth:
        FIFO geometry (the paper's case study is 32x32).
    codes:
        Monitoring code names (paper FPGA setup: Hamming(7,4)
        correction plus CRC-16 verification).
    num_chains:
        Scan chains ``W`` in monitoring mode.
    pattern:
        Per-sequence injection: ``"single"`` (Fig. 7(a)), ``"burst"``
        (clustered, Fig. 7(b)), ``"multiple"`` (uniform spread) or
        ``"none"`` (clean sequences).
    burst_size:
        Errors per sequence for the multi-error patterns.
    inject_phase:
        ``"sleep"`` corrupts the retention latches, ``"post_wake"``
        injects through the scan chains (Fig. 6).
    engine:
        Simulation engine override, validated against the registry of
        :mod:`repro.engines` (``"packed"`` for large per-sequence
        campaigns, ``"batched"`` together with ``batch_size`` for the
        bit-plane fast path); ``None`` keeps
        :class:`~repro.core.protected.ProtectedDesign`'s default.
    words_per_sequence:
        Words written in stage 2 of each sequence (default: half the
        FIFO depth).
    batch_size:
        When set, the chunk's sequences run in groups of this size
        through :meth:`~repro.validation.testbench.FIFOTestbench.\
run_sequence_batch`: one stimulus burst per group, one injection per
        sequence, and the state-domain comparator of
        :class:`~repro.validation.testbench.BatchSequenceResult`.  The
        statistics depend on ``batch_size`` (it sets the stimulus
        granularity) but **not** on the engine -- a batched campaign is
        bit-identical between ``engine="batched"`` and any scalar
        engine, which is what the CI smoke checks.  ``None`` keeps the
        historical per-sequence path (read-out comparator).
    sampler:
        ``"scalar"`` (default) draws patterns one at a time from a
        ``random.Random`` stream -- byte-for-byte the historical
        behaviour.  ``"array"`` draws each group's patterns in one
        vectorised call
        (:func:`repro.faults.batch.sample_pattern_batch`, numpy
        ``Generator`` seeded through the same hash-split chunk seeds)
        and, on engines with summary support, runs the group through
        the columnar summary path -- fault sampling to campaign
        counters with **no per-sequence Python object anywhere**.
        Engines without summary support transparently fall back to the
        object path on the same sampled patterns, so array-mode
        statistics are engine-independent and worker-count
        bit-identical; the two *modes* sample different (statistically
        equivalent) streams.  Requires ``batch_size`` and numpy.
    summary_path:
        Summary-path selection forwarded to the engine on the columnar
        path (array sampler + summary-capable engine): ``"auto"``
        (default) lets the engine pick between its sparse-delta fast
        path and the dense word pipeline by the batch's flip density;
        ``"delta"`` / ``"dense"`` force one side (useful for A/B
        benchmarking -- the paths are bit-identical, property-tested);
        ``"jit"`` forces the fused single-pass kernels of
        ``engine="jit"`` (only that engine provides it).
        Non-``"auto"`` values require ``sampler="array"`` (the object
        path has no path selection).  The field is part of the task
        fingerprint, so changing it invalidates checkpoints.
    """

    width: int = 32
    depth: int = 32
    codes: Tuple[str, ...] = ("hamming(7,4)", "crc16")
    num_chains: int = 80
    pattern: str = "single"
    burst_size: int = 4
    inject_phase: str = "sleep"
    engine: Optional[str] = None
    words_per_sequence: Optional[int] = None
    batch_size: Optional[int] = None
    sampler: str = "scalar"
    summary_path: str = "auto"

    def __post_init__(self) -> None:
        # Accept a bare code name the way ProtectedDesign does, rather
        # than letting tuple("crc16") explode it into characters.
        if isinstance(self.codes, str):
            object.__setattr__(self, "codes", (self.codes,))
        else:
            object.__setattr__(self, "codes", tuple(self.codes))
        if self.pattern not in VALIDATION_PATTERNS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; choose from "
                f"{VALIDATION_PATTERNS}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.sampler not in ("scalar", "array"):
            raise ValueError(
                f"unknown sampler {self.sampler!r}; choose 'scalar' or "
                f"'array'")
        if self.summary_path not in ("auto", "delta", "dense", "jit"):
            raise ValueError(
                f"unknown summary_path {self.summary_path!r}; choose "
                f"'auto', 'delta', 'dense' or 'jit'")
        if self.summary_path != "auto" and self.sampler != "array":
            raise ValueError(
                "summary_path selection needs the columnar summary "
                "path; set sampler='array' (and batch_size)")
        if self.sampler == "array":
            if self.batch_size is None:
                raise ValueError(
                    "sampler='array' draws whole groups at once and "
                    "needs batch_size")
            import importlib.util
            if importlib.util.find_spec("numpy") is None:
                raise ValueError(
                    "sampler='array' requires numpy (the [simd] "
                    "packaging extra)")
        if self.engine is not None:
            # Validate eagerly (against the engine registry) so a typo
            # fails at task construction, not inside a worker process;
            # keep the canonical spelling so case variants of the same
            # campaign share one checkpoint fingerprint.
            from repro.engines.registry import validate_engine
            object.__setattr__(self, "engine", validate_engine(self.engine))

    def empty_result(self) -> StreamingCampaignResult:
        return StreamingCampaignResult()

    def chunk_granularity(self) -> int:
        """Default chunk sizes align to whole batches, so the bit-plane
        engine's amortization survives the runner's chunking."""
        return self.batch_size if self.batch_size is not None else 1

    def _pattern_factory(self, num_chains: int, chain_length: int):
        from repro.faults.patterns import (
            burst_error_pattern,
            multi_error_pattern,
            single_error_pattern,
        )
        if self.pattern == "single":
            return lambda rng: single_error_pattern(num_chains, chain_length,
                                                    rng)
        if self.pattern == "burst":
            return lambda rng: burst_error_pattern(num_chains, chain_length,
                                                   self.burst_size, rng)
        if self.pattern == "multiple":
            return lambda rng: multi_error_pattern(num_chains, chain_length,
                                                   self.burst_size, rng)
        return lambda rng: None

    def _build_bench(self, chunk_seed: int):
        """Build the protected design + test bench for one chunk seed.

        The construction half of :meth:`run_chunk`; the warm-pool
        :class:`~repro.campaigns.worker_cache.FIFOChunkWorkspace` calls
        it once per worker (with a placeholder seed -- its ``reseed``
        re-derives the seed-dependent parts per chunk) and the cold
        path calls it per chunk, so both paths are built by the same
        code.
        """
        # Heavy imports stay inside the worker-side call so the task
        # module itself is import-cycle-free and cheap to pickle.
        from repro.circuit.fifo import SyncFIFO
        from repro.core.protected import ProtectedDesign
        from repro.validation.testbench import FIFOTestbench

        fifo = SyncFIFO(self.width, self.depth,
                        name=f"fifo{self.width}x{self.depth}")
        engine_kwargs: Dict[str, Any] = \
            {} if self.engine is None else {"engine": self.engine}
        design = ProtectedDesign(
            fifo, codes=list(self.codes), num_chains=self.num_chains,
            lfsr_seed=child_seed(chunk_seed, "lfsr"), **engine_kwargs)
        testbench = FIFOTestbench(
            design, words_per_sequence=self.words_per_sequence,
            seed=child_seed(chunk_seed, "stimulus"))
        return design, testbench

    def run_chunk(self, chunk_seed: int,
                  num_sequences: int) -> StreamingCampaignResult:
        """Build a fresh test bench and run one chunk of sequences."""
        design, testbench = self._build_bench(chunk_seed)
        return self._run_sequences(design, testbench, chunk_seed,
                                   num_sequences)

    def build_worker_state(self):
        """Warm-pool state: one reusable bench per task fingerprint."""
        from repro.campaigns.worker_cache import FIFOChunkWorkspace
        return FIFOChunkWorkspace(self)

    def run_chunk_warm(self, state, chunk_seed: int,
                       num_sequences: int) -> StreamingCampaignResult:
        """Run one chunk on a cached workspace, bit-identical to
        :meth:`run_chunk`.

        ``state.reseed`` restores the bench to its as-built state and
        re-derives every seed-dependent stream from ``chunk_seed``
        exactly as :meth:`_build_bench` would, so only construction
        cost differs between the warm and cold paths.
        """
        state.reseed(chunk_seed)
        return self._run_sequences(state.design, state.testbench,
                                   chunk_seed, num_sequences)

    def _run_sequences(self, design, testbench, chunk_seed: int,
                       num_sequences: int) -> StreamingCampaignResult:
        """The chunk's sequence loop, shared by the cold and warm paths."""
        import random

        if self.sampler == "array":
            return self._run_chunk_array(chunk_seed, num_sequences, design,
                                         testbench)
        factory = self._pattern_factory(design.num_chains,
                                        design.chain_length)
        rng = random.Random(child_seed(chunk_seed, "pattern"))

        result = StreamingCampaignResult()
        if self.batch_size is None:
            for _ in range(num_sequences):
                sequence = testbench.run_sequence(factory(rng),
                                                  self.inject_phase)
                result.add(sequence)
            return result

        # Batch-aware chunk execution: the chunk's sequences run in
        # groups of batch_size (last group short), each group sharing
        # one stimulus burst and one bit-plane (or fallback) pass.
        remaining = num_sequences
        while remaining:
            group = min(self.batch_size, remaining)
            remaining -= group
            patterns = [factory(rng) for _ in range(group)]
            for sequence in testbench.run_sequence_batch(
                    patterns, self.inject_phase):
                result.add(sequence)
        return result

    def _run_chunk_array(self, chunk_seed: int, num_sequences: int,
                         design, testbench) -> StreamingCampaignResult:
        """Array-mode chunk execution: vectorised sampling, columnar
        counters.

        Each group's patterns are drawn in one
        :func:`~repro.faults.batch.sample_pattern_batch` call from a
        numpy ``Generator`` seeded exactly like the scalar pattern
        stream (``child_seed(chunk_seed, "pattern")``), so array-mode
        campaigns are bit-identical for any worker count.  On a
        summary-capable engine the group runs through the columnar
        path (:meth:`~repro.validation.testbench.FIFOTestbench.\
run_sequence_batch_summary` ->
        :meth:`~repro.campaigns.stats.StreamingCampaignResult.add_batch`);
        otherwise the same sampled patterns run through the object
        path, producing bit-identical counters (property-tested).
        """
        import numpy as np

        from repro.faults.batch import sample_pattern_batch

        rng = np.random.default_rng(child_seed(chunk_seed, "pattern"))
        use_summary = design.supports_batch_summary
        if self.summary_path != "auto" and not use_summary:
            raise ValueError(
                f"summary_path={self.summary_path!r} was forced but "
                f"engine {self.engine!r} has no columnar summary "
                f"support; the object fallback has no path selection")
        result = StreamingCampaignResult()
        remaining = num_sequences
        while remaining:
            group = min(self.batch_size, remaining)
            remaining -= group
            sampled = sample_pattern_batch(
                self.pattern, design.num_chains, design.chain_length,
                group, rng, num_errors=self.burst_size)
            if use_summary:
                arrays = testbench.run_sequence_batch_summary(
                    sampled, group, self.inject_phase,
                    path=self.summary_path)
                result.add_batch(arrays)
            else:
                for sequence in testbench.run_sequence_batch(
                        sampled.patterns(), self.inject_phase):
                    result.add(sequence)
        return result


__all__ = ["FIFOValidationCampaignTask", "VALIDATION_PATTERNS"]
