"""Scheduler layer: many campaigns over one shared executor.

The campaign-as-a-service direction needs exactly three things on top
of the plan/executor/checkpoint layers: a **job queue** (many ``(task,
total_sequences, seed)`` campaigns in flight at once), **fair-share
dispatch** (a huge batch sweep must not starve small interactive
queries -- pending chunks are interleaved round-robin across jobs, one
chunk from each job in turn, over one shared executor), and a **result
cache** (merged statistics memoized on ``(task.fingerprint(),
root_seed, total_sequences, chunk_size)``, so a repeated request for
the same curve returns without executing a single chunk).
:class:`CampaignScheduler` is those three things and nothing else; it
reuses the runner's determinism story wholesale, because each job's
merged result depends only on its own :class:`~repro.campaigns.plan.\
ChunkPlan`, never on what it was interleaved with.

Typical use::

    scheduler = CampaignScheduler(num_workers=4)
    single = scheduler.submit(single_task, 10**6, seed=1)
    burst = scheduler.submit(burst_task, 10**6, seed=2)
    scheduler.run()                  # both campaigns share the pool
    single.result, burst.result      # merged statistics per job
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.campaigns.checkpoints import CHECKPOINT_FORMAT, CheckpointStore
from repro.campaigns.executors import ChunkExecutor, resolve_executor
from repro.campaigns.plan import ChunkPlan, resolve_chunk_size
from repro.campaigns.runner import (
    CampaignProgress,
    CampaignTask,
    ProgressCallback,
)

#: Memoization key of one campaign's merged result.
CacheKey = Tuple[str, Union[int, str], int, int]


class CampaignJob:
    """One submitted campaign: its plan, its state, and its result.

    Created by :meth:`CampaignScheduler.submit`; after
    :meth:`CampaignScheduler.run` returns, :attr:`result` holds the
    merged statistics.  ``from_cache`` is True when the scheduler
    served the result from its memo without executing any chunk.
    """

    def __init__(self, job_id: int, task: CampaignTask, plan: ChunkPlan,
                 checkpoint_path: Optional[str], save_interval: int,
                 progress_callback: Optional[ProgressCallback]):
        self.job_id = job_id
        self.task = task
        self.plan = plan
        self.progress_callback = progress_callback
        self.store = CheckpointStore(checkpoint_path,
                                     save_interval=save_interval)
        self.completed: Dict[int, Any] = {}
        self.result: Any = None
        self.done = False
        self.from_cache = False
        #: Cumulative worker-side setup/compute seconds of this job's
        #: chunks, from executors that report per-chunk timing (the
        #: warm pools); stays 0.0 elsewhere.
        self.setup_seconds = 0.0
        self.compute_seconds = 0.0
        self._counts = plan.counts()
        self._restored = 0
        self._started = 0.0

    @property
    def cache_key(self) -> CacheKey:
        return (self.task.fingerprint(),) + self.plan.identity

    @property
    def root_seed(self) -> Union[int, str]:
        """The job's effective campaign root seed."""
        return self.plan.root_seed

    @property
    def sequences_completed(self) -> int:
        return sum(self._counts[i] for i in self.completed)

    def _header(self) -> Dict[str, Any]:
        return {
            "format": CHECKPOINT_FORMAT,
            "total_sequences": self.plan.total_sequences,
            "chunk_size": self.plan.chunk_size,
            "root_seed": self.plan.root_seed,
            "task": self.task.fingerprint(),
        }

    def _restore(self) -> None:
        """Load this job's checkpoint (validated) and adopt its chunks."""
        payload = self.store.load_payload()
        if payload is not None:
            try:
                self.store.validate(payload, self._header())
            except ValueError as exc:
                raise ValueError(
                    f"checkpoint {self.store.path!r} {exc}") from None
            self.completed = self.store.restore_completed(
                payload, self.task.result_from_dict)
        self._restored = self.sequences_completed
        self.store.attach(self._header(), self.completed)

    def _progress(self, chunk_index: int,
                  from_checkpoint: bool = False) -> CampaignProgress:
        return CampaignProgress(
            chunk_index=chunk_index,
            chunks_completed=len(self.completed),
            num_chunks=self.plan.num_chunks,
            sequences_completed=self.sequences_completed,
            total_sequences=self.plan.total_sequences,
            from_checkpoint=from_checkpoint,
            elapsed=time.perf_counter() - self._started,
            sequences_restored=self._restored,
            setup_seconds=self.setup_seconds,
            compute_seconds=self.compute_seconds)

    def _emit(self, chunk_index: int, from_checkpoint: bool = False) -> None:
        if self.progress_callback is not None:
            self.progress_callback(self._progress(chunk_index,
                                                  from_checkpoint))

    def _merge(self) -> Any:
        merged = self.task.empty_result()
        for index in sorted(self.completed):
            merged.merge(self.completed[index])
        return merged


class CampaignScheduler:
    """Run many campaign jobs fair-share over one shared executor.

    Parameters
    ----------
    executor:
        ``None`` (inline for ``num_workers == 1``, processes
        otherwise), an executor-kind string, or a
        :class:`~repro.campaigns.executors.ChunkExecutor`; every job
        submitted to this scheduler shares it.  The scheduler is the
        natural home of the warm kinds: with
        ``executor="process-warm"`` every ``run()`` round -- and
        every job within a round -- reuses one hot pool with its
        worker-side state caches (close with :meth:`close` or use the
        scheduler as a context manager).  A pre-built persistent
        executor can also be passed in to share one pool across
        several schedulers/runners; its lifecycle then stays with the
        caller.
    num_workers, start_method:
        Sizing of the default/string-spec executor, as in
        :class:`~repro.campaigns.runner.ShardedCampaignRunner`.
    save_interval:
        Default checkpoint flush interval for jobs that do not pass
        their own (see :class:`~repro.campaigns.checkpoints.\
CheckpointStore`).

    Calling :meth:`run` executes every submitted-but-unfinished job's
    pending chunks, interleaved round-robin (chunk 0 of job A, chunk 0
    of job B, chunk 1 of job A, ...), so all jobs make proportional
    progress no matter how lopsided their sizes -- no job starves.
    Finished results are memoized; submitting an identical campaign
    (same task fingerprint, root seed, total and chunk size) again
    marks the job ``from_cache`` and :meth:`run` completes it without
    executing any chunk.
    """

    def __init__(self, executor: "ChunkExecutor | str | None" = None,
                 num_workers: int = 1,
                 start_method: Optional[str] = None,
                 save_interval: int = 1):
        # An executor resolved from a spec (None or a kind string) is
        # this scheduler's to tear down in close(); a pre-built
        # instance -- e.g. one warm pool shared between schedulers --
        # belongs to the caller.
        self._owns_executor = executor is None or isinstance(executor, str)
        self._executor = resolve_executor(executor, num_workers,
                                          start_method=start_method)
        self._save_interval = save_interval
        self._jobs: List[CampaignJob] = []
        self._cache: Dict[CacheKey, Any] = {}

    @property
    def executor(self) -> ChunkExecutor:
        """The shared executor every job fans out over."""
        return self._executor

    @property
    def jobs(self) -> Tuple[CampaignJob, ...]:
        """Every job ever submitted, in submission order."""
        return tuple(self._jobs)

    # ------------------------------------------------------------------
    def submit(self, task: CampaignTask, total_sequences: int,
               seed: Optional[Union[int, str]] = None,
               chunk_size: Optional[int] = None,
               checkpoint_path: Optional[str] = None,
               save_interval: Optional[int] = None,
               progress_callback: Optional[ProgressCallback] = None
               ) -> CampaignJob:
        """Queue one campaign; returns its :class:`CampaignJob`.

        Parameters mirror the runner's constructor.  ``seed=None``
        draws a random root (such jobs can never hit the cache).  The
        job does not execute until :meth:`run`.
        """
        root = (random.SystemRandom().getrandbits(64)
                if seed is None else seed)
        size = resolve_chunk_size(total_sequences, chunk_size,
                                  granularity=max(
                                      1, task.chunk_granularity()))
        job = CampaignJob(
            job_id=len(self._jobs), task=task,
            plan=ChunkPlan.build(root, total_sequences, size),
            checkpoint_path=checkpoint_path,
            save_interval=(self._save_interval if save_interval is None
                           else save_interval),
            progress_callback=progress_callback)
        if job.cache_key in self._cache:
            # Serve a private copy rebuilt through the task's own
            # serialization, so one client mutating its result cannot
            # corrupt the memo (or another client's copy).
            job.result = task.result_from_dict(
                self._cache[job.cache_key].to_dict())
            job.done = True
            job.from_cache = True
        self._jobs.append(job)
        return job

    def run(self) -> List[Any]:
        """Execute all unfinished jobs; return every job's result,
        in submission order (cached jobs included)."""
        active = [job for job in self._jobs if not job.done]
        for job in active:
            job._started = time.perf_counter()
            job._restore()
            if job.completed:
                job._emit(max(job.completed), from_checkpoint=True)

        # Fair-share dispatch order: one pending chunk from each
        # active job per round.  Executors consume jobs in submission
        # order, so every job advances proportionally.  The feed is a
        # generator: streaming executors pull rounds into their
        # bounded window as capacity frees up, so a huge job mix is
        # never materialized as one flat list.
        queues = [(job, job.plan.pending(job.completed)) for job in active]

        def interleaved():
            round_index = 0
            while True:
                emitted = False
                for job, pending in queues:
                    if round_index < len(pending):
                        yield (job, pending[round_index], job.task)
                        emitted = True
                if not emitted:
                    return
                round_index += 1

        try:
            for job, index, result in self._executor.submit_jobs(
                    interleaved()):
                timing = getattr(self._executor, "last_chunk_timing",
                                 None)
                if timing is not None:
                    job.setup_seconds += timing.setup_seconds
                    job.compute_seconds += timing.compute_seconds
                job.store.record(index, result)
                job._emit(index)
        finally:
            for job in active:
                job.store.flush()

        for job in active:
            if len(job.completed) == job.plan.num_chunks:
                job.result = job._merge()
                job.done = True
                self._cache[job.cache_key] = job.task.result_from_dict(
                    job.result.to_dict())
        return [job.result for job in self._jobs]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the scheduler's executor, if the scheduler owns it.

        ``run()`` deliberately does **not** tear the executor down --
        with a warm spec (``executor="process-warm"``) the whole point
        is that later ``submit``/``run`` rounds reuse the hot pool.
        Call this (or use the scheduler as a context manager) when the
        scheduler is done for good.  Executors passed in as pre-built
        instances are left running for their owner.
        """
        if self._owns_executor and hasattr(self._executor, "close"):
            self._executor.close()

    def __enter__(self) -> "CampaignScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = ["CampaignJob", "CampaignScheduler"]
