"""Deterministic seed-splitting for sharded campaigns.

Large campaigns need one independent random stream per shard (and per
curve, per error count, ...).  Deriving those streams as ``seed +
offset`` is unsound: the offsets of two different consumers can
collide (e.g. curve 2 at offset 0 and curve 1 at offset 1), silently
correlating Monte-Carlo samples that the statistics assume are
independent.  NumPy solved this with ``SeedSequence.spawn``; this
module is the dependency-free equivalent.

A child seed is the leading 64 bits of a SHA-256 hash over the root
seed and a *path* of identifiers, each path element encoded with a type
tag and a length prefix so that distinct paths can never produce the
same byte string (``("ab", "c")`` vs ``("a", "bc")``, ``1`` vs
``"1"``).  Children are therefore:

* **deterministic** -- same root and path, same seed, on any platform
  (the derivation never consults global RNG state);
* **independent-by-construction** -- collisions between different
  paths are as likely as a SHA-256 collision;
* **hierarchical** -- a child seed can serve as the root of its own
  subtree (the sharded runner derives per-chunk seeds from a campaign
  root that is itself a child of the user's seed).
"""

from __future__ import annotations

import hashlib
from typing import List, Union

PathElement = Union[int, str]

#: Child seeds are 64-bit: ``random.Random`` accepts arbitrary ints,
#: and 64 bits keeps them JSON/checkpoint friendly and collision-safe
#: for any realistic campaign size.
SEED_BITS = 64


def _encode_element(value: PathElement) -> bytes:
    """Unambiguous byte encoding of one path element."""
    if isinstance(value, bool):  # bool is an int subclass; reject it
        raise TypeError("path elements must be int or str, not bool")
    if isinstance(value, int):
        payload = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                                 "big", signed=True)
        tag = b"i"
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        tag = b"s"
    else:
        raise TypeError(
            f"path elements must be int or str, got {type(value).__name__}")
    return tag + len(payload).to_bytes(4, "big") + payload


def child_seed(root: PathElement, *path: PathElement) -> int:
    """Derive one child seed from ``root`` along ``path``.

    ``root`` and every path element may be an int or a str.  Returns a
    uniform 64-bit integer.
    """
    digest = hashlib.sha256()
    digest.update(b"repro.campaigns.seeding/v1")
    digest.update(_encode_element(root))
    for element in path:
        digest.update(_encode_element(element))
    return int.from_bytes(digest.digest()[:SEED_BITS // 8], "big")


def spawn_seeds(root: PathElement, count: int,
                *path: PathElement) -> List[int]:
    """Derive ``count`` independent child seeds ``root/path/0..count-1``.

    This is the sharded runner's per-chunk seed source: the chunk plan
    (and hence every chunk's seed) depends only on the campaign root
    seed and the chunk index, never on the worker count, which is what
    makes sharded results bit-identical for any parallelism.
    """
    if count < 0:
        raise ValueError("cannot spawn a negative number of seeds")
    return [child_seed(root, *path, index) for index in range(count)]


__all__ = ["child_seed", "spawn_seeds", "SEED_BITS"]
