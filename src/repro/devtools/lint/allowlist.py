"""The explicit allowlist of sanctioned rule violations.

Every entry names the rule it silences, the file it applies to, a
snippet that must appear on the flagged source line, and a written
justification.  There is deliberately no way to skip a whole file or a
whole rule: an entry matches exactly one kind of line in exactly one
file, so a new violation of the same rule in the same file still
fails.  Entries that match nothing are themselves reported (a stale
entry usually means the sanctioned code was refactored and the lint
exemption should move or die with it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.devtools.lint.findings import Finding, SourceFile


@dataclass(frozen=True)
class Allow:
    """One sanctioned violation.

    ``path`` matches on the project-relative path's suffix (so the
    same entry works when the tree is scanned as ``src/`` or as
    ``repro/``); ``snippet`` must occur verbatim on the flagged line.
    """

    rule: str
    path: str
    snippet: str
    justification: str

    def matches(self, finding: Finding, line_text: str) -> bool:
        return (finding.rule == self.rule
                and finding.path.endswith(self.path)
                and self.snippet in line_text)


#: The project's sanctioned violations.  Keep this list short and every
#: justification honest -- the linter reports unused entries.
DEFAULT_ALLOWLIST: Tuple[Allow, ...] = (
    Allow(
        rule="determinism",
        path="campaigns/runner.py",
        snippet="random.SystemRandom().getrandbits(64)",
        justification=(
            "sanctioned root-seed draw: seed=None explicitly asks for a "
            "fresh random campaign root; the draw happens once, in the "
            "parent, and the drawn root is recorded in the checkpoint "
            "header so resume/replay stay deterministic"),
    ),
    Allow(
        rule="determinism",
        path="campaigns/scheduler.py",
        snippet="random.SystemRandom().getrandbits(64)",
        justification=(
            "sanctioned root-seed draw, the scheduler-side twin of the "
            "runner's: seed=None jobs get a fresh random root (and are "
            "exempt from the result cache); all chunk seeds still "
            "derive deterministically from the drawn root"),
    ),
    Allow(
        rule="determinism",
        path="faults/patterns.py",
        snippet="return random.Random()",
        justification=(
            "interactive convenience fallback, consolidated in "
            "_unseeded_rng(): the pattern factories accept rng=None for "
            "exploratory one-off use; every campaign/test path injects "
            "a seeded Random derived from the chunk seed"),
    ),
)


@dataclass
class AllowlistResult:
    """Outcome of applying an allowlist to raw findings."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Allow]] = field(default_factory=list)
    unused: List[Allow] = field(default_factory=list)


def apply_allowlist(findings: Iterable[Finding],
                    files: Iterable[SourceFile],
                    allowlist: Iterable[Allow]) -> AllowlistResult:
    """Split findings into kept and suppressed; surface stale entries.

    An unused entry becomes a finding of rule ``allowlist`` so the
    exemption list can never silently outlive the code it excuses.
    """
    sources = {file.relpath: file for file in files}
    allowlist = list(allowlist)
    used = set()
    result = AllowlistResult()
    for finding in findings:
        file = sources.get(finding.path)
        line_text = file.line(finding.line) if file is not None else ""
        for position, allow in enumerate(allowlist):
            if allow.matches(finding, line_text):
                used.add(position)
                result.suppressed.append((finding, allow))
                break
        else:
            result.findings.append(finding)
    scanned = {file.relpath for file in sources.values()}
    for position, allow in enumerate(allowlist):
        if position in used:
            continue
        # Only report staleness when the entry's file was part of this
        # scan; linting a fixture directory must not flag the project
        # allowlist as stale.
        if any(relpath.endswith(allow.path) for relpath in scanned):
            result.unused.append(allow)
            result.findings.append(Finding(
                rule="allowlist", path=allow.path, line=0,
                message=(f"unused allowlist entry for rule "
                         f"{allow.rule!r} (snippet {allow.snippet!r} "
                         f"matched no finding); remove or update it")))
    return result


__all__ = ["Allow", "AllowlistResult", "DEFAULT_ALLOWLIST",
           "apply_allowlist"]
