"""Core data model of the project linter.

A rule inspects the parsed source tree (and, for the reflection-backed
rules, the live registries of the imported :mod:`repro` package) and
yields :class:`Finding` objects; the runner collects them, subtracts
the explicit allowlist, and renders the rest.  Everything here is pure
standard library so the linter runs on the dependency-free core
install.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``rule`` is the stable rule identifier (``"determinism"``,
    ``"dtype"``, ...) the allowlist keys on; ``path`` is the file the
    violation lives in (project-relative where possible) and ``line``
    its 1-based line number, 0 for project-wide findings that have no
    single source location.
    """

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """One parsed file of the scanned tree."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return cls(path=path, relpath=relpath, source=source,
                   tree=ast.parse(source, filename=str(path)))

    def line(self, lineno: int) -> str:
        """The 1-based source line (for allowlist snippet matching)."""
        lines = self.source.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


@dataclass
class Project:
    """Everything a rule may look at: the parsed files of one scan."""

    root: Path
    files: List[SourceFile] = field(default_factory=list)

    def finding(self, rule: str, file: SourceFile, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=rule, path=file.relpath,
                       line=getattr(node, "lineno", 0), message=message)


class Rule:
    """Base class of one lint rule.

    ``check_file`` runs once per parsed file; ``check_project`` runs
    once per scan, after every file was visited -- the reflection-backed
    rules (engine registry, code classes) live there.  Either may be a
    no-op.
    """

    #: Stable identifier, used in output and allowlist entries.
    id: str = ""
    #: One-line description shown by ``--list-rules``.
    description: str = ""

    def check_file(self, project: Project,
                   file: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to scan, sorted."""
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(
                f"{path}: not a Python file or directory")


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_keywords(node: ast.Call) -> dict:
    """Keyword arguments of a call as ``{name: value-node}``."""
    return {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}


def import_aliases(tree: ast.Module, module: str) -> Tuple[set, set]:
    """Names a module and its members are bound to in one file.

    Returns ``(module_aliases, member_aliases)``: ``import random as r``
    puts ``"r"`` in the first set; ``from random import randint as ri``
    puts ``("ri", "randint")`` pairs in the second (as tuples of bound
    name and original member name).
    """
    module_aliases = set()
    member_aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    module_aliases.add(alias.asname or alias.name)
                elif alias.name.startswith(module + "."):
                    # ``import numpy.random`` binds ``numpy``.
                    module_aliases.add((alias.asname or
                                        alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module == module:
                for alias in node.names:
                    member_aliases.add((alias.asname or alias.name,
                                        alias.name))
    return module_aliases, member_aliases


def class_methods(node: ast.ClassDef) -> set:
    """Names of the functions defined directly in a class body."""
    return {item.name for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))}


def decorator_names(node: ast.ClassDef) -> set:
    """Dotted names of a class's decorators (call or bare)."""
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.add(name)
    return names


def unique_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Drop duplicates, keep (path, line, rule) order stable."""
    seen = set()
    out = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            out.append(finding)
    return sorted(out, key=lambda f: (f.path, f.line, f.rule))


__all__ = [
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "call_keywords",
    "class_methods",
    "decorator_names",
    "dotted_name",
    "import_aliases",
    "iter_python_files",
    "unique_findings",
]
