"""``repro.devtools.lint`` -- the project-invariant static analyzer.

Run it over the source tree::

    python -m repro.devtools.lint src/          # or: repro-lint src/

Exit status 0 means no findings; 1 means findings were printed; 2 is a
usage error.  The rules encode invariants specific to this project --
see each module in :mod:`repro.devtools.lint.rules` -- and the
sanctioned exceptions live in the explicit allowlist of
:mod:`repro.devtools.lint.allowlist` (never a blanket file or rule
skip).  The tier-1 suite runs the same scan as a pytest check
(``tests/devtools/test_tree_clean.py``), so CI fails on findings twice
over.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.devtools.lint.allowlist import (
    DEFAULT_ALLOWLIST,
    Allow,
    AllowlistResult,
    apply_allowlist,
)
from repro.devtools.lint.findings import (
    Finding,
    Project,
    Rule,
    SourceFile,
    iter_python_files,
    unique_findings,
)


def scan(paths: Sequence[Path]) -> Project:
    """Parse the tree and attach it to a :class:`Project`."""
    roots = [path if path.is_dir() else path.parent for path in paths]
    root = Path(roots[0]) if roots else Path.cwd()
    project = Project(root=root)
    for file_path in iter_python_files(paths):
        project.files.append(SourceFile.parse(file_path, root))
    return project


def run_rules(project: Project,
              rules: Optional[Sequence[Rule]] = None,
              reflection: bool = True) -> List[Finding]:
    """All raw findings of ``rules`` over a scanned project."""
    if rules is None:
        from repro.devtools.lint.rules import ALL_RULES
        rules = ALL_RULES
    findings: List[Finding] = []
    for rule in rules:
        for file in project.files:
            findings.extend(rule.check_file(project, file))
        if reflection:
            findings.extend(rule.check_project(project))
    return unique_findings(findings)


def run_lint(paths: Sequence[Path],
             rules: Optional[Sequence[Rule]] = None,
             allowlist: Optional[Iterable[Allow]] = None,
             reflection: bool = True) -> AllowlistResult:
    """Scan, run every rule, and apply the allowlist.

    This is the library entry point the pytest check and the CLI
    share; ``result.findings`` is what fails the build.
    """
    project = scan(paths)
    raw = run_rules(project, rules=rules, reflection=reflection)
    entries = DEFAULT_ALLOWLIST if allowlist is None else allowlist
    return apply_allowlist(raw, project.files, entries)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("Project-invariant static analyzer: determinism, "
                     "engine capability consistency, fingerprint "
                     "completeness, uint64 dtype discipline, task "
                     "pickle-safety, getattr-string drift."))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--no-allowlist", action="store_true",
        help="report sanctioned findings too (audit mode)")
    parser.add_argument(
        "--no-reflection", action="store_true",
        help="skip the reflection passes over the live registries")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rules and exit")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line (findings still print)")
    options = parser.parse_args(argv)

    from repro.devtools.lint.rules import ALL_RULES, rules_by_id
    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}: {rule.description}")
        return 0

    rules: Sequence[Rule] = ALL_RULES
    if options.select:
        table = rules_by_id()
        selected = [token.strip() for token in options.select.split(",")
                    if token.strip()]
        unknown = [token for token in selected if token not in table]
        if unknown:
            parser.error(
                f"unknown rule(s) {', '.join(unknown)}; choose from "
                f"{', '.join(table)}")
        rules = [table[token] for token in selected]

    paths = [Path(path) for path in options.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        parser.error(f"no such path: "
                     f"{', '.join(str(p) for p in missing)}")

    allowlist: Iterable[Allow] = \
        () if options.no_allowlist else DEFAULT_ALLOWLIST
    result = run_lint(paths, rules=rules, allowlist=allowlist,
                      reflection=not options.no_reflection)
    for finding in result.findings:
        print(finding.render())
    if not options.quiet:
        scanned = sum(1 for _ in iter_python_files(paths))
        suppressed = (f", {len(result.suppressed)} allowlisted"
                      if result.suppressed else "")
        print(f"repro-lint: {len(result.findings)} finding(s) in "
              f"{scanned} file(s){suppressed}", file=sys.stderr)
    return 1 if result.findings else 0


__all__ = ["main", "run_lint", "run_rules", "scan"]
