"""``python -m repro.devtools.lint`` entry point."""

import sys

from repro.devtools.lint import main

if __name__ == "__main__":
    sys.exit(main())
