"""Rule ``determinism``: no hidden entropy in the deterministic layers.

The campaign subsystem promises bit-identical statistics for any
worker count, executor kind and engine; that only holds while every
random draw flows from an injected seed.  Inside the deterministic
packages (``engines``, ``campaigns``, ``faults``, ``codes``) this rule
flags every construct that smuggles ambient state into a result:

* calls on the :mod:`random` module's hidden global instance
  (``random.random()``, ``random.randint()``, ...), including
  ``from random import randint`` forms;
* unseeded ``random.Random()`` instances and any
  ``random.SystemRandom`` use (OS entropy is nondeterministic by
  definition -- the two sanctioned root-seed draws are carried by the
  explicit allowlist, not by this rule);
* numpy's legacy global generator (``np.random.seed/rand/...``) and
  unseeded ``np.random.default_rng()``;
* wall-clock reads (``time.time()``, ``datetime.now()`` and friends)
  -- monotonic telemetry clocks (``time.perf_counter``) are fine, they
  never feed results;
* direct iteration over freshly-built sets (``for x in set(...)``,
  ``list({...})``): set order depends on hash randomization for str
  keys, so anything order-sensitive must sort first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
    import_aliases,
)

#: Directory names whose files carry the determinism guarantee.
SCOPED_PACKAGES = ("engines", "campaigns", "faults", "codes")

#: Methods of the random module's global instance.
GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "getrandbits", "uniform",
    "triangular", "choice", "choices", "sample", "shuffle", "seed",
    "gauss", "normalvariate", "lognormvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "vonmisesvariate",
    "weibullvariate", "randbytes", "binomialvariate", "setstate",
})

#: Legacy numpy global-state entry points (np.random.<fn>).
NUMPY_GLOBAL_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "random_integers", "ranf", "sample", "choice", "shuffle",
    "permutation", "uniform", "normal", "standard_normal", "bytes",
    "get_state", "set_state", "binomial", "poisson", "exponential",
})

#: Wall-clock reads (module or class attribute, final component).
CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}


def in_scope(file: SourceFile) -> bool:
    """True when the file lives in a determinism-scoped package."""
    parts = file.relpath.split("/")[:-1]
    return any(part in SCOPED_PACKAGES for part in parts)


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset") and bool(node.args)
    return False


class DeterminismRule(Rule):
    id = "determinism"
    description = ("no global RNG state, unseeded generators, wall-clock "
                   "reads or set-iteration order in engines/, campaigns/, "
                   "faults/, codes/")

    def check_file(self, project: Project,
                   file: SourceFile) -> Iterator[Finding]:
        if not in_scope(file):
            return
        random_mods, random_members = import_aliases(file.tree, "random")
        numpy_mods, _ = import_aliases(file.tree, "numpy")
        _, npr_members = import_aliases(file.tree, "numpy.random")
        npr_mods, _ = import_aliases(file.tree, "numpy.random")
        member_map = {bound: original
                      for bound, original in random_members}
        npr_member_map = {bound: original
                          for bound, original in npr_members}

        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    project, file, node, random_mods, member_map,
                    numpy_mods, npr_mods, npr_member_map)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_set_iteration(project, file,
                                                     node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for generator in node.generators:
                    yield from self._check_set_iteration(project, file,
                                                         generator.iter)

    # ------------------------------------------------------------------
    def _check_call(self, project: Project, file: SourceFile,
                    node: ast.Call, random_mods, member_map,
                    numpy_mods, npr_mods, npr_member_map
                    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")

        # list({...}) / tuple(set(...)): materializes the hash order.
        if name in ("list", "tuple", "enumerate") and node.args \
                and _is_set_expression(node.args[0]):
            yield from self._check_set_iteration(project, file,
                                                 node.args[0])

        # random.<fn>() on the module's global instance.
        if len(parts) == 2 and parts[0] in random_mods:
            if parts[1] in GLOBAL_RANDOM_FNS:
                yield project.finding(
                    self.id, file, node,
                    f"call to the random module's global instance "
                    f"({name}()); draw from an injected seeded "
                    f"random.Random instead")
            elif parts[1] == "Random" and not node.args:
                yield project.finding(
                    self.id, file, node,
                    "unseeded random.Random(): results will differ "
                    "between runs; derive the seed from the campaign "
                    "root (repro.campaigns.seeding.child_seed)")
            elif parts[1] == "SystemRandom":
                yield project.finding(
                    self.id, file, node,
                    "random.SystemRandom draws OS entropy; only the "
                    "allowlisted root-seed draws may do this")
        # from random import randint/...; bare calls.
        elif len(parts) == 1 and parts[0] in member_map:
            original = member_map[parts[0]]
            if original in GLOBAL_RANDOM_FNS:
                yield project.finding(
                    self.id, file, node,
                    f"call to the random module's global instance "
                    f"(random.{original}, imported as {parts[0]}); "
                    f"draw from an injected seeded random.Random "
                    f"instead")
            elif original == "Random" and not node.args:
                yield project.finding(
                    self.id, file, node,
                    "unseeded random.Random(): results will differ "
                    "between runs; derive the seed from the campaign "
                    "root (repro.campaigns.seeding.child_seed)")
            elif original == "SystemRandom":
                yield project.finding(
                    self.id, file, node,
                    "random.SystemRandom draws OS entropy; only the "
                    "allowlisted root-seed draws may do this")

        # np.random.<fn>() legacy global state / unseeded default_rng.
        np_random = (len(parts) == 3 and parts[0] in numpy_mods
                     and parts[1] == "random")
        npr_direct = len(parts) == 2 and parts[0] in npr_mods
        if np_random or npr_direct:
            fn = parts[-1]
            if fn in NUMPY_GLOBAL_FNS:
                yield project.finding(
                    self.id, file, node,
                    f"numpy legacy global-state RNG call ({name}()); "
                    f"use a numpy Generator seeded from the campaign "
                    f"root (np.random.default_rng(child_seed(...)))")
            elif fn == "default_rng" and not node.args \
                    and not node.keywords:
                yield project.finding(
                    self.id, file, node,
                    "unseeded np.random.default_rng(): seed it from "
                    "the campaign root so shards stay reproducible")
        elif len(parts) == 1 and parts[0] in npr_member_map:
            original = npr_member_map[parts[0]]
            if original in NUMPY_GLOBAL_FNS:
                yield project.finding(
                    self.id, file, node,
                    f"numpy legacy global-state RNG call "
                    f"(numpy.random.{original}); use a seeded "
                    f"Generator instead")
            elif original == "default_rng" and not node.args \
                    and not node.keywords:
                yield project.finding(
                    self.id, file, node,
                    "unseeded np.random.default_rng(): seed it from "
                    "the campaign root so shards stay reproducible")

        # Wall-clock reads.
        if len(parts) >= 2 and (parts[-2], parts[-1]) in CLOCK_CALLS:
            yield project.finding(
                self.id, file, node,
                f"wall-clock read ({name}()) in a deterministic layer; "
                f"results must not depend on the time of day (telemetry "
                f"may use time.perf_counter)")

    def _check_set_iteration(self, project: Project, file: SourceFile,
                             iterable: ast.AST) -> Iterator[Finding]:
        if _is_set_expression(iterable):
            yield project.finding(
                self.id, file, iterable,
                "iteration over a freshly-built set: the order depends "
                "on hash randomization (PYTHONHASHSEED) for str "
                "elements; wrap it in sorted(...) before iterating")


RULE = DeterminismRule()

__all__ = ["DeterminismRule", "RULE", "SCOPED_PACKAGES"]
