"""Rule registry of the project linter.

Each rule lives in its own module and exposes a ``RULE`` singleton;
``ALL_RULES`` is the runner's source of truth.  Adding a rule is:
write the module, add it here, document it in the README's static
analysis section, and give it fixture tests in ``tests/devtools/``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.devtools.lint.findings import Rule
from repro.devtools.lint.rules.capabilities import (
    RULE as CAPABILITY_RULE,
)
from repro.devtools.lint.rules.determinism import (
    RULE as DETERMINISM_RULE,
)
from repro.devtools.lint.rules.dtype import RULE as DTYPE_RULE
from repro.devtools.lint.rules.fingerprint import (
    RULE as FINGERPRINT_RULE,
)
from repro.devtools.lint.rules.getattr_drift import (
    RULE as GETATTR_DRIFT_RULE,
)
from repro.devtools.lint.rules.pickle_safety import (
    RULE as PICKLE_RULE,
)

ALL_RULES: Tuple[Rule, ...] = (
    DETERMINISM_RULE,
    CAPABILITY_RULE,
    FINGERPRINT_RULE,
    DTYPE_RULE,
    PICKLE_RULE,
    GETATTR_DRIFT_RULE,
)


def rules_by_id() -> Dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}


__all__ = ["ALL_RULES", "rules_by_id"]
