"""Rule ``getattr-drift``: duck-typed attribute strings stay real.

The cost-accounting paths probe code objects with ``getattr(code,
"encoder_xor_count", None)`` and fall back to an estimate when the
attribute is absent -- which means renaming the attribute on the code
classes disables exact cost accounting *silently*: the getattr string
keeps compiling, the fallback keeps returning plausible numbers, and
no test that only checks "a number came out" notices.  The same
pattern guards ``corrupt_retention`` on the retention flip-flops.

This rule cross-checks every watched ``getattr`` string literal in the
scanned tree against the *live* provider classes, reflected at lint
time:

* strings ending in ``_xor_count`` / ``_gate_count`` (and the explicit
  cost/protocol names) must exist on at least one class defined in the
  :mod:`repro.codes` modules;
* ``corrupt_retention`` (and other circuit-protocol names) must exist
  on a class in :mod:`repro.circuit`.

A watched string that no provider class defines is exactly the rename
drift the fallback was hiding.
"""

from __future__ import annotations

import ast
import inspect
from typing import FrozenSet, Iterator, Optional

from repro.devtools.lint.findings import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
)

#: Suffixes that put a getattr string in the code-cost family.
CODE_COST_SUFFIXES = ("_xor_count", "_gate_count")

#: Explicit members of the code-protocol family (beyond the suffixes).
CODE_PROTOCOL_NAMES = frozenset({"name", "signature_bits"})

#: Watched strings resolved against repro.circuit classes.
CIRCUIT_PROTOCOL_NAMES = frozenset({"corrupt_retention"})


def _class_attributes(*modules) -> FrozenSet[str]:
    """Union of attribute names over all classes the modules define.

    Collects class-body members *and* class-level annotations (the
    protocol attributes declared on the abstract bases live there).
    Instance attributes assigned in ``__init__`` are covered by the
    sample-instance probes of the callers.
    """
    attributes = set()
    for module in modules:
        for _, cls in inspect.getmembers(module, inspect.isclass):
            if cls.__module__.startswith(module.__name__.rsplit(".", 1)[0]):
                attributes.update(vars(cls))
                attributes.update(getattr(cls, "__annotations__", {}))
    return frozenset(attributes)


#: Registry names instantiated as attribute probes (one per concrete
#: code family, so ``__init__``-assigned attributes are seen too).
SAMPLE_CODES = ("hamming(7,4)", "crc16", "secded(8,4)", "parity(8)")


def code_class_attributes() -> FrozenSet[str]:
    """Attributes available on the project's code classes."""
    from repro.codes import (
        base,
        crc,
        hamming,
        interleave,
        packed,
        parity,
        plane,
        secded,
    )
    from repro.codes.registry import get_code
    attributes = set(_class_attributes(base, crc, hamming, interleave,
                                       packed, parity, plane, secded))
    for name in SAMPLE_CODES:
        attributes.update(dir(get_code(name)))
        attributes.update(vars(get_code(name)))
    return frozenset(attributes)


def circuit_class_attributes() -> FrozenSet[str]:
    """Attributes available on the project's circuit classes."""
    from repro.circuit import fifo, flipflop, gates, scan, state
    return _class_attributes(fifo, flipflop, gates, scan, state)


class GetattrDriftRule(Rule):
    id = "getattr-drift"
    description = ("watched getattr(...) attribute strings must exist on "
                   "the live code/circuit classes (a rename must not "
                   "silently engage the estimate fallback)")

    def __init__(self,
                 code_attrs: Optional[FrozenSet[str]] = None,
                 circuit_attrs: Optional[FrozenSet[str]] = None):
        # Injectable for the fixture tests; reflected lazily otherwise
        # so importing the rule never imports the simulation packages.
        self._code_attrs = code_attrs
        self._circuit_attrs = circuit_attrs

    @property
    def code_attrs(self) -> FrozenSet[str]:
        if self._code_attrs is None:
            self._code_attrs = code_class_attributes()
        return self._code_attrs

    @property
    def circuit_attrs(self) -> FrozenSet[str]:
        if self._circuit_attrs is None:
            self._circuit_attrs = circuit_class_attributes()
        return self._circuit_attrs

    def check_file(self, project: Project,
                   file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "getattr":
                continue
            if len(node.args) < 2:
                continue
            attr = node.args[1]
            if not (isinstance(attr, ast.Constant)
                    and isinstance(attr.value, str)):
                continue
            yield from self._check_string(project, file, node,
                                          attr.value)

    def _check_string(self, project, file, node,
                      name: str) -> Iterator[Finding]:
        if name.endswith(CODE_COST_SUFFIXES) \
                or name in CODE_PROTOCOL_NAMES:
            if name not in self.code_attrs:
                yield project.finding(
                    self.id, file, node,
                    f"getattr string {name!r} matches no attribute on "
                    f"any repro.codes class: the estimate fallback now "
                    f"always wins, silently disabling exact cost "
                    f"accounting (was the attribute renamed?)")
        elif name in CIRCUIT_PROTOCOL_NAMES:
            if name not in self.circuit_attrs:
                yield project.finding(
                    self.id, file, node,
                    f"getattr string {name!r} matches no attribute on "
                    f"any repro.circuit class: the duck-typed fallback "
                    f"now always wins (was the attribute renamed?)")


RULE = GetattrDriftRule()

__all__ = ["GetattrDriftRule", "RULE", "CODE_COST_SUFFIXES",
           "CODE_PROTOCOL_NAMES", "CIRCUIT_PROTOCOL_NAMES"]
