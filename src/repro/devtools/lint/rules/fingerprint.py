"""Rule ``fingerprint``: every task field reaches the checkpoint identity.

A :class:`~repro.campaigns.runner.CampaignTask`'s ``fingerprint()`` is
what a resumed checkpoint is validated against and what the
scheduler's result cache keys on.  A dataclass field that does not
reach the fingerprint is a live hazard, twice over: a checkpoint
written with one value resumes under another (stale statistics merge
in -- exactly the PR 3/PR 5 ``batch_size``/``sampler`` incidents,
which were only caught because the *default* repr-fingerprint includes
new fields automatically), and the scheduler serves one
configuration's cached result for a different one.

The rule finds every ``CampaignTask`` subclass in the scanned tree
(following the name through ``import``/``from``-import aliases and
through subclass chains inside a file) and checks:

* a subclass relying on the inherited repr-based ``fingerprint()``
  must be a dataclass (a plain class's default ``object.__repr__`` is
  a memory address -- unstable across processes) and must not exclude
  any field with ``field(repr=False)``;
* a subclass that overrides ``fingerprint()`` must mention every
  dataclass field name somewhere in the override's body (attribute
  access, name, or string literal -- e.g. a dict key).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.devtools.lint.findings import (
    Finding,
    Project,
    Rule,
    SourceFile,
    call_keywords,
    decorator_names,
    dotted_name,
)

#: Root base class the rule keys on.
TASK_BASE = "CampaignTask"


def task_classes(tree: ast.Module) -> List[ast.ClassDef]:
    """ClassDefs deriving (transitively, within this file) from
    ``CampaignTask``, however the base was imported."""
    task_names: Set[str] = {TASK_BASE}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == TASK_BASE:
                    task_names.add(alias.asname or alias.name)
    found: List[ast.ClassDef] = []
    # Two passes resolve in-file subclass chains (A(CampaignTask),
    # B(A)); deeper chains converge because names only accumulate.
    for _ in range(2):
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node in found:
                continue
            bases = {(dotted_name(base) or "").split(".")[-1]
                     for base in node.bases}
            if bases & task_names:
                found.append(node)
                task_names.add(node.name)
    return found


def dataclass_fields(cls: ast.ClassDef) -> Dict[str, Optional[ast.expr]]:
    """Annotated class-body fields -> default value node (or None).

    ``ClassVar`` annotations and underscore-private names are not
    dataclass init fields and are skipped.
    """
    fields: Dict[str, Optional[ast.expr]] = {}
    for item in cls.body:
        if not isinstance(item, ast.AnnAssign):
            continue
        if not isinstance(item.target, ast.Name):
            continue
        annotation = ast.dump(item.annotation)
        if "ClassVar" in annotation:
            continue
        fields[item.target.id] = item.value
    return fields


def is_dataclass(cls: ast.ClassDef) -> bool:
    return any(name.split(".")[-1] == "dataclass"
               for name in decorator_names(cls))


def _field_repr_false(default: Optional[ast.expr]) -> bool:
    """True for a ``field(..., repr=False)`` default."""
    if not isinstance(default, ast.Call):
        return False
    callee = (dotted_name(default.func) or "").split(".")[-1]
    if callee != "field":
        return False
    repr_kw = call_keywords(default).get("repr")
    return (isinstance(repr_kw, ast.Constant)
            and repr_kw.value is False)


def _mentioned_names(func: ast.FunctionDef) -> Set[str]:
    """Identifiers and string literals appearing in a function body."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) \
                and isinstance(node.value, str):
            names.add(node.value)
    return names


class FingerprintRule(Rule):
    id = "fingerprint"
    description = ("every dataclass field of a CampaignTask subclass must "
                   "reach its fingerprint() (checkpoint resume and "
                   "scheduler cache key on it)")

    def check_file(self, project: Project,
                   file: SourceFile) -> Iterator[Finding]:
        for cls in task_classes(file.tree):
            fields = dataclass_fields(cls)
            override = next(
                (item for item in cls.body
                 if isinstance(item, ast.FunctionDef)
                 and item.name == "fingerprint"), None)
            if override is None:
                yield from self._check_default_path(project, file, cls,
                                                    fields)
            else:
                yield from self._check_override(project, file, cls,
                                                fields, override)

    def _check_default_path(self, project, file, cls,
                            fields) -> Iterator[Finding]:
        if not is_dataclass(cls) and fields:
            yield project.finding(
                self.id, file, cls,
                f"{cls.name} relies on the inherited repr-based "
                f"fingerprint() but is not a dataclass: "
                f"object.__repr__ embeds a memory address, so every "
                f"process computes a different checkpoint identity")
            return
        for name, default in fields.items():
            if _field_repr_false(default):
                yield project.finding(
                    self.id, file, cls,
                    f"{cls.name}.{name} uses field(repr=False), so it "
                    f"is missing from the repr-based fingerprint(): a "
                    f"checkpoint written with one {name} resumes under "
                    f"another, merging stale statistics")

    def _check_override(self, project, file, cls, fields,
                        override) -> Iterator[Finding]:
        mentioned = _mentioned_names(override)
        for name in fields:
            if name not in mentioned:
                yield project.finding(
                    self.id, file, override,
                    f"{cls.name}.fingerprint() never mentions field "
                    f"{name!r}: checkpoints and the scheduler cache "
                    f"cannot tell two {name} values apart, so stale "
                    f"results resume/serve silently")


RULE = FingerprintRule()

__all__ = ["FingerprintRule", "RULE", "task_classes", "dataclass_fields"]
