"""Rule ``dtype``: word-pipeline ndarray constructors pin their dtype.

The SIMD word pipeline is pure uint64 end to end; numpy's default
dtypes (float64 for ``zeros``/``ones``/``full``, platform int for
``array`` of ints) silently upcast the first time a constructor forgets
``dtype=``, and the bug surfaces as a wrong *result* (XORs on floats,
truncated shifts) far from the construction site.  In the word-pipeline
modules every array constructor must therefore pass an explicit
``dtype=`` keyword.  ``*_like`` constructors inherit their prototype's
dtype and are exempt, as are pure index producers (``flatnonzero``,
``nonzero``) whose integer dtype is guaranteed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import (
    Finding,
    Project,
    Rule,
    SourceFile,
    call_keywords,
    dotted_name,
    import_aliases,
)

#: Files (relpath suffixes) carrying the uint64 word-pipeline
#: discipline.
SCOPED_FILES = (
    "engines/backend.py",
    "engines/delta.py",
    "engines/jit.py",
    "engines/simd.py",
    "engines/summary.py",
    "faults/batch.py",
)

#: numpy constructors whose result dtype is ambient unless pinned.
CONSTRUCTORS = frozenset({
    "zeros", "ones", "empty", "full", "array", "asarray",
    "ascontiguousarray", "asfortranarray", "frombuffer", "fromiter",
    "fromstring", "arange", "linspace", "eye", "identity",
})


def in_scope(file: SourceFile) -> bool:
    return any(file.relpath.endswith(suffix) for suffix in SCOPED_FILES)


class DtypeRule(Rule):
    id = "dtype"
    description = ("ndarray constructors in the word-pipeline modules "
                   "(engines/backend.py, engines/delta.py, "
                   "engines/jit.py, engines/simd.py, "
                   "engines/summary.py, faults/batch.py) must pass an "
                   "explicit dtype=")

    def check_file(self, project: Project,
                   file: SourceFile) -> Iterator[Finding]:
        if not in_scope(file):
            return
        numpy_mods, numpy_members = import_aliases(file.tree, "numpy")
        member_map = {bound: original
                      for bound, original in numpy_members}
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] in numpy_mods:
                constructor = parts[1]
            elif len(parts) == 1 and parts[0] in member_map:
                constructor = member_map[parts[0]]
            else:
                continue
            if constructor not in CONSTRUCTORS:
                continue
            if "dtype" in call_keywords(node):
                continue
            # A second positional argument covers np.full(shape, fill)
            # only; dtype positionally is rare and unreadable -- still
            # require the keyword.
            yield project.finding(
                self.id, file, node,
                f"np.{constructor}(...) without an explicit dtype=: "
                f"the default dtype silently breaks the uint64 word "
                f"pipeline (int64/float upcasts change XOR/shift "
                f"semantics); pin it")


RULE = DtypeRule()

__all__ = ["DtypeRule", "RULE", "CONSTRUCTORS", "SCOPED_FILES"]
