"""Rule ``capability``: EngineCapabilities flags match implementations.

An engine advertising ``batch=True`` without overriding the batch
passes crashes the first batched campaign that selects it; the reverse
-- implemented batch/summary methods behind a ``False`` flag -- is dead
code that every consumer politely routes around (PR 3's capability
gating means such an engine silently runs the slow path forever).

The check runs twice, from two directions:

* **AST**: every direct ``SimulationEngine`` subclass in the scanned
  tree that assigns a literal ``capabilities =
  EngineCapabilities(...)`` must define exactly the methods its flags
  promise (``batch`` <=> ``encode_pass_batch`` + ``decode_pass_batch``,
  ``summary`` <=> ``run_batch_summary``).  This catches engines that
  are written but not yet registered.
* **Reflection**: every engine *registered* in
  :mod:`repro.engines.registry` is constructed against a minimal
  design and its class checked for actually-overridden methods -- the
  authoritative cross-check that also covers inheritance the AST
  cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.devtools.lint.findings import (
    Finding,
    Project,
    Rule,
    SourceFile,
    call_keywords,
    class_methods,
    dotted_name,
)

#: flag name -> methods whose overrides it promises.
FLAG_METHODS = {
    "batch": ("encode_pass_batch", "decode_pass_batch"),
    "summary": ("run_batch_summary",),
}


def _literal_flags(node: ast.Call) -> Optional[dict]:
    """``{flag: bool}`` of an ``EngineCapabilities(...)`` literal, or
    None when any value is not a plain True/False constant."""
    flags = {"batch": False, "summary": False}
    for name, value in call_keywords(node).items():
        if not (isinstance(value, ast.Constant)
                and isinstance(value.value, bool)):
            return None
        if name in flags:
            flags[name] = value.value
    if node.args:
        return None
    return flags


def _capabilities_assignment(cls: ast.ClassDef) -> Optional[ast.Call]:
    """The ``capabilities = EngineCapabilities(...)`` body assignment."""
    for item in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        for target in targets:
            if isinstance(target, ast.Name) \
                    and target.id == "capabilities" \
                    and isinstance(value, ast.Call):
                callee = dotted_name(value.func) or ""
                if callee.split(".")[-1] == "EngineCapabilities":
                    return value
    return None


class CapabilityRule(Rule):
    id = "capability"
    description = ("EngineCapabilities flags must match the batch/summary "
                   "methods an engine actually implements (both "
                   "directions, AST + registry reflection)")

    def check_file(self, project: Project,
                   file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {(dotted_name(base) or "").split(".")[-1]
                     for base in node.bases}
            if "SimulationEngine" not in bases:
                continue
            call = _capabilities_assignment(node)
            if call is None:
                continue
            flags = _literal_flags(call)
            if flags is None:
                continue  # computed flags: the reflection pass decides
            methods = class_methods(node)
            yield from self._check_flags(
                project, file, node, node.name, flags,
                lambda name: name in methods)

    def _check_flags(self, project, file, node, class_name, flags,
                     implemented) -> Iterator[Finding]:
        for flag, required in FLAG_METHODS.items():
            missing = [m for m in required if not implemented(m)]
            present = [m for m in required if implemented(m)]
            if flags.get(flag) and missing:
                yield project.finding(
                    self.id, file, node,
                    f"{class_name} declares capabilities.{flag}=True "
                    f"but does not implement {', '.join(missing)}; the "
                    f"first consumer that trusts the flag will crash")
            elif not flags.get(flag) and len(present) == len(required):
                yield project.finding(
                    self.id, file, node,
                    f"{class_name} implements "
                    f"{', '.join(required)} but declares "
                    f"capabilities.{flag}=False -- dead code: every "
                    f"consumer gates on the flag and will never call it")

    # ------------------------------------------------------------------
    def check_project(self, project: Project) -> Iterator[Finding]:
        yield from check_registered_engines()
        yield from check_conditional_registration()


def _minimal_design():
    """A tiny ProtectedDesign to construct engines against."""
    from repro.circuit.fifo import SyncFIFO
    from repro.core.protected import ProtectedDesign
    return ProtectedDesign(SyncFIFO(4, 4, name="lint_probe"),
                           codes=["hamming(7,4)"], num_chains=4)


def check_registered_engines(engine_names: Optional[Tuple[str, ...]] = None
                             ) -> Iterator[Finding]:
    """Reflection pass over the live engine registry.

    Constructs each registered engine against a minimal design and
    compares its capability flags with the methods its class actually
    overrides.  ``engine_names`` narrows the check (used by the fixture
    tests to probe a deliberately inconsistent registration).
    """
    from repro.engines.base import SimulationEngine
    from repro.engines.registry import available_engines, get_engine

    names = engine_names if engine_names is not None else \
        available_engines()
    design = _minimal_design()
    for name in names:
        engine = get_engine(name, design)
        cls = type(engine)
        module = getattr(cls, "__module__", "<unknown>")
        for flag, required in FLAG_METHODS.items():
            overridden = [
                m for m in required
                if getattr(cls, m, None)
                is not getattr(SimulationEngine, m)]
            declared = bool(getattr(engine.capabilities, flag))
            if declared and len(overridden) != len(required):
                missing = sorted(set(required) - set(overridden))
                yield Finding(
                    rule="capability", path=module, line=0,
                    message=(
                        f"registered engine {name!r} ({cls.__name__}) "
                        f"declares capabilities.{flag}=True but "
                        f"inherits the base {', '.join(missing)} "
                        f"stub(s); the first consumer that trusts the "
                        f"flag will crash"))
            elif not declared and len(overridden) == len(required):
                yield Finding(
                    rule="capability", path=module, line=0,
                    message=(
                        f"registered engine {name!r} ({cls.__name__}) "
                        f"implements {', '.join(required)} but declares "
                        f"capabilities.{flag}=False -- dead code behind "
                        f"a disabled flag"))


def check_conditional_registration(
        conditional=None, engine_names: Optional[Tuple[str, ...]] = None
        ) -> Iterator[Finding]:
    """Gate-versus-registry cross-check for the conditionally
    registered built-ins (``simd``/``cuda``/``jit``).

    The reflection pass above only sees engines that *are* registered,
    so a rotted registration gate -- the dependency importable but the
    ``register_engine`` call gone or broken -- would silently shrink
    the registry.  This pass walks
    :data:`repro.engines.registry.CONDITIONAL_ENGINES` and fires when
    a gating module is importable but its engine is absent, and when
    an engine is registered although its gate is not importable (its
    factory would ImportError at first use).  A dependency that is
    simply not installed yields **nothing**: silent degradation is the
    contract, not a finding.  ``conditional``/``engine_names`` narrow
    the check (fixture-test hooks).
    """
    import importlib.util

    from repro.engines.registry import CONDITIONAL_ENGINES, \
        available_engines

    if conditional is None:
        conditional = CONDITIONAL_ENGINES
    names = engine_names if engine_names is not None else \
        available_engines()
    for name, (module, extra) in conditional.items():
        try:
            importable = importlib.util.find_spec(module) is not None
        except (ImportError, ValueError):
            importable = False
        registered = name in names
        if importable and not registered:
            yield Finding(
                rule="capability", path="repro.engines.registry", line=0,
                message=(
                    f"engine {name!r} is gated on {module} ({extra}), "
                    f"which is importable here, yet the registry does "
                    f"not list it -- the conditional registration has "
                    f"rotted"))
        elif registered and not importable:
            yield Finding(
                rule="capability", path="repro.engines.registry", line=0,
                message=(
                    f"engine {name!r} is registered although its "
                    f"gating module {module} is not importable -- its "
                    f"factory will raise ImportError at first use "
                    f"instead of degrading silently"))


RULE = CapabilityRule()

__all__ = ["CapabilityRule", "RULE", "check_registered_engines",
           "check_conditional_registration", "FLAG_METHODS"]
