"""Rule ``pickle``: campaign tasks stay process-pool safe.

``ProcessChunkExecutor`` ships every distinct task to the workers by
pickling it once per worker; a task carrying a lambda, a local
closure, or an open OS handle pickles never (lambdas, nested
functions) or wrongly (file positions, sockets), and the failure
surfaces only when someone first passes ``num_workers > 1`` -- often in
CI, long after the field landed.  This rule keeps the hazard out at
authoring time: for every ``CampaignTask`` subclass in the scanned
tree it flags

* dataclass fields whose *default* is a lambda or a nested function
  reference;
* dataclass fields whose annotation names an unpicklable family
  (``Callable``, ``IO``/``TextIO``/``BinaryIO``, generators, locks,
  sockets) -- duck-typed escape hatches belong in ``run_chunk``, built
  worker-side;
* ``self.<attr> = lambda ...`` / ``self.<attr> = open(...)``
  assignments anywhere in the class body (the non-dataclass route to
  the same unpicklable state).

The warm persistent executors widened the blast radius: state stored
in :mod:`repro.campaigns.worker_cache` outlives single chunks inside
long-lived worker processes (and tasks themselves now cross the
process boundary through the warm pool's incremental shipping), so
in the worker-cache module **every** class is checked -- not just
``CampaignTask`` subclasses.  A lambda smuggled into a cached
workspace would otherwise survive until some unrelated chunk, hours
into a campaign, first trips over it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.findings import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
)
from repro.devtools.lint.rules.fingerprint import task_classes

#: Annotation substrings that mark a field as unpicklable by design.
UNPICKLABLE_ANNOTATIONS = (
    "Callable", "LambdaType", "FunctionType", "Generator", "Iterator",
    "TextIO", "BinaryIO", "IO[", "IOBase", "Lock", "RLock", "Socket",
    "socket",
)


def _annotation_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ast.dump(node)


def _unpicklable_family(annotation: ast.expr) -> Optional[str]:
    text = _annotation_text(annotation)
    for marker in UNPICKLABLE_ANNOTATIONS:
        if marker in text:
            return marker.rstrip("[")
    return None


#: Module whose every class is in scope: worker-cache state lives for
#: a whole worker process lifetime, so the same hazards apply to all
#: classes defined there, CampaignTask subclass or not.
WORKER_CACHE_MODULE = "campaigns/worker_cache.py"


class PickleSafetyRule(Rule):
    id = "pickle"
    description = ("CampaignTask subclasses (and all worker-cache "
                   "state classes) must not carry lambda, closure, or "
                   "open-handle fields (tasks are pickled to "
                   "process-pool workers; cached state outlives "
                   "chunks)")

    def check_file(self, project: Project,
                   file: SourceFile) -> Iterator[Finding]:
        for cls in self._classes_in_scope(file):
            yield from self._check_field_defaults(project, file, cls)
            yield from self._check_self_assignments(project, file, cls)

    @staticmethod
    def _classes_in_scope(file: SourceFile) -> "list[ast.ClassDef]":
        if file.relpath.endswith(WORKER_CACHE_MODULE):
            return [node for node in ast.walk(file.tree)
                    if isinstance(node, ast.ClassDef)]
        return task_classes(file.tree)

    def _check_field_defaults(self, project, file,
                              cls) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, ast.AnnAssign) \
                    or not isinstance(item.target, ast.Name):
                continue
            name = item.target.id
            family = _unpicklable_family(item.annotation)
            if family is not None:
                yield project.finding(
                    self.id, file, item,
                    f"{cls.name}.{name} is annotated {family}-like: "
                    f"such fields do not survive pickling to "
                    f"process-pool workers; build it inside "
                    f"run_chunk() instead")
            if isinstance(item.value, ast.Lambda):
                yield project.finding(
                    self.id, file, item,
                    f"{cls.name}.{name} defaults to a lambda: lambdas "
                    f"pickle never, so ProcessChunkExecutor dies on "
                    f"the first num_workers > 1 run")

    def _check_self_assignments(self, project, file,
                                cls) -> Iterator[Finding]:
        for func in (item for item in cls.body
                     if isinstance(item, ast.FunctionDef)):
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    if isinstance(node.value, ast.Lambda):
                        yield project.finding(
                            self.id, file, node,
                            f"{cls.name}.{func.name} stores a lambda "
                            f"on self.{target.attr}: the task no "
                            f"longer pickles to process-pool workers")
                    elif isinstance(node.value, ast.Call) \
                            and dotted_name(node.value.func) == "open":
                        yield project.finding(
                            self.id, file, node,
                            f"{cls.name}.{func.name} stores an open "
                            f"file handle on self.{target.attr}: "
                            f"handles do not pickle; open (and close) "
                            f"inside run_chunk()")


RULE = PickleSafetyRule()

__all__ = ["PickleSafetyRule", "RULE", "UNPICKLABLE_ANNOTATIONS"]
