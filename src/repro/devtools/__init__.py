"""Developer tooling for the reproduction itself.

Nothing in this package ships simulation behaviour; it holds the
correctness tooling the project runs over its own source tree.  Today
that is :mod:`repro.devtools.lint`, the project-invariant static
analyzer (``python -m repro.devtools.lint``) whose rules encode the
guarantees the runtime test suites otherwise only catch after the
fact: determinism of the campaign/engine layers, capability flags
matching implemented engine methods, checkpoint-fingerprint
completeness, the uint64 dtype discipline of the word pipeline,
process-pool pickle safety of campaign tasks, and duck-typed
``getattr`` attribute strings staying in sync with the code classes.
"""

__all__ = ["lint"]
