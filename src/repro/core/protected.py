"""Protected power-gated design: the full methodology in one object.

:class:`ProtectedDesign` wires together everything the paper's Fig. 2
shows around the power-gated circuit (PGC):

* the scan chains (re)configured for monitoring (Fig. 5(a));
* the bank of state monitoring blocks, one per ``monitor_width`` chains
  for block codes, one shared block for CRC;
* the error correction block on the scan feedback path;
* the monitored power-gating controller (Fig. 3(b));
* the power domain with its sleep transistors, rush-current model and
  (optionally) the droop-driven retention upset model.

Its central method, :meth:`ProtectedDesign.sleep_wake_cycle`, runs one
complete encode -> sleep -> wake -> decode sequence with optional fault
injection and reports what was injected, detected and corrected ---
which is precisely the paper's FPGA test sequence (Section IV), minus
the serial port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.circuit.base import SequentialCircuit
from repro.circuit.flipflop import RetentionFlipFlop
from repro.circuit.netlist import Netlist
from repro.circuit.scan import ScanChain, balance_chains
from repro.circuit.state import StateSnapshot
from repro.codes.base import BlockCode, StreamCode
from repro.codes.registry import get_code
from repro.core.controller import ErrorCode, MonitoredPowerGatingController
from repro.core.corrector import ErrorCorrectionBlock
from repro.core.monitor import (
    MonitorBank,
    MonitorReport,
    build_monitor_blocks,
)
from repro.core.scan_config import ScanChainConfig
from repro.faults.injector import ScanErrorInjector
from repro.faults.patterns import ErrorPattern
from repro.power.domain import PowerDomain, SwitchNetwork, WakeEvent
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters
from repro.tech.area import AreaBreakdown, AreaEstimator
from repro.tech.energy import CodingCost, EnergyCalculator
from repro.tech.library import StandardCellLibrary, default_library
from repro.tech.power import PowerBreakdown, PowerEstimator

CodeSpec = Union[str, BlockCode, StreamCode]


@dataclass(frozen=True)
class CycleOutcome:
    """Result of one monitored sleep/wake cycle.

    Attributes
    ----------
    injected_errors:
        Number of register bits that actually differed from the
        pre-sleep state when the decode pass started (fault injection
        plus any droop-induced upsets).
    detected:
        True when any monitoring block reported a mismatch.
    corrected_claim:
        What the hardware believes: True when mismatches were observed
        and none of them was flagged uncorrectable.
    state_intact:
        Ground truth: True when the post-decode state equals the
        pre-sleep state bit for bit.
    residual_errors:
        Number of register bits still wrong after the decode pass.
    error_code:
        The error code raised by the controller (Fig. 3(b)).
    corrections_applied:
        Number of bit corrections performed by the correction block.
    wake_event:
        The rush-current/droop record of the wake-up.
    reports:
        Per-monitoring-block reports from the decode pass.
    """

    injected_errors: int
    detected: bool
    corrected_claim: bool
    state_intact: bool
    residual_errors: int
    error_code: ErrorCode
    corrections_applied: int
    wake_event: WakeEvent
    reports: Tuple[MonitorReport, ...] = field(default_factory=tuple)

    @property
    def fully_corrected(self) -> bool:
        """True when errors were present and the final state is intact."""
        return self.injected_errors > 0 and self.state_intact

    @property
    def silent_corruption(self) -> bool:
        """True when the state is corrupted but nothing was reported."""
        return (not self.state_intact) and (not self.detected)


@dataclass(frozen=True)
class CostReport:
    """Area / power / latency / energy report of a protected design.

    This is the data behind one row of the paper's Tables I and II.
    """

    config: ScanChainConfig
    area: AreaBreakdown
    power: PowerBreakdown
    encode_cost: CodingCost
    decode_cost: CodingCost

    @property
    def area_total_um2(self) -> float:
        """Total area including the protection circuitry (um^2)."""
        return self.area.total

    @property
    def area_overhead_percent(self) -> float:
        """Protection area overhead relative to the bare design (%)."""
        return self.area.overhead_fraction * 100.0

    @property
    def latency_ns(self) -> float:
        """Encode (== decode) latency in nanoseconds."""
        return self.encode_cost.latency_ns

    def as_table_row(self) -> dict:
        """Row in the layout of the paper's Tables I/II."""
        return {
            "W": self.config.num_chains,
            "l": self.config.chain_length,
            "area_um2": round(self.area_total_um2, 1),
            "area_overhead_percent": round(self.area_overhead_percent, 2),
            "enc_power_mw": round(self.encode_cost.power_mw, 3),
            "dec_power_mw": round(self.decode_cost.power_mw, 3),
            "latency_ns": round(self.latency_ns, 1),
            "enc_energy_nj": round(self.encode_cost.energy_nj, 3),
            "dec_energy_nj": round(self.decode_cost.energy_nj, 3),
        }


class ProtectedDesign:
    """A power-gated circuit protected by scan-based state monitoring.

    Parameters
    ----------
    circuit:
        The design to protect (its registers must be retention
        flip-flops, as produced by the circuits in
        :mod:`repro.circuit`).
    codes:
        The monitoring code(s): a name (``"hamming(7,4)"``,
        ``"crc16"``), a code object, or a list of either.  When several
        codes are given, block codes correct and stream codes verify the
        corrected stream (the combination used in the paper's FPGA
        validation).
    num_chains:
        Number of scan chains ``W`` in monitoring mode.
    monitor_width:
        Chains per monitoring block; defaults to the block code's ``k``.
    test_width:
        Manufacturing-test scan width (Fig. 5(b)); cost accounting only.
    clock_hz:
        Scan clock frequency (paper: 100 MHz).
    library:
        Standard-cell library for cost accounting.
    switches, rlc, upset_model:
        Power-domain configuration; ``upset_model=None`` disables
        droop-driven upsets (the paper's campaigns inject errors
        explicitly instead).
    lfsr_seed:
        Seed of the error injector's LFSRs.
    engine:
        Simulation engine for the encode/decode passes:
        ``"reference"`` (default) drives the bit-serial per-flop
        models in :mod:`repro.core.monitor`; ``"packed"`` runs the
        bit-exact packed-integer fast path of
        :class:`repro.fastpath.engine.PackedMonitorEngine` instead.
        Results are identical either way (property-tested); only the
        wall-clock cost of :meth:`sleep_wake_cycle` changes.
    """

    ENGINES = ("reference", "packed")

    def __init__(self, circuit: SequentialCircuit,
                 codes: Union[CodeSpec, Sequence[CodeSpec]] = "hamming(7,4)",
                 num_chains: int = 80,
                 monitor_width: Optional[int] = None,
                 test_width: int = 4,
                 clock_hz: float = 100e6,
                 library: Optional[StandardCellLibrary] = None,
                 switches: Optional[SwitchNetwork] = None,
                 rlc: Optional[RLCParameters] = None,
                 upset_model: Optional[RetentionUpsetModel] = None,
                 lfsr_seed: int = 0xACE1,
                 engine: str = "reference"):
        self.circuit = circuit
        self.library = library if library is not None else default_library()
        self.clock_hz = clock_hz

        self.codes = self._resolve_codes(codes)
        block_codes = [c for c in self.codes if isinstance(c, BlockCode)]
        if monitor_width is None:
            monitor_width = block_codes[0].k if block_codes else num_chains
        self._monitor_width = monitor_width

        registers = list(circuit.registers)
        self._padding: List[RetentionFlipFlop] = []
        self.config = ScanChainConfig(
            num_registers=len(registers),
            num_chains=num_chains,
            monitor_width=monitor_width,
            test_width=min(test_width, num_chains),
            clock_period_ns=1e9 / clock_hz)
        self.chains = self._build_chains(registers, num_chains)

        blocks = []
        next_index = 0
        for code in self.codes:
            code_blocks = build_monitor_blocks(code, num_chains,
                                               monitor_width)
            for block in code_blocks:
                block.block_index = next_index
                next_index += 1
            blocks.extend(code_blocks)
        self.monitor_bank = MonitorBank(blocks)
        self.corrector = ErrorCorrectionBlock(
            block_codes[0] if block_codes else None, num_chains)
        self.controller = MonitoredPowerGatingController()
        self.domain = PowerDomain(circuit, switches=switches, rlc=rlc,
                                  upset_model=upset_model)
        self.injector = ScanErrorInjector(self.chains, lfsr_seed=lfsr_seed)

        self._area_estimator = AreaEstimator(self.library)
        self._power_estimator = PowerEstimator(self.library,
                                               clock_hz=clock_hz)
        self._energy_calculator = EnergyCalculator(self._power_estimator)

        self._engine = self.validate_engine(engine)
        self._packed_engine = None  # built lazily on first packed pass

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_codes(codes: Union[CodeSpec, Sequence[CodeSpec]]
                       ) -> List[Union[BlockCode, StreamCode]]:
        if isinstance(codes, (str, BlockCode, StreamCode)):
            codes = [codes]
        resolved: List[Union[BlockCode, StreamCode]] = []
        for spec in codes:
            if isinstance(spec, str):
                resolved.append(get_code(spec))
            elif isinstance(spec, (BlockCode, StreamCode)):
                resolved.append(spec)
            else:
                raise TypeError(f"cannot interpret code spec {spec!r}")
        if not resolved:
            raise ValueError("at least one monitoring code is required")
        return resolved

    def _build_chains(self, registers: List[RetentionFlipFlop],
                      num_chains: int) -> List[ScanChain]:
        """Balance the registers into ``num_chains`` equal-length chains.

        When the register count does not divide evenly, dummy scan
        cells are appended (as DFT tools do) so that all chains have the
        paper's uniform length ``l``.
        """
        target_length = self.config.chain_length
        total_needed = target_length * num_chains
        padding_needed = total_needed - len(registers)
        for i in range(padding_needed):
            pad = RetentionFlipFlop(name=f"{self.circuit.name}.scan_pad[{i}]",
                                    init=0)
            self._padding.append(pad)
        padded = registers + self._padding
        chains: List[ScanChain] = []
        for index in range(num_chains):
            start = index * target_length
            chains.append(ScanChain(
                padded[start:start + target_length],
                name=f"{self.circuit.name}_mon_chain{index}"))
        return chains

    # ------------------------------------------------------------------
    # Engine selection (bit-serial reference vs packed fast path)
    # ------------------------------------------------------------------
    @classmethod
    def available_engines(cls) -> Tuple[str, ...]:
        """The simulation engines this design class supports."""
        return tuple(cls.ENGINES)

    @classmethod
    def validate_engine(cls, engine: str) -> str:
        """Check an engine name, returning it; raise ``ValueError`` if
        unknown.

        This is the public entry point for anything that selects an
        engine on a design's behalf (campaign drivers, sharded tasks):
        validate eagerly here so a typo fails at configuration time,
        not deep inside a worker process.
        """
        if engine not in cls.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from "
                f"{cls.available_engines()}")
        return engine

    @property
    def engine(self) -> str:
        """The active simulation engine (``"reference"`` or ``"packed"``)."""
        return self._engine

    def set_engine(self, engine: str) -> None:
        """Switch the simulation engine for subsequent cycles."""
        self._engine = self.validate_engine(engine)

    def _get_packed_engine(self):
        if self._packed_engine is None:
            from repro.fastpath.engine import PackedMonitorEngine
            self._packed_engine = PackedMonitorEngine(
                self.monitor_bank, self.num_chains, self.chain_length)
        return self._packed_engine

    def _pack_chains(self) -> Tuple[List[int], List[int]]:
        """Snapshot the chains into packed (states, knowns) integers.

        Bit ``i`` of chain ``c``'s state is the flop at scan position
        ``i``; unknown (``None``) flops have a 0 known bit and a 0
        state bit, matching the monitors' treat-X-as-0 rule.
        """
        from repro.fastpath.packed_chain import pack_state
        states: List[int] = []
        knowns: List[int] = []
        for chain in self.chains:
            state, known = pack_state([flop.q for flop in chain.flops])
            states.append(state)
            knowns.append(known)
        return states, knowns

    def _write_back_chains(self, old_states: List[int],
                           old_knowns: List[int],
                           new_states: List[int]) -> None:
        """Write packed decode results back into the flop objects.

        Only bits that changed value (or were unknown and are now
        driven to a known value) are touched, so a clean decode pass
        costs no per-flop writes at all.
        """
        full = (1 << self.chain_length) - 1
        for chain, old, known, new in zip(self.chains, old_states,
                                          old_knowns, new_states):
            stale = (old ^ new) | (full & ~known)
            if not stale:
                continue
            flops = chain.flops
            while stale:
                low = stale & -stale
                stale ^= low
                i = low.bit_length() - 1
                flops[i].force((new >> i) & 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_chains(self) -> int:
        """Number of monitoring-mode scan chains ``W``."""
        return self.config.num_chains

    @property
    def chain_length(self) -> int:
        """Monitoring-mode chain length ``l``."""
        return self.config.chain_length

    @property
    def padding_cells(self) -> int:
        """Dummy scan cells added to balance the chains."""
        return len(self._padding)

    def _all_state(self) -> StateSnapshot:
        """Snapshot of the circuit registers plus padding cells."""
        flops = list(self.circuit.registers) + self._padding
        return StateSnapshot(values=tuple(ff.q for ff in flops),
                             names=tuple(ff.name for ff in flops))

    # ------------------------------------------------------------------
    # The monitored sleep/wake cycle (paper Fig. 3(b))
    # ------------------------------------------------------------------
    def sleep_wake_cycle(self,
                         injection: Optional[ErrorPattern] = None,
                         inject_phase: str = "sleep",
                         software_recovery: Optional[
                             Callable[["ProtectedDesign"], None]] = None,
                         auto_recover: bool = True) -> CycleOutcome:
        """Run one encode -> sleep -> wake -> decode cycle.

        Parameters
        ----------
        injection:
            Optional error pattern to inject.  With
            ``inject_phase="sleep"`` the pattern corrupts the retention
            latches while the domain is asleep (the physical failure
            mode); with ``"post_wake"`` the errors are injected into the
            restored state through the scan chains, exactly like the
            paper's Fig. 6 injection hardware.
        software_recovery:
            Callback invoked when the decode pass flags an
            uncorrectable error (the CRC + software-recovery option of
            the paper's Section V).  It receives this design and is
            expected to repair the circuit state by other means.
        auto_recover:
            When True the controller is returned to ACTIVE after an
            uncorrectable error so that subsequent cycles can run (the
            test bench keeps going and counts the event, as in the
            paper's FPGA campaign).
        """
        if inject_phase not in ("sleep", "post_wake"):
            raise ValueError("inject_phase must be 'sleep' or 'post_wake'")

        pre_state = self._all_state()
        self.corrector.clear()

        # -- encode sequence ------------------------------------------------
        self.controller.sleep_request()
        if self._engine == "packed":
            states, knowns = self._pack_chains()
            self._get_packed_engine().encode_pass(states, knowns)
        else:
            self.monitor_bank.encode_pass(self.chains)
        self.controller.encode_completed()

        # -- sleep sequence ------------------------------------------------
        self.domain.enter_sleep()
        for pad in self._padding:
            pad.retain()
            pad.power_off()
        self.controller.sleep_entered()

        if injection is not None and inject_phase == "sleep":
            self.injector.inject_retention(injection)

        # -- wake-up sequence ----------------------------------------------
        self.controller.wake_request()
        wake_event = self.domain.wake_up()
        for pad in self._padding:
            pad.power_on()
            pad.restore()
        self.controller.wake_completed()

        if injection is not None and inject_phase == "post_wake":
            self.injector.inject_direct(injection)

        corrupted_state = self._all_state()
        injected_errors = pre_state.hamming_distance(corrupted_state)

        # -- decode sequence -------------------------------------------------
        if self._engine == "packed":
            states, knowns = self._pack_chains()
            reports, corrected = self._get_packed_engine().decode_pass(
                states, knowns)
            self._write_back_chains(states, knowns, corrected)
        else:
            reports = self.monitor_bank.decode_pass(self.chains)
        for report in reports:
            self.corrector.record(report.corrections)

        detected = any(r.error_detected for r in reports)
        uncorrectable = any(r.uncorrectable for r in reports)
        corrected_claim = detected and not uncorrectable
        error_code = self.controller.decode_completed(
            error_detected=detected,
            fully_corrected=corrected_claim)

        if error_code is ErrorCode.UNCORRECTABLE:
            if software_recovery is not None:
                software_recovery(self)
            if auto_recover:
                self.controller.recovery_completed()

        post_state = self._all_state()
        residual = pre_state.hamming_distance(post_state)

        return CycleOutcome(
            injected_errors=injected_errors,
            detected=detected,
            corrected_claim=corrected_claim,
            state_intact=(residual == 0),
            residual_errors=residual,
            error_code=error_code,
            corrections_applied=self.corrector.num_corrections,
            wake_event=wake_event,
            reports=tuple(reports))

    def unprotected_sleep_wake_cycle(
            self, injection: Optional[ErrorPattern] = None) -> CycleOutcome:
        """Baseline cycle without encode/decode (conventional Fig. 3(a)).

        Any injected or droop-induced corruption goes unnoticed; used by
        the examples and benchmarks as the reliability baseline.
        """
        pre_state = self._all_state()
        self.domain.enter_sleep()
        for pad in self._padding:
            pad.retain()
            pad.power_off()
        if injection is not None:
            self.injector.inject_retention(injection)
        wake_event = self.domain.wake_up()
        for pad in self._padding:
            pad.power_on()
            pad.restore()
        post_state = self._all_state()
        residual = pre_state.hamming_distance(post_state)
        return CycleOutcome(
            injected_errors=residual,
            detected=False,
            corrected_claim=False,
            state_intact=(residual == 0),
            residual_errors=residual,
            error_code=ErrorCode.NONE,
            corrections_applied=0,
            wake_event=wake_event,
            reports=())

    # ------------------------------------------------------------------
    # Cost accounting (paper Tables I--III, Fig. 9)
    # ------------------------------------------------------------------
    def scan_routing_netlist(self) -> Netlist:
        """Per-chain scan-path reconfiguration logic (Fig. 5).

        Each chain's scan-in port needs a 3-way selector (functional
        loop-back / corrected feedback / test input) plus buffering, and
        the padding cells added for balancing are counted here too.
        """
        netlist = Netlist("scan_routing")
        group = "scan_routing"
        netlist.add_cells("mux3", self.num_chains, group=group)
        netlist.add_cells("buf", self.num_chains, group=group)
        if self._padding:
            netlist.add_cells("rsdff", len(self._padding), group=group)
        return netlist

    def full_netlist(self) -> Netlist:
        """Complete netlist: protected circuit plus protection circuitry."""
        full = self.circuit.netlist.copy()
        full.merge(self.monitor_bank.build_netlist(self.chain_length))
        full.merge(self.corrector.build_netlist(
            num_blocks=sum(1 for b in self.monitor_bank.blocks
                           if b.can_correct)))
        full.merge(self.controller.build_netlist(self.chain_length))
        full.merge(self.scan_routing_netlist())
        return full

    def cost_report(self) -> CostReport:
        """Area / power / latency / energy of this configuration."""
        netlist = self.full_netlist()
        area = self._area_estimator.breakdown(netlist)
        power = self._power_estimator.scan_mode_power(netlist)
        encode_cost = self._energy_calculator.encode_cost(
            netlist, self.chain_length)
        decode_cost = self._energy_calculator.decode_cost(
            netlist, self.chain_length)
        return CostReport(config=self.config, area=area, power=power,
                          encode_cost=encode_cost, decode_cost=decode_cost)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        code_names = ", ".join(getattr(c, "name", repr(c)) for c in self.codes)
        return (f"ProtectedDesign({self.circuit.name!r}, codes=[{code_names}], "
                f"W={self.num_chains}, l={self.chain_length})")


__all__ = ["ProtectedDesign", "CycleOutcome", "CostReport"]
