"""Protected power-gated design: the full methodology in one object.

:class:`ProtectedDesign` wires together everything the paper's Fig. 2
shows around the power-gated circuit (PGC):

* the scan chains (re)configured for monitoring (Fig. 5(a));
* the bank of state monitoring blocks, one per ``monitor_width`` chains
  for block codes, one shared block for CRC;
* the error correction block on the scan feedback path;
* the monitored power-gating controller (Fig. 3(b));
* the power domain with its sleep transistors, rush-current model and
  (optionally) the droop-driven retention upset model.

Its central method, :meth:`ProtectedDesign.sleep_wake_cycle`, runs one
complete encode -> sleep -> wake -> decode sequence with optional fault
injection and reports what was injected, detected and corrected ---
which is precisely the paper's FPGA test sequence (Section IV), minus
the serial port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.circuit.base import SequentialCircuit
from repro.circuit.flipflop import RetentionFlipFlop
from repro.circuit.netlist import Netlist
from repro.circuit.scan import ScanChain
from repro.circuit.state import StateSnapshot
from repro.codes.base import BlockCode, StreamCode
from repro.codes.registry import get_code
from repro.core.controller import ErrorCode, MonitoredPowerGatingController
from repro.core.corrector import ErrorCorrectionBlock
from repro.core.monitor import (
    MonitorBank,
    MonitorReport,
    build_monitor_blocks,
)
from repro.core.scan_config import ScanChainConfig
from repro.engines import registry as engine_registry
from repro.engines.base import SimulationEngine
from repro.engines.packing import pack_chains, replicate_states
from repro.faults.batch import (
    PatternBatch,
    apply_batch_flips,
    batch_pattern_flips,
)
from repro.faults.injector import ScanErrorInjector
from repro.faults.patterns import ErrorPattern
from repro.power.domain import PowerDomain, SwitchNetwork, WakeEvent
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters
from repro.tech.area import AreaBreakdown, AreaEstimator
from repro.tech.energy import CodingCost, EnergyCalculator
from repro.tech.library import StandardCellLibrary, default_library
from repro.tech.power import PowerBreakdown, PowerEstimator

CodeSpec = Union[str, BlockCode, StreamCode]


@dataclass(frozen=True, slots=True)
class CycleOutcome:
    """Result of one monitored sleep/wake cycle.

    Slotted: batched campaigns on the object path build one outcome
    per sequence, so allocation cost is a first-order term there (the
    columnar summary path builds none at all --
    :class:`~repro.engines.base.BatchOutcomeArrays`).

    Attributes
    ----------
    injected_errors:
        Number of register bits that actually differed from the
        pre-sleep state when the decode pass started (fault injection
        plus any droop-induced upsets).
    detected:
        True when any monitoring block reported a mismatch.
    corrected_claim:
        What the hardware believes: True when mismatches were observed
        and none of them was flagged uncorrectable.
    state_intact:
        Ground truth: True when the post-decode state equals the
        pre-sleep state bit for bit.
    residual_errors:
        Number of register bits still wrong after the decode pass.
    error_code:
        The error code raised by the controller (Fig. 3(b)).
    corrections_applied:
        Number of bit corrections performed by the correction block.
    wake_event:
        The rush-current/droop record of the wake-up.
    reports:
        Per-monitoring-block reports from the decode pass.
    """

    injected_errors: int
    detected: bool
    corrected_claim: bool
    state_intact: bool
    residual_errors: int
    error_code: ErrorCode
    corrections_applied: int
    wake_event: WakeEvent
    reports: Tuple[MonitorReport, ...] = field(default_factory=tuple)

    @property
    def fully_corrected(self) -> bool:
        """True when errors were present and the final state is intact."""
        return self.injected_errors > 0 and self.state_intact

    @property
    def silent_corruption(self) -> bool:
        """True when the state is corrupted but nothing was reported."""
        return (not self.state_intact) and (not self.detected)


@dataclass(frozen=True)
class CostReport:
    """Area / power / latency / energy report of a protected design.

    This is the data behind one row of the paper's Tables I and II.
    """

    config: ScanChainConfig
    area: AreaBreakdown
    power: PowerBreakdown
    encode_cost: CodingCost
    decode_cost: CodingCost

    @property
    def area_total_um2(self) -> float:
        """Total area including the protection circuitry (um^2)."""
        return self.area.total

    @property
    def area_overhead_percent(self) -> float:
        """Protection area overhead relative to the bare design (%)."""
        return self.area.overhead_fraction * 100.0

    @property
    def latency_ns(self) -> float:
        """Encode (== decode) latency in nanoseconds."""
        return self.encode_cost.latency_ns

    def as_table_row(self) -> dict:
        """Row in the layout of the paper's Tables I/II."""
        return {
            "W": self.config.num_chains,
            "l": self.config.chain_length,
            "area_um2": round(self.area_total_um2, 1),
            "area_overhead_percent": round(self.area_overhead_percent, 2),
            "enc_power_mw": round(self.encode_cost.power_mw, 3),
            "dec_power_mw": round(self.decode_cost.power_mw, 3),
            "latency_ns": round(self.latency_ns, 1),
            "enc_energy_nj": round(self.encode_cost.energy_nj, 3),
            "dec_energy_nj": round(self.decode_cost.energy_nj, 3),
        }


class ProtectedDesign:
    """A power-gated circuit protected by scan-based state monitoring.

    Parameters
    ----------
    circuit:
        The design to protect (its registers must be retention
        flip-flops, as produced by the circuits in
        :mod:`repro.circuit`).
    codes:
        The monitoring code(s): a name (``"hamming(7,4)"``,
        ``"crc16"``), a code object, or a list of either.  When several
        codes are given, block codes correct and stream codes verify the
        corrected stream (the combination used in the paper's FPGA
        validation).
    num_chains:
        Number of scan chains ``W`` in monitoring mode.
    monitor_width:
        Chains per monitoring block; defaults to the block code's ``k``.
    test_width:
        Manufacturing-test scan width (Fig. 5(b)); cost accounting only.
    clock_hz:
        Scan clock frequency (paper: 100 MHz).
    library:
        Standard-cell library for cost accounting.
    switches, rlc, upset_model:
        Power-domain configuration; ``upset_model=None`` disables
        droop-driven upsets (the paper's campaigns inject errors
        explicitly instead).
    lfsr_seed:
        Seed of the error injector's LFSRs.
    engine:
        Simulation engine for the encode/decode passes, resolved
        through the registry of :mod:`repro.engines`: ``"reference"``
        (default) drives the bit-serial per-flop models in
        :mod:`repro.core.monitor`; ``"packed"`` runs the bit-exact
        packed-integer fast path of
        :class:`repro.fastpath.engine.PackedMonitorEngine`;
        ``"batched"`` runs the bit-plane engine of
        :class:`repro.engines.bitplane.BitPlaneBatchedEngine`, which
        additionally unlocks the fast path of
        :meth:`sleep_wake_cycle_batch`; ``"simd"`` (available when
        numpy is installed, the ``[simd]`` extra) runs the word-packed
        fully vectorised engine of
        :class:`repro.engines.simd.SimdBatchedEngine`, the fastest
        option for dense-error batched campaigns.  Third-party engines
        appear here automatically once registered with
        :func:`repro.engines.register_engine`.  Results are identical
        across engines (property-tested); only the wall-clock cost
        changes.
    """

    def __init__(self, circuit: SequentialCircuit,
                 codes: Union[CodeSpec, Sequence[CodeSpec]] = "hamming(7,4)",
                 num_chains: int = 80,
                 monitor_width: Optional[int] = None,
                 test_width: int = 4,
                 clock_hz: float = 100e6,
                 library: Optional[StandardCellLibrary] = None,
                 switches: Optional[SwitchNetwork] = None,
                 rlc: Optional[RLCParameters] = None,
                 upset_model: Optional[RetentionUpsetModel] = None,
                 lfsr_seed: int = 0xACE1,
                 engine: str = "reference"):
        self.circuit = circuit
        self.library = library if library is not None else default_library()
        self.clock_hz = clock_hz

        self.codes = self._resolve_codes(codes)
        block_codes = [c for c in self.codes if isinstance(c, BlockCode)]
        if monitor_width is None:
            monitor_width = block_codes[0].k if block_codes else num_chains
        self._monitor_width = monitor_width

        registers = list(circuit.registers)
        self._padding: List[RetentionFlipFlop] = []
        self.config = ScanChainConfig(
            num_registers=len(registers),
            num_chains=num_chains,
            monitor_width=monitor_width,
            test_width=min(test_width, num_chains),
            clock_period_ns=1e9 / clock_hz)
        self.chains = self._build_chains(registers, num_chains)

        blocks = []
        next_index = 0
        for code in self.codes:
            code_blocks = build_monitor_blocks(code, num_chains,
                                               monitor_width)
            for block in code_blocks:
                block.block_index = next_index
                next_index += 1
            blocks.extend(code_blocks)
        self.monitor_bank = MonitorBank(blocks)
        self.corrector = ErrorCorrectionBlock(
            block_codes[0] if block_codes else None, num_chains)
        self.controller = MonitoredPowerGatingController()
        self.domain = PowerDomain(circuit, switches=switches, rlc=rlc,
                                  upset_model=upset_model)
        self.injector = ScanErrorInjector(self.chains, lfsr_seed=lfsr_seed)

        self._area_estimator = AreaEstimator(self.library)
        self._power_estimator = PowerEstimator(self.library,
                                               clock_hz=clock_hz)
        self._energy_calculator = EnergyCalculator(self._power_estimator)

        self._engine = self.validate_engine(engine)
        # Engine instances, built lazily per engine name and keyed on
        # the monitor bank / chain geometry they were built from, so a
        # rebuilt bank or re-balanced chain set invalidates them.
        self._engine_cache: dict = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_codes(codes: Union[CodeSpec, Sequence[CodeSpec]]
                       ) -> List[Union[BlockCode, StreamCode]]:
        if isinstance(codes, (str, BlockCode, StreamCode)):
            codes = [codes]
        resolved: List[Union[BlockCode, StreamCode]] = []
        for spec in codes:
            if isinstance(spec, str):
                resolved.append(get_code(spec))
            elif isinstance(spec, (BlockCode, StreamCode)):
                resolved.append(spec)
            else:
                raise TypeError(f"cannot interpret code spec {spec!r}")
        if not resolved:
            raise ValueError("at least one monitoring code is required")
        return resolved

    def _build_chains(self, registers: List[RetentionFlipFlop],
                      num_chains: int) -> List[ScanChain]:
        """Balance the registers into ``num_chains`` equal-length chains.

        When the register count does not divide evenly, dummy scan
        cells are appended (as DFT tools do) so that all chains have the
        paper's uniform length ``l``.
        """
        target_length = self.config.chain_length
        total_needed = target_length * num_chains
        padding_needed = total_needed - len(registers)
        for i in range(padding_needed):
            pad = RetentionFlipFlop(name=f"{self.circuit.name}.scan_pad[{i}]",
                                    init=0)
            self._padding.append(pad)
        padded = registers + self._padding
        chains: List[ScanChain] = []
        for index in range(num_chains):
            start = index * target_length
            chains.append(ScanChain(
                padded[start:start + target_length],
                name=f"{self.circuit.name}_mon_chain{index}"))
        return chains

    # ------------------------------------------------------------------
    # Engine selection (registry-backed; see repro.engines)
    # ------------------------------------------------------------------
    @classmethod
    def available_engines(cls) -> Tuple[str, ...]:
        """The registered simulation engines (built-ins plus anything
        added through :func:`repro.engines.register_engine`)."""
        return engine_registry.available_engines()

    @classmethod
    def validate_engine(cls, engine: str) -> str:
        """Check an engine name, returning it; raise ``ValueError`` if
        unknown.

        This is the public entry point for anything that selects an
        engine on a design's behalf (campaign drivers, sharded tasks):
        validate eagerly here so a typo fails at configuration time,
        not deep inside a worker process.  The name set and the error
        message both come from the engine registry, so third-party
        engines appear automatically.
        """
        return engine_registry.validate_engine(engine)

    @property
    def engine(self) -> str:
        """The active simulation engine's registry name."""
        return self._engine

    def set_engine(self, engine: str) -> None:
        """Switch the simulation engine for subsequent cycles."""
        self._engine = self.validate_engine(engine)

    @property
    def supports_batch_summary(self) -> bool:
        """True when the active engine can run the columnar summary
        path (:meth:`sleep_wake_cycle_batch_summary`)."""
        return self._resolve_engine().supports_summary

    def _resolve_engine(self, name: Optional[str] = None) -> SimulationEngine:
        """The engine instance for ``name`` (default: the active one).

        Instances are cached per name, keyed on the monitor bank object
        and the chain geometry they were built from; replacing
        ``monitor_bank`` or rebuilding ``chains`` therefore yields a
        fresh engine instead of silently reusing one built for the old
        structure (the historical ``_packed_engine`` staleness hazard).
        """
        if name is None:
            name = self._engine
        geometry = (len(self.chains), len(self.chains[0]))
        entry = self._engine_cache.get(name)
        if (entry is not None and entry[0] is self.monitor_bank
                and entry[1] == geometry):
            return entry[2]
        engine = engine_registry.get_engine(name, self)
        self._engine_cache[name] = (self.monitor_bank, geometry, engine)
        return engine

    def _get_packed_engine(self):
        """The packed-integer engine core (back-compat accessor)."""
        return self._resolve_engine("packed").engine

    def _pack_chains(self) -> Tuple[List[int], List[int]]:
        """Snapshot the chains into packed (states, knowns) integers.

        Bit ``i`` of chain ``c``'s state is the flop at scan position
        ``i``; unknown (``None``) flops have a 0 known bit and a 0
        state bit, matching the monitors' treat-X-as-0 rule.
        """
        return pack_chains(self.chains)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_chains(self) -> int:
        """Number of monitoring-mode scan chains ``W``."""
        return self.config.num_chains

    @property
    def chain_length(self) -> int:
        """Monitoring-mode chain length ``l``."""
        return self.config.chain_length

    @property
    def padding_cells(self) -> int:
        """Dummy scan cells added to balance the chains."""
        return len(self._padding)

    def _all_state(self) -> StateSnapshot:
        """Snapshot of the circuit registers plus padding cells."""
        flops = list(self.circuit.registers) + self._padding
        return StateSnapshot(values=tuple(ff.q for ff in flops),
                             names=tuple(ff.name for ff in flops))

    # ------------------------------------------------------------------
    # The monitored sleep/wake cycle (paper Fig. 3(b))
    # ------------------------------------------------------------------
    def _sleep_gate_off(self) -> None:
        """Gate the domain off: retention save + power-off, padding
        cells included (every cycle variant shares this block)."""
        self.domain.enter_sleep()
        for pad in self._padding:
            pad.retain()
            pad.power_off()

    def _wake_gate_on(self) -> WakeEvent:
        """Re-energise the domain and restore from retention, padding
        cells included; returns the wake-up's rush-current record."""
        wake_event = self.domain.wake_up()
        for pad in self._padding:
            pad.power_on()
            pad.restore()
        return wake_event

    def sleep_wake_cycle(self,
                         injection: Optional[ErrorPattern] = None,
                         inject_phase: str = "sleep",
                         software_recovery: Optional[
                             Callable[["ProtectedDesign"], None]] = None,
                         auto_recover: bool = True) -> CycleOutcome:
        """Run one encode -> sleep -> wake -> decode cycle.

        Parameters
        ----------
        injection:
            Optional error pattern to inject.  With
            ``inject_phase="sleep"`` the pattern corrupts the retention
            latches while the domain is asleep (the physical failure
            mode); with ``"post_wake"`` the errors are injected into the
            restored state through the scan chains, exactly like the
            paper's Fig. 6 injection hardware.
        software_recovery:
            Callback invoked when the decode pass flags an
            uncorrectable error (the CRC + software-recovery option of
            the paper's Section V).  It receives this design and is
            expected to repair the circuit state by other means.
        auto_recover:
            When True the controller is returned to ACTIVE after an
            uncorrectable error so that subsequent cycles can run (the
            test bench keeps going and counts the event, as in the
            paper's FPGA campaign).
        """
        if inject_phase not in ("sleep", "post_wake"):
            raise ValueError("inject_phase must be 'sleep' or 'post_wake'")

        pre_state = self._all_state()
        self.corrector.clear()
        engine = self._resolve_engine()

        # -- encode sequence ------------------------------------------------
        self.controller.sleep_request()
        engine.encode_pass(self)
        self.controller.encode_completed()

        # -- sleep sequence ------------------------------------------------
        self._sleep_gate_off()
        self.controller.sleep_entered()

        if injection is not None and inject_phase == "sleep":
            self.injector.inject_retention(injection)

        # -- wake-up sequence ----------------------------------------------
        self.controller.wake_request()
        wake_event = self._wake_gate_on()
        self.controller.wake_completed()

        if injection is not None and inject_phase == "post_wake":
            self.injector.inject_direct(injection)

        corrupted_state = self._all_state()
        injected_errors = pre_state.hamming_distance(corrupted_state)

        # -- decode sequence -------------------------------------------------
        reports = engine.decode_pass(self)
        for report in reports:
            self.corrector.record(report.corrections)

        detected = any(r.error_detected for r in reports)
        uncorrectable = any(r.uncorrectable for r in reports)
        corrected_claim = detected and not uncorrectable
        error_code = self.controller.decode_completed(
            error_detected=detected,
            fully_corrected=corrected_claim)

        if error_code is ErrorCode.UNCORRECTABLE:
            if software_recovery is not None:
                software_recovery(self)
            if auto_recover:
                self.controller.recovery_completed()

        post_state = self._all_state()
        residual = pre_state.hamming_distance(post_state)

        return CycleOutcome(
            injected_errors=injected_errors,
            detected=detected,
            corrected_claim=corrected_claim,
            state_intact=(residual == 0),
            residual_errors=residual,
            error_code=error_code,
            corrections_applied=self.corrector.num_corrections,
            wake_event=wake_event,
            reports=tuple(reports))

    def sleep_wake_cycle_batch(self,
                               injections: Sequence[Optional[ErrorPattern]],
                               inject_phase: str = "sleep"
                               ) -> List[CycleOutcome]:
        """Run ``B`` independent sleep/wake sequences as one batch.

        Every sequence starts from the design's *current* state; entry
        ``b`` of ``injections`` (an :class:`ErrorPattern` or ``None``)
        is injected into sequence ``b``'s private copy.  Returns one
        :class:`CycleOutcome` per sequence, bit-for-bit identical to
        running :meth:`sleep_wake_cycle` once per pattern from this
        same state (the property suite enforces this).

        When the active engine supports batching (``"batched"``), the
        whole batch is simulated in bit-plane form -- the physical
        controller and power domain are sequenced **once** for the
        batch, the per-sequence outcomes are computed virtually, and
        the circuit's own state is left exactly as it was.  Engines
        without batch support fall back to a per-sequence loop with a
        state snapshot/restore around each sequence, so the semantics
        (including the untouched final state) are engine-independent.

        Restrictions: the domain must have no ``upset_model`` (batched
        campaigns inject errors explicitly, like the paper's), and the
        shared controller records one aggregate decode verdict for the
        batched path -- per-sequence error codes are derived from each
        sequence's own detect/correct flags, exactly as the controller
        FSM would.  Uncorrectable sequences always auto-recover the
        controller (the test bench keeps going and counts the event,
        as in the paper's FPGA campaign); each sequence's
        ``error_code`` still reports ``UNCORRECTABLE``.
        """
        if inject_phase not in ("sleep", "post_wake"):
            raise ValueError("inject_phase must be 'sleep' or 'post_wake'")
        patterns = list(injections)
        if not patterns:
            raise ValueError("the batch needs at least one sequence")
        if self.domain.upset_model is not None:
            raise ValueError(
                "sleep_wake_cycle_batch requires upset_model=None: "
                "droop-driven upsets would be shared across the whole "
                "batch; inject errors explicitly instead")
        # Resolve the injection coordinates eagerly: a malformed
        # pattern must fail before the controller/domain leave ACTIVE
        # on EITHER path -- never strand the design mid-sleep (same
        # validate-eagerly policy as the engine names).
        flips = batch_pattern_flips(patterns, self.num_chains,
                                    self.chain_length)
        engine = self._resolve_engine()
        if not engine.supports_batch:
            return self._batch_fallback(patterns, inject_phase)

        batch_size = len(patterns)
        full = (1 << batch_size) - 1
        length = self.chain_length
        self.corrector.clear()
        states, knowns = self._pack_chains()
        unknown_positions = sum(length - known.bit_count()
                                for known in knowns)

        # -- encode sequence (shared pre-sleep state) ----------------------
        self.controller.sleep_request()
        planes = replicate_states(states, length, full)
        engine.encode_pass_batch(planes, knowns, batch_size)
        self.controller.encode_completed()

        # -- sleep sequence (the physical domain cycles once) --------------
        self._sleep_gate_off()
        self.controller.sleep_entered()

        if inject_phase == "sleep":
            injected = apply_batch_flips(planes, knowns, flips, batch_size)

        # -- wake-up sequence ----------------------------------------------
        self.controller.wake_request()
        wake_event = self._wake_gate_on()
        self.controller.wake_completed()

        if inject_phase == "post_wake":
            injected = apply_batch_flips(planes, knowns, flips, batch_size)

        # -- decode sequence -----------------------------------------------
        result = engine.decode_pass_batch(planes, knowns, batch_size)
        for sequence_reports in result.reports:
            for report in sequence_reports:
                if report.corrections:
                    self.corrector.record(report.corrections)

        # Ground truth per sequence: positions still differing from the
        # pre-sleep state.  Unknown pre-sleep bits always count -- the
        # decode pass drives them, so they differ from X by definition
        # (same rule as StateSnapshot.diff in the scalar path).  When
        # the engine hands back its word-packed corrected state, the
        # comparison runs through the vectorised state-domain
        # comparator instead of the per-position plane loop.
        if result.corrected_words is not None:
            from repro.engines.summary import residual_counts_words
            residuals = residual_counts_words(
                states, knowns, result.corrected_words,
                batch_size).tolist()
        else:
            residuals = [unknown_positions] * batch_size
            corrected = result.corrected
            for c, (state, known) in enumerate(zip(states, knowns)):
                chain_planes = corrected[c]
                for i in range(length):
                    if not (known >> i) & 1:
                        continue
                    diff = (full if (state >> i) & 1 else 0) \
                        ^ chain_planes[i]
                    while diff:
                        low = diff & -diff
                        diff ^= low
                        residuals[low.bit_length() - 1] += 1

        # The shared controller consumes one aggregate verdict; the
        # per-sequence error codes replay its pure decode mapping.
        any_detected = result.detected_mask != 0
        any_uncorrectable = result.uncorrectable_mask != 0
        batch_code = self.controller.decode_completed(
            error_detected=any_detected,
            fully_corrected=any_detected and not any_uncorrectable)
        if batch_code is ErrorCode.UNCORRECTABLE:
            self.controller.recovery_completed()

        outcomes: List[CycleOutcome] = []
        for b in range(batch_size):
            bit = 1 << b
            detected = bool(result.detected_mask & bit)
            uncorrectable = bool(result.uncorrectable_mask & bit)
            corrected_claim = detected and not uncorrectable
            if not detected:
                error_code = ErrorCode.NONE
            elif corrected_claim:
                error_code = ErrorCode.CORRECTED
            else:
                error_code = ErrorCode.UNCORRECTABLE
            outcomes.append(CycleOutcome(
                injected_errors=injected[b],
                detected=detected,
                corrected_claim=corrected_claim,
                state_intact=(residuals[b] == 0),
                residual_errors=residuals[b],
                error_code=error_code,
                corrections_applied=result.corrections.get(b, 0),
                wake_event=wake_event,
                reports=result.reports[b]))
        return outcomes

    def sleep_wake_cycle_batch_summary(self, flips, batch_size: int,
                                       inject_phase: str = "sleep",
                                       path: str = "auto"):
        """Run ``B`` sequences as one batch, returning columnar verdicts.

        The summary twin of :meth:`sleep_wake_cycle_batch` for
        consumers that only reduce outcomes to counters (campaign
        statistics): the injection arrives as per-cell sequence masks
        (:data:`repro.faults.batch.BatchFlips` -- what
        :meth:`~repro.faults.batch.PatternBatch.flips` produces), the
        engine runs the whole batch in its native array layout, and the
        result is one :class:`~repro.engines.base.BatchOutcomeArrays`
        -- **no per-sequence object is materialised anywhere**.  The
        array values are bit-identical to folding
        :meth:`sleep_wake_cycle_batch`'s outcomes field by field
        (property-tested in ``tests/campaigns/test_summary_path.py``).

        Physical sequencing matches the batched object path: the
        controller and power domain cycle **once** for the batch, the
        per-sequence verdicts are computed virtually and the circuit's
        own state is left untouched.  ``inject_phase`` keeps its
        meaning for API symmetry; the virtual copies make the two
        phases arithmetically identical, exactly as on the object
        path.  The shared corrector is *not* populated (there are no
        correction events to record); per-sequence correction counts
        are in the returned arrays instead.

        Requires an engine with summary support
        (:attr:`supports_batch_summary`) and, like the batched object
        path, ``upset_model=None``.

        ``path`` selects the engine's summary implementation
        (``"auto"`` / ``"delta"`` / ``"dense"``, plus ``"jit"`` on the
        jit engine, see
        :meth:`~repro.engines.base.SimulationEngine.run_batch_summary`);
        the default ``"auto"`` is not forwarded, so third-party summary
        engines predating the parameter keep working unless a path is
        forced.
        """
        if inject_phase not in ("sleep", "post_wake"):
            raise ValueError("inject_phase must be 'sleep' or 'post_wake'")
        if path not in ("auto", "delta", "dense", "jit"):
            raise ValueError(
                f"unknown summary path {path!r}; choose 'auto', 'delta', "
                f"'dense' or 'jit'")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if self.domain.upset_model is not None:
            raise ValueError(
                "sleep_wake_cycle_batch_summary requires upset_model=None: "
                "droop-driven upsets would be shared across the whole "
                "batch; inject errors explicitly instead")
        engine = self._resolve_engine()
        if not engine.supports_summary:
            raise ValueError(
                f"engine {self._engine!r} does not support the columnar "
                f"summary path; use sleep_wake_cycle_batch (the object "
                f"path) instead")
        # Validate the injection eagerly -- a malformed flip must fail
        # before the controller/domain leave ACTIVE (same policy as the
        # object batch path).
        num_chains, length = self.num_chains, self.chain_length
        if isinstance(flips, PatternBatch):
            if (flips.num_chains != num_chains
                    or flips.chain_length != length):
                raise ValueError(
                    f"pattern batch was sampled for a "
                    f"{flips.num_chains}x{flips.chain_length} scan array, "
                    f"not this design's {num_chains}x{length}")
            if flips.batch_size != batch_size:
                raise ValueError(
                    f"pattern batch holds {flips.batch_size} sequences, "
                    f"not {batch_size}")
            # The coordinate arrays themselves must be in range too --
            # negative indices would silently wrap in the engines'
            # ndarray scatters.
            if flips.num_flips and not (
                    bool(((flips.chains >= 0)
                          & (flips.chains < num_chains)).all())
                    and bool(((flips.positions >= 0)
                              & (flips.positions < length)).all())):
                raise ValueError(
                    f"pattern batch addresses cells outside the "
                    f"{num_chains}x{length} scan array")
            if flips.num_flips and not bool(
                    ((flips.seqs >= 0) & (flips.seqs < batch_size)).all()):
                raise ValueError(
                    f"pattern batch addresses sequences outside the "
                    f"{batch_size}-sequence batch")
        else:
            for chain, position in flips:
                if not (0 <= chain < num_chains and 0 <= position < length):
                    raise ValueError(
                        f"error location ({chain}, {position}) outside "
                        f"the {num_chains}x{length} scan array")
            for mask in flips.values():
                if mask < 0 or mask >> batch_size:
                    raise ValueError(
                        f"flip mask addresses sequences outside the "
                        f"{batch_size}-sequence batch")

        states, knowns = self._pack_chains()
        self.corrector.clear()

        # One physical controller/domain cycle for the whole batch (the
        # virtual per-sequence passes run inside the engine call).
        self.controller.sleep_request()
        self.controller.encode_completed()
        self._sleep_gate_off()
        self.controller.sleep_entered()
        self.controller.wake_request()
        self._wake_gate_on()
        self.controller.wake_completed()

        if path == "auto":
            arrays = engine.run_batch_summary(states, knowns, flips,
                                              batch_size)
        else:
            arrays = engine.run_batch_summary(states, knowns, flips,
                                              batch_size, path=path)

        any_detected = bool(arrays.detected.any())
        any_uncorrectable = bool(arrays.uncorrectable.any())
        batch_code = self.controller.decode_completed(
            error_detected=any_detected,
            fully_corrected=any_detected and not any_uncorrectable)
        if batch_code is ErrorCode.UNCORRECTABLE:
            self.controller.recovery_completed()
        return arrays

    def _batch_fallback(self, patterns: List[Optional[ErrorPattern]],
                        inject_phase: str) -> List[CycleOutcome]:
        """Per-sequence batch emulation for non-batch engines.

        Each sequence runs a full scalar cycle (always auto-recovering,
        matching the batched path's aggregate recovery) and the
        register state (circuit plus padding) is restored afterwards,
        so every sequence starts from the same state and the batch
        leaves the design untouched -- the same virtual-copies
        semantics as the bit-plane path.
        """
        flops = list(self.circuit.registers) + self._padding
        snapshot = [flop.q for flop in flops]
        outcomes: List[CycleOutcome] = []
        for pattern in patterns:
            outcomes.append(self.sleep_wake_cycle(
                injection=pattern, inject_phase=inject_phase,
                auto_recover=True))
            for flop, value in zip(flops, snapshot):
                flop.force(value)
        # Leave the shared corrector holding the whole batch's events
        # (each scalar cycle cleared it), matching the batched path so
        # design.corrector reads the same aggregate on every engine.
        self.corrector.clear()
        for outcome in outcomes:
            for report in outcome.reports:
                if report.corrections:
                    self.corrector.record(report.corrections)
        return outcomes

    def unprotected_sleep_wake_cycle(
            self, injection: Optional[ErrorPattern] = None) -> CycleOutcome:
        """Baseline cycle without encode/decode (conventional Fig. 3(a)).

        Any injected or droop-induced corruption goes unnoticed; used by
        the examples and benchmarks as the reliability baseline.
        """
        pre_state = self._all_state()
        self._sleep_gate_off()
        if injection is not None:
            self.injector.inject_retention(injection)
        wake_event = self._wake_gate_on()
        post_state = self._all_state()
        residual = pre_state.hamming_distance(post_state)
        return CycleOutcome(
            injected_errors=residual,
            detected=False,
            corrected_claim=False,
            state_intact=(residual == 0),
            residual_errors=residual,
            error_code=ErrorCode.NONE,
            corrections_applied=0,
            wake_event=wake_event,
            reports=())

    # ------------------------------------------------------------------
    # Cost accounting (paper Tables I--III, Fig. 9)
    # ------------------------------------------------------------------
    def scan_routing_netlist(self) -> Netlist:
        """Per-chain scan-path reconfiguration logic (Fig. 5).

        Each chain's scan-in port needs a 3-way selector (functional
        loop-back / corrected feedback / test input) plus buffering, and
        the padding cells added for balancing are counted here too.
        """
        netlist = Netlist("scan_routing")
        group = "scan_routing"
        netlist.add_cells("mux3", self.num_chains, group=group)
        netlist.add_cells("buf", self.num_chains, group=group)
        if self._padding:
            netlist.add_cells("rsdff", len(self._padding), group=group)
        return netlist

    def full_netlist(self) -> Netlist:
        """Complete netlist: protected circuit plus protection circuitry."""
        full = self.circuit.netlist.copy()
        full.merge(self.monitor_bank.build_netlist(self.chain_length))
        full.merge(self.corrector.build_netlist(
            num_blocks=sum(1 for b in self.monitor_bank.blocks
                           if b.can_correct)))
        full.merge(self.controller.build_netlist(self.chain_length))
        full.merge(self.scan_routing_netlist())
        return full

    def cost_report(self) -> CostReport:
        """Area / power / latency / energy of this configuration."""
        netlist = self.full_netlist()
        area = self._area_estimator.breakdown(netlist)
        power = self._power_estimator.scan_mode_power(netlist)
        encode_cost = self._energy_calculator.encode_cost(
            netlist, self.chain_length)
        decode_cost = self._energy_calculator.decode_cost(
            netlist, self.chain_length)
        return CostReport(config=self.config, area=area, power=power,
                          encode_cost=encode_cost, decode_cost=decode_cost)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        code_names = ", ".join(getattr(c, "name", repr(c)) for c in self.codes)
        return (f"ProtectedDesign({self.circuit.name!r}, codes=[{code_names}], "
                f"W={self.num_chains}, l={self.chain_length})")


__all__ = ["ProtectedDesign", "CycleOutcome", "CostReport"]
