"""Power-gating controllers: conventional and monitored control sequences.

Paper Fig. 3 contrasts the two control flows:

* **conventional** (Fig. 3(a)): ACTIVE -> (sleep=1) save state, turn
  switches off -> SLEEP -> (sleep=0) turn switches on, restore state ->
  ACTIVE;
* **proposed** (Fig. 3(b)): ACTIVE -> (sleep=1) **encode** -> save
  state, turn switches off -> SLEEP -> (sleep=0) turn switches on,
  restore state -> **decode** -> ACTIVE if clean / corrected, otherwise
  raise an error code.

Both controllers are implemented as explicit finite-state machines with
a transition log, so that the test suite can assert that only legal
sequences occur and that the monitored controller performs exactly one
encode before every sleep and one decode after every wake.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.circuit.netlist import Netlist


class ControllerState(enum.Enum):
    """States of the power-gating control FSM."""

    ACTIVE = "active"
    ENCODE = "encode"
    SLEEP_ENTRY = "sleep_entry"
    SLEEP = "sleep"
    WAKE = "wake"
    DECODE = "decode"
    ERROR = "error"


class ErrorCode(enum.Enum):
    """Error code raised at the end of the decode sequence (Fig. 3(b))."""

    #: No mismatch was observed; the state is trusted as-is.
    NONE = "none"
    #: Mismatches were observed and every one of them was corrected.
    CORRECTED = "corrected"
    #: Mismatches were observed that could not be corrected; software
    #: recovery (or a reset) is required.
    UNCORRECTABLE = "uncorrectable"


class IllegalTransition(RuntimeError):
    """Raised when a control signal arrives in a state that cannot accept it."""


@dataclass(frozen=True)
class Transition:
    """One logged FSM transition."""

    source: ControllerState
    destination: ControllerState
    signal: str


class PowerGatingController:
    """The conventional power-gating control sequence (paper Fig. 3(a)).

    The controller is driven by four signals, invoked as methods in
    order: :meth:`sleep_request`, :meth:`sleep_entered`,
    :meth:`wake_request`, :meth:`wake_completed`.
    """

    #: States involved in entering sleep, in order.
    SLEEP_SEQUENCE: Tuple[str, ...] = ("retain", "power_off")
    #: States involved in waking up, in order.
    WAKE_SEQUENCE: Tuple[str, ...] = ("power_on", "restore")

    def __init__(self) -> None:
        self._state = ControllerState.ACTIVE
        self._log: List[Transition] = []
        self._sleep_cycles = 0
        self._error_code = ErrorCode.NONE

    # ------------------------------------------------------------------
    @property
    def state(self) -> ControllerState:
        """Current FSM state."""
        return self._state

    @property
    def transition_log(self) -> Tuple[Transition, ...]:
        """Every transition taken since construction."""
        return tuple(self._log)

    @property
    def sleep_cycles_completed(self) -> int:
        """Number of complete sleep/wake cycles sequenced so far."""
        return self._sleep_cycles

    @property
    def error_code(self) -> ErrorCode:
        """Error code raised by the most recent wake-up."""
        return self._error_code

    def _go(self, destination: ControllerState, signal: str) -> None:
        self._log.append(Transition(self._state, destination, signal))
        self._state = destination

    def _expect(self, *allowed: ControllerState) -> None:
        if self._state not in allowed:
            raise IllegalTransition(
                f"signal not allowed in state {self._state.value!r} "
                f"(allowed: {[s.value for s in allowed]})")

    # ------------------------------------------------------------------
    # Control signals
    # ------------------------------------------------------------------
    def sleep_request(self) -> List[str]:
        """Signal ``sleep = 1``; returns the phases the platform must run."""
        self._expect(ControllerState.ACTIVE)
        self._go(ControllerState.SLEEP_ENTRY, "sleep=1")
        return list(self.SLEEP_SEQUENCE)

    def sleep_entered(self) -> None:
        """The sleep sequence finished; the domain is now gated off."""
        self._expect(ControllerState.SLEEP_ENTRY)
        self._go(ControllerState.SLEEP, "sleep_sequence_done")

    def wake_request(self) -> List[str]:
        """Signal ``sleep = 0``; returns the wake-up phases to run."""
        self._expect(ControllerState.SLEEP)
        self._go(ControllerState.WAKE, "sleep=0")
        return list(self.WAKE_SEQUENCE)

    def wake_completed(self) -> ErrorCode:
        """The wake-up sequence finished; back to active mode."""
        self._expect(ControllerState.WAKE)
        self._go(ControllerState.ACTIVE, "wake_sequence_done")
        self._sleep_cycles += 1
        self._error_code = ErrorCode.NONE
        return self._error_code

    def reset(self) -> None:
        """Force the controller back to ACTIVE (system reset)."""
        self._go(ControllerState.ACTIVE, "reset")
        self._error_code = ErrorCode.NONE

    # ------------------------------------------------------------------
    def build_netlist(self, chain_length: int = 0) -> Netlist:
        """Structural netlist of the controller, group ``controller``."""
        netlist = Netlist("pg_controller")
        group = "controller"
        # State register (one-hot-ish encoding of up to 7 states).
        netlist.add_cells("dff", 3, group=group)
        # Handshake / request synchronisers.
        netlist.add_cells("dff", 4, group=group)
        # Next-state and output decode logic.
        netlist.add_cells("nand2", 18, group=group)
        netlist.add_cells("nor2", 10, group=group)
        netlist.add_cells("inv", 8, group=group)
        if chain_length > 0:
            # Cycle counter for the encode/decode passes.
            counter_bits = max(1, math.ceil(math.log2(chain_length + 1)))
            netlist.add_cells("dff", counter_bits, group=group)
            netlist.add_cells("xor2", counter_bits, group=group)
            netlist.add_cells("and2", counter_bits, group=group)
        return netlist


class MonitoredPowerGatingController(PowerGatingController):
    """The proposed control sequence with state monitoring (Fig. 3(b)).

    Adds the ENCODE state before the sleep sequence and the DECODE state
    after the wake-up sequence.  :meth:`decode_completed` consumes the
    monitoring outcome and either returns to ACTIVE (clean or fully
    corrected) or enters the ERROR state (uncorrectable), from which
    only :meth:`recovery_completed` or :meth:`reset` leads back to
    ACTIVE.
    """

    def __init__(self) -> None:
        super().__init__()
        self._encodes = 0
        self._decodes = 0

    @property
    def encode_passes(self) -> int:
        """Number of encode passes sequenced."""
        return self._encodes

    @property
    def decode_passes(self) -> int:
        """Number of decode passes sequenced."""
        return self._decodes

    # ------------------------------------------------------------------
    def sleep_request(self) -> List[str]:
        """Signal ``sleep = 1``; the encode pass precedes the sleep sequence."""
        self._expect(ControllerState.ACTIVE)
        self._go(ControllerState.ENCODE, "sleep=1")
        return ["encode"] + list(self.SLEEP_SEQUENCE)

    def encode_completed(self) -> None:
        """The encode pass finished; proceed with the sleep sequence."""
        self._expect(ControllerState.ENCODE)
        self._encodes += 1
        self._go(ControllerState.SLEEP_ENTRY, "encode_done")

    def wake_request(self) -> List[str]:
        """Signal ``sleep = 0``; the decode pass follows the wake sequence."""
        self._expect(ControllerState.SLEEP)
        self._go(ControllerState.WAKE, "sleep=0")
        return list(self.WAKE_SEQUENCE) + ["decode"]

    def wake_completed(self) -> ErrorCode:
        """The restore finished; move on to the decode pass."""
        self._expect(ControllerState.WAKE)
        self._go(ControllerState.DECODE, "wake_sequence_done")
        return self._error_code

    def decode_completed(self, error_detected: bool,
                         fully_corrected: bool) -> ErrorCode:
        """Consume the decode outcome and finish the cycle.

        Parameters
        ----------
        error_detected:
            Whether any monitoring block reported a mismatch.
        fully_corrected:
            Whether every mismatch was repaired by the correction block.
        """
        self._expect(ControllerState.DECODE)
        self._decodes += 1
        if not error_detected:
            self._error_code = ErrorCode.NONE
            self._go(ControllerState.ACTIVE, "decode_clean")
        elif fully_corrected:
            self._error_code = ErrorCode.CORRECTED
            self._go(ControllerState.ACTIVE, "decode_corrected")
        else:
            self._error_code = ErrorCode.UNCORRECTABLE
            self._go(ControllerState.ERROR, "decode_uncorrectable")
        self._sleep_cycles += 1
        return self._error_code

    def recovery_completed(self) -> None:
        """Software recovery finished; leave the ERROR state."""
        self._expect(ControllerState.ERROR)
        self._go(ControllerState.ACTIVE, "recovery_done")
        self._error_code = ErrorCode.NONE

    # ------------------------------------------------------------------
    def build_netlist(self, chain_length: int = 0) -> Netlist:
        """Controller netlist; slightly larger than the conventional FSM."""
        netlist = super().build_netlist(chain_length)
        group = "controller"
        # Extra states, the error-code register and the monitor handshake.
        netlist.add_cells("dff", 3, group=group)
        netlist.add_cells("nand2", 10, group=group)
        netlist.add_cells("or2", 6, group=group)
        return netlist


__all__ = [
    "ControllerState",
    "ErrorCode",
    "IllegalTransition",
    "Transition",
    "PowerGatingController",
    "MonitoredPowerGatingController",
]
