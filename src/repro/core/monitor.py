"""State monitoring blocks and the monitor bank.

The state monitoring block (paper Fig. 2) sits on the scan path of the
power-gated circuit:

* **encode** (before sleep, ``sel = 0``, ``se = 1``): the scan chains
  circulate for ``l`` cycles with the scan-out looped back to the
  scan-in; every cycle the block observes one bit per chain, computes
  check bits and stores them;
* **decode** (after wake-up, ``sel = 1``, ``se = 1``): the chains
  circulate again; the block recomputes the check bits, compares them
  against the stored ones, and --- for correcting codes --- hands the
  error location to the error correction block, which repairs the bit
  on the feedback path into the scan-in port.

Two concrete block types mirror the paper's two code choices:

* :class:`HammingMonitorBlock` stores ``n - k`` parity bits for every
  ``k``-bit slice (one slice per cycle) and corrects single errors per
  slice;
* :class:`CRCMonitorBlock` folds the whole pass into one CRC-16
  signature and can only detect.

:class:`MonitorBank` aggregates the parallel blocks of a configuration
(Fig. 5(a)) and drives complete encode/decode passes over the chains.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.circuit.netlist import Netlist
from repro.circuit.scan import ScanChain
from repro.codes.base import BlockCode, DecodeStatus, StreamCode, StreamState
from repro.core.corrector import CorrectionEvent


class MonitorReport(NamedTuple):
    """Outcome of one decode pass of a single monitoring block.

    A :class:`typing.NamedTuple` rather than a frozen dataclass:
    batched engines materialise one report per detected sequence, so on
    dense-error campaigns construction cost is a first-order term --
    tuple construction is several times cheaper than frozen-dataclass
    ``object.__setattr__`` initialisation, with the same immutability
    and field-wise equality.

    Attributes
    ----------
    block_index:
        Which monitoring block produced the report.
    error_detected:
        True when any mismatch against the stored check bits was seen.
    corrections:
        Correction events issued to the error correction block.
    uncorrectable:
        True when a mismatch was seen that the block could not map to a
        single-bit correction (stream codes always set this on
        detection; block codes set it when the syndrome points at a
        parity bit or when multiple slices disagree in a way the code
        cannot repair).
    slices_with_errors:
        Cycle indices at which mismatches were observed (block codes).
    """

    block_index: int
    error_detected: bool
    corrections: Tuple[CorrectionEvent, ...] = ()
    uncorrectable: bool = False
    slices_with_errors: Tuple[int, ...] = ()

    @property
    def num_corrections(self) -> int:
        """Number of bit corrections issued by this block."""
        return len(self.corrections)


class StateMonitorBlock(ABC):
    """Common interface of the monitoring blocks.

    A block observes a fixed set of chains (identified by their indices
    within the bank) one bit per chain per cycle.
    """

    #: Whether this block can issue corrections (block codes) or only
    #: detect (stream codes).  Detection-only blocks are fed the
    #: *post-correction* feedback stream during decode, so a clean CRC
    #: after a Hamming correction really means the state is trusted.
    can_correct: bool = False

    def __init__(self, block_index: int, chain_indices: Sequence[int]):
        if not chain_indices:
            raise ValueError("a monitoring block needs at least one chain")
        self.block_index = block_index
        self.chain_indices = tuple(chain_indices)

    @property
    def width(self) -> int:
        """Number of chains observed by this block."""
        return len(self.chain_indices)

    @abstractmethod
    def begin_encode(self) -> None:
        """Reset stored check bits and start an encoding pass."""

    @abstractmethod
    def observe_encode(self, data_slice: Sequence[int]) -> None:
        """Absorb one cycle's slice (one bit per observed chain)."""

    @abstractmethod
    def begin_decode(self) -> None:
        """Start a decoding pass against the stored check bits."""

    @abstractmethod
    def observe_decode(self, data_slice: Sequence[int]
                       ) -> Tuple[List[int], List[CorrectionEvent]]:
        """Check one cycle's slice; returns (possibly corrected) slice."""

    @abstractmethod
    def finalize_decode(self) -> MonitorReport:
        """Close the decoding pass and report what was seen."""

    @abstractmethod
    def build_netlist(self, chain_length: int) -> Netlist:
        """Structural netlist of this block for cost accounting."""

    @abstractmethod
    def storage_bits(self, chain_length: int) -> int:
        """Check-bit storage required for a pass of ``chain_length`` cycles."""


class HammingMonitorBlock(StateMonitorBlock):
    """Monitoring block built around a systematic block code.

    Despite the name the block accepts any
    :class:`~repro.codes.base.BlockCode` (Hamming, SECDED,
    interleaved Hamming, parity); Hamming is the paper's choice.

    The block observes ``code.k`` chains.  When it is assigned fewer
    chains (the tail block of a configuration whose chain count is not
    a multiple of ``k``), the missing inputs are tied to constant zero,
    exactly as unused monitor inputs would be tied off in hardware.
    """

    can_correct = True

    def __init__(self, block_index: int, chain_indices: Sequence[int],
                 code: BlockCode):
        super().__init__(block_index, chain_indices)
        if len(chain_indices) > code.k:
            raise ValueError(
                f"block code {code!r} accepts {code.k} chains, "
                f"got {len(chain_indices)}")
        self.code = code
        self._stored_parity: List[Tuple[int, ...]] = []
        self._cycle = 0
        self._detected = False
        self._uncorrectable = False
        self._corrections: List[CorrectionEvent] = []
        self._bad_slices: List[int] = []

    # ------------------------------------------------------------------
    def _pad(self, data_slice: Sequence[int]) -> List[int]:
        padded = [0 if b is None else int(b) for b in data_slice]
        if len(padded) != self.width:
            raise ValueError(
                f"expected {self.width} bits per slice, got {len(padded)}")
        padded.extend([0] * (self.code.k - self.width))
        return padded

    def begin_encode(self) -> None:
        """Clear the parity storage and restart the cycle counter."""
        self._stored_parity = []
        self._cycle = 0

    def observe_encode(self, data_slice: Sequence[int]) -> None:
        """Compute and store the parity bits of one slice."""
        padded = self._pad(data_slice)
        self._stored_parity.append(self.code.parity_bits(padded))
        self._cycle += 1

    def begin_decode(self) -> None:
        """Rewind to the first stored slice and clear decode bookkeeping."""
        self._cycle = 0
        self._detected = False
        self._uncorrectable = False
        self._corrections = []
        self._bad_slices = []

    def observe_decode(self, data_slice: Sequence[int]
                       ) -> Tuple[List[int], List[CorrectionEvent]]:
        """Check one slice against its stored parity and correct it."""
        if self._cycle >= len(self._stored_parity):
            raise RuntimeError(
                "decode pass is longer than the stored encode pass")
        padded = self._pad(data_slice)
        stored = self._stored_parity[self._cycle]
        result = self.code.check(padded, stored)
        events: List[CorrectionEvent] = []
        corrected_slice = list(padded[:self.width])
        if result.status is DecodeStatus.CORRECTED:
            self._detected = True
            self._bad_slices.append(self._cycle)
            for position in result.corrected_positions:
                if position < self.width:
                    corrected_slice[position] = result.data[position]
                    events.append(CorrectionEvent(
                        block_index=self.block_index,
                        chain_index=self.chain_indices[position],
                        cycle=self._cycle))
                elif position >= self.code.k:
                    # The syndrome points at a stored parity bit: the
                    # scan data is fine, nothing to fix in the circuit.
                    pass
                else:
                    # Correction lands on a tied-off padding input --
                    # only possible when several real errors aliased;
                    # treat as uncorrectable.
                    self._uncorrectable = True
        elif result.status is DecodeStatus.DETECTED:
            self._detected = True
            self._uncorrectable = True
            self._bad_slices.append(self._cycle)
        self._corrections.extend(events)
        self._cycle += 1
        return corrected_slice, events

    def finalize_decode(self) -> MonitorReport:
        """Report the outcome of the decode pass."""
        return MonitorReport(
            block_index=self.block_index,
            error_detected=self._detected,
            corrections=tuple(self._corrections),
            uncorrectable=self._uncorrectable,
            slices_with_errors=tuple(self._bad_slices))

    # ------------------------------------------------------------------
    def storage_bits(self, chain_length: int) -> int:
        """Parity storage: ``r`` bits per cycle of the pass."""
        return chain_length * self.code.r

    def build_netlist(self, chain_length: int) -> Netlist:
        """Parity storage plus encode/syndrome logic, group ``monitor``."""
        netlist = Netlist(f"hamming_monitor_{self.block_index}")
        group = "monitor"
        netlist.add_cells("aon_dff", self.storage_bits(chain_length),
                          group=group)
        encoder_xors = getattr(self.code, "encoder_xor_count", None)
        decoder_xors = getattr(self.code, "decoder_xor_count", None)
        n_enc = encoder_xors() if callable(encoder_xors) else 2 * self.code.r
        n_dec = decoder_xors() if callable(decoder_xors) else 3 * self.code.r
        netlist.add_cells("xor2", n_enc + n_dec, group=group)
        # Parity compare and error-flag generation.
        netlist.add_cells("xnor2", self.code.r, group=group)
        netlist.add_cells("and2", max(self.code.r - 1, 1), group=group)
        netlist.add_cells("or2", 2, group=group)
        return netlist


class CRCMonitorBlock(StateMonitorBlock):
    """Detection-only monitoring block built around a stream code.

    All observed chains feed one signature register: each cycle the
    block folds ``width`` bits (in chain order) into the running
    signature.  After the decode pass the recomputed signature is
    compared with the stored one.

    During decode the block is fed the post-correction feedback stream
    (see :class:`StateMonitorBlock.can_correct`), so when it is stacked
    on top of a correcting code it verifies the *repaired* state: a
    mis-correction by the Hamming block shows up as a CRC mismatch.
    """

    can_correct = False

    def __init__(self, block_index: int, chain_indices: Sequence[int],
                 code: StreamCode):
        super().__init__(block_index, chain_indices)
        self.code = code
        self._stored_signature: Optional[Tuple[int, ...]] = None
        self._state: Optional[StreamState] = None
        self._decode_state: Optional[StreamState] = None

    def begin_encode(self) -> None:
        """Clear the stored signature and start a fresh accumulator."""
        self._stored_signature = None
        self._state = self.code.new_state()

    def observe_encode(self, data_slice: Sequence[int]) -> None:
        """Fold one slice into the running signature."""
        if self._state is None:
            raise RuntimeError("begin_encode() must be called first")
        if len(data_slice) != self.width:
            raise ValueError(
                f"expected {self.width} bits per slice, got {len(data_slice)}")
        for bit in data_slice:
            self._state.shift(0 if bit is None else int(bit))
        self._stored_signature = self._state.signature()

    def begin_decode(self) -> None:
        """Start recomputing the signature for comparison."""
        if self._stored_signature is None:
            raise RuntimeError("no stored signature: encode first")
        self._decode_state = self.code.new_state()

    def observe_decode(self, data_slice: Sequence[int]
                       ) -> Tuple[List[int], List[CorrectionEvent]]:
        """Fold one slice into the decode signature (no correction)."""
        if self._decode_state is None:
            raise RuntimeError("begin_decode() must be called first")
        if len(data_slice) != self.width:
            raise ValueError(
                f"expected {self.width} bits per slice, got {len(data_slice)}")
        for bit in data_slice:
            self._decode_state.shift(0 if bit is None else int(bit))
        return [0 if b is None else int(b) for b in data_slice], []

    def finalize_decode(self) -> MonitorReport:
        """Compare the recomputed signature with the stored one."""
        if self._decode_state is None or self._stored_signature is None:
            raise RuntimeError("decode pass was not run")
        mismatch = self._decode_state.signature() != self._stored_signature
        return MonitorReport(
            block_index=self.block_index,
            error_detected=mismatch,
            corrections=(),
            uncorrectable=mismatch)

    # ------------------------------------------------------------------
    def storage_bits(self, chain_length: int) -> int:
        """Signature storage is independent of the chain length."""
        return self.code.signature_bits

    def build_netlist(self, chain_length: int) -> Netlist:
        """Signature registers plus feedback/compare logic, group ``monitor``."""
        netlist = Netlist(f"crc_monitor_{self.block_index}")
        group = "monitor"
        # Working signature register (shifts every cycle).
        netlist.add_cells("aon_dff", self.code.signature_bits, group=group)
        # Stored reference signature (written once per encode pass).
        netlist.add_cells("ret_latch", self.code.signature_bits, group=group)
        feedback = getattr(self.code, "feedback_xor_count", None)
        n_feedback = feedback() if callable(feedback) else self.code.signature_bits
        # Parallel input folding: one XOR per observed chain plus the
        # feedback network.
        netlist.add_cells("xor2", n_feedback + self.width, group=group)
        # Signature compare.
        netlist.add_cells("xnor2", self.code.signature_bits, group=group)
        netlist.add_cells("and2", self.code.signature_bits - 1, group=group)
        return netlist


class MonitorBank:
    """All monitoring blocks of a configuration, driven together.

    Parameters
    ----------
    blocks:
        The monitoring blocks; their ``chain_indices`` must jointly
        cover every chain they are expected to observe.
    """

    def __init__(self, blocks: Sequence[StateMonitorBlock]):
        if not blocks:
            raise ValueError("a monitor bank needs at least one block")
        self.blocks = list(blocks)

    @property
    def num_blocks(self) -> int:
        """Number of monitoring blocks in the bank."""
        return len(self.blocks)

    def covered_chains(self) -> Tuple[int, ...]:
        """All chain indices observed by at least one block."""
        covered = set()
        for block in self.blocks:
            covered.update(block.chain_indices)
        return tuple(sorted(covered))

    # ------------------------------------------------------------------
    def encode_pass(self, chains: Sequence[ScanChain]) -> int:
        """Run one full encoding pass over the chains.

        The chains circulate once (scan-out looped back to scan-in,
        state preserved); every block observes its slice each cycle.
        Returns the number of cycles spent.
        """
        length = self._common_length(chains)
        for block in self.blocks:
            block.begin_encode()
        for _ in range(length):
            out_bits = [chain.flops[-1].q for chain in chains]
            for block in self.blocks:
                data_slice = [out_bits[i] for i in block.chain_indices]
                block.observe_encode(data_slice)
            for chain, bit in zip(chains, out_bits):
                chain.shift(bit)
        return length

    def decode_pass(self, chains: Sequence[ScanChain]
                    ) -> List[MonitorReport]:
        """Run one full decoding pass with on-the-fly correction.

        Each cycle, the bits leaving the chains are checked by the
        correcting blocks; corrected bits replace the originals on the
        feedback path into the scan-in ports, so after the pass the
        circuit holds the corrected state.  Detection-only blocks then
        observe the corrected feedback stream, so their verdict applies
        to the state the circuit will actually resume with.  Returns
        every block's report (in the bank's block order).
        """
        length = self._common_length(chains)
        for block in self.blocks:
            block.begin_decode()
        correcting = [b for b in self.blocks if b.can_correct]
        observing = [b for b in self.blocks if not b.can_correct]
        for _ in range(length):
            out_bits = [chain.flops[-1].q for chain in chains]
            feedback = [0 if b is None else int(b) for b in out_bits]
            for block in correcting:
                data_slice = [out_bits[i] for i in block.chain_indices]
                corrected_slice, _events = block.observe_decode(data_slice)
                for local, chain_index in enumerate(block.chain_indices):
                    feedback[chain_index] = corrected_slice[local]
            for block in observing:
                data_slice = [feedback[i] for i in block.chain_indices]
                block.observe_decode(data_slice)
            for chain, bit in zip(chains, feedback):
                chain.shift(bit)
        return [block.finalize_decode() for block in self.blocks]

    # ------------------------------------------------------------------
    def build_netlist(self, chain_length: int) -> Netlist:
        """Combined netlist of every block in the bank."""
        bank = Netlist("monitor_bank")
        for block in self.blocks:
            bank.merge(block.build_netlist(chain_length))
        return bank

    def total_storage_bits(self, chain_length: int) -> int:
        """Total check-bit storage across the bank."""
        return sum(block.storage_bits(chain_length)
                   for block in self.blocks)

    @staticmethod
    def _common_length(chains: Sequence[ScanChain]) -> int:
        if not chains:
            raise ValueError("at least one chain is required")
        lengths = {len(chain) for chain in chains}
        if len(lengths) != 1:
            raise ValueError(
                f"all chains must have equal length, got {sorted(lengths)}")
        return lengths.pop()


CodeLike = Union[BlockCode, StreamCode]


def build_monitor_blocks(code: CodeLike, num_chains: int,
                         monitor_width: int) -> List[StateMonitorBlock]:
    """Instantiate the monitoring blocks for a configuration.

    Block codes get one block per ``monitor_width`` chains (normally
    ``monitor_width == code.k``); stream codes get a single block
    observing every chain, matching the small-and-shared CRC monitor of
    the paper's Table I.
    """
    if num_chains <= 0:
        raise ValueError("chain count must be positive")
    if isinstance(code, StreamCode):
        return [CRCMonitorBlock(0, tuple(range(num_chains)), code)]
    blocks: List[StateMonitorBlock] = []
    width = min(monitor_width, code.k)
    index = 0
    for start in range(0, num_chains, width):
        chain_indices = tuple(range(start, min(start + width, num_chains)))
        blocks.append(HammingMonitorBlock(index, chain_indices, code))
        index += 1
    return blocks


__all__ = [
    "MonitorReport",
    "StateMonitorBlock",
    "HammingMonitorBlock",
    "CRCMonitorBlock",
    "MonitorBank",
    "build_monitor_blocks",
]
