"""Cycle-sequence tracing for monitored sleep/wake cycles.

The FPGA test bench of the paper reports events over RS-232; in this
reproduction the equivalent observability hook is a :class:`TraceLog`
that a :class:`~repro.core.protected.ProtectedDesign` user can populate
from :class:`~repro.core.protected.CycleOutcome` objects (or any other
source) and then render as a timeline, export as rows, or summarise.

It is intentionally independent of the controller internals so it can
also record external events (stimulus writes, comparator verdicts,
software recovery) alongside the power-gating phases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.controller import ErrorCode
from repro.core.protected import CycleOutcome


class TraceEventKind(enum.Enum):
    """Kinds of events a trace can hold."""

    ENCODE = "encode"
    SLEEP = "sleep"
    WAKE = "wake"
    DECODE = "decode"
    INJECTION = "injection"
    CORRECTION = "correction"
    ERROR = "error"
    RECOVERY = "recovery"
    NOTE = "note"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event.

    Timestamps are in nanoseconds of modelled time (not wall clock):
    encode/decode passes advance time by ``l x T``, sleep intervals by
    whatever the caller specifies.
    """

    time_ns: float
    kind: TraceEventKind
    detail: str = ""
    cycle_index: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time_ns:12.1f} ns] {self.kind.value:10s} {self.detail}"


class TraceLog:
    """An append-only log of power-gating events with modelled time.

    Parameters
    ----------
    clock_period_ns:
        Scan clock period used to convert pass cycle counts to time.
    """

    def __init__(self, clock_period_ns: float = 10.0):
        if clock_period_ns <= 0:
            raise ValueError("clock period must be positive")
        self.clock_period_ns = clock_period_ns
        self._events: List[TraceEvent] = []
        self._now_ns = 0.0
        self._cycles = 0

    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """All recorded events in order."""
        return tuple(self._events)

    @property
    def now_ns(self) -> float:
        """Current modelled time in nanoseconds."""
        return self._now_ns

    @property
    def num_cycles(self) -> int:
        """Number of sleep/wake cycles recorded."""
        return self._cycles

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    def advance(self, duration_ns: float) -> None:
        """Advance modelled time without recording an event."""
        if duration_ns < 0:
            raise ValueError("time cannot run backwards")
        self._now_ns += duration_ns

    def note(self, detail: str) -> TraceEvent:
        """Record a free-form annotation at the current time."""
        return self._record(TraceEventKind.NOTE, detail)

    def _record(self, kind: TraceEventKind, detail: str = "") -> TraceEvent:
        event = TraceEvent(time_ns=self._now_ns, kind=kind, detail=detail,
                           cycle_index=self._cycles)
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    def record_cycle(self, outcome: CycleOutcome, chain_length: int,
                     sleep_duration_ns: float = 1000.0) -> None:
        """Record one monitored sleep/wake cycle from its outcome.

        The encode and decode passes each advance time by
        ``chain_length x clock_period``; the sleep interval advances it
        by ``sleep_duration_ns``; the wake-up settle time comes from the
        outcome's rush-current record.
        """
        if chain_length <= 0:
            raise ValueError("chain length must be positive")
        pass_ns = chain_length * self.clock_period_ns

        self._record(TraceEventKind.ENCODE,
                     f"encode pass ({chain_length} cycles)")
        self.advance(pass_ns)
        self._record(TraceEventKind.SLEEP, "retention save, switches off")
        self.advance(sleep_duration_ns)
        if outcome.injected_errors:
            self._record(TraceEventKind.INJECTION,
                         f"{outcome.injected_errors} bit(s) corrupted")
        settle_ns = outcome.wake_event.settle_time_s * 1e9
        self._record(
            TraceEventKind.WAKE,
            f"switches on, droop {outcome.wake_event.peak_droop_v:.3f} V, "
            f"settle {settle_ns:.1f} ns")
        self.advance(settle_ns)
        self._record(TraceEventKind.DECODE,
                     f"decode pass ({chain_length} cycles)")
        self.advance(pass_ns)
        if outcome.corrections_applied:
            self._record(TraceEventKind.CORRECTION,
                         f"{outcome.corrections_applied} bit(s) corrected")
        if outcome.error_code is ErrorCode.UNCORRECTABLE:
            self._record(TraceEventKind.ERROR,
                         "uncorrectable: software recovery required")
            self._record(TraceEventKind.RECOVERY, "recovery handshake")
        self._cycles += 1

    # ------------------------------------------------------------------
    def counts(self) -> Dict[TraceEventKind, int]:
        """Histogram of event kinds."""
        histogram: Dict[TraceEventKind, int] = {}
        for event in self._events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def events_of(self, kind: TraceEventKind) -> List[TraceEvent]:
        """All events of one kind."""
        return [event for event in self._events if event.kind is kind]

    def cycle_events(self, cycle_index: int) -> List[TraceEvent]:
        """All events belonging to one sleep/wake cycle."""
        return [event for event in self._events
                if event.cycle_index == cycle_index]

    def monitoring_overhead_ns(self) -> float:
        """Modelled time spent in encode and decode passes."""
        total = 0.0
        for event in self._events:
            if event.kind in (TraceEventKind.ENCODE, TraceEventKind.DECODE):
                # Each pass advanced time by l x T immediately after the
                # event; recover it from the following event or now.
                total += self._duration_after(event)
        return total

    def _duration_after(self, event: TraceEvent) -> float:
        later = [e.time_ns for e in self._events if e.time_ns > event.time_ns]
        end = min(later) if later else self._now_ns
        return end - event.time_ns

    def render(self, limit: Optional[int] = None) -> str:
        """Render the trace as a text timeline."""
        events = self._events if limit is None else self._events[:limit]
        lines = [f"trace: {len(self._events)} events over "
                 f"{self._now_ns:.1f} ns of modelled time"]
        for event in events:
            lines.append(f"  [{event.time_ns:12.1f} ns] c{event.cycle_index:<3d} "
                         f"{event.kind.value:10s} {event.detail}")
        return "\n".join(lines)


def trace_cycles(design, outcomes: Iterable[CycleOutcome],
                 sleep_duration_ns: float = 1000.0) -> TraceLog:
    """Build a :class:`TraceLog` from a design and its cycle outcomes."""
    log = TraceLog(clock_period_ns=design.config.clock_period_ns)
    for outcome in outcomes:
        log.record_cycle(outcome, design.chain_length,
                         sleep_duration_ns=sleep_duration_ns)
    return log


__all__ = ["TraceEventKind", "TraceEvent", "TraceLog", "trace_cycles"]
