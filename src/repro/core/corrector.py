"""Error correction block.

The error correction block (paper Fig. 2) receives error locations from
the state monitoring block during the decode pass and flips the
corresponding bits on the feedback path into the circuit's scan-in
ports, so that by the end of the pass the corrupted state has been
repaired in place.

In this reproduction the *datapath* of the correction (flipping the bit
on the feedback path) is implemented inside
:meth:`repro.core.monitor.MonitorBank.decode_pass`; this module provides
the bookkeeping object (:class:`CorrectionEvent`), the aggregation of
events across a pass, and the structural netlist of the correction
hardware used by the cost model.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Tuple

from repro.circuit.netlist import Netlist
from repro.codes.base import BlockCode


class CorrectionEvent(NamedTuple):
    """One bit correction issued during a decode pass.

    A :class:`typing.NamedTuple` for cheap construction: dense-error
    batched campaigns create one event per corrected bit, so event
    construction sits on the campaign hot path.

    Attributes
    ----------
    block_index:
        The monitoring block that located the error.
    chain_index:
        The scan chain whose bit was corrected.
    cycle:
        The decode-pass cycle at which the correction happened; together
        with the chain index this identifies the physical flip-flop.
    """

    block_index: int
    chain_index: int
    cycle: int


class ErrorCorrectionBlock:
    """Aggregates correction events and models the correction hardware.

    Parameters
    ----------
    code:
        The block code whose error locations this block decodes; used
        only for sizing the location-decode logic.  ``None`` models a
        detection-only configuration (no correction hardware at all).
    num_chains:
        Number of scan chains whose feedback path carries a correction
        XOR.
    """

    def __init__(self, code: Optional[BlockCode], num_chains: int):
        if num_chains <= 0:
            raise ValueError("chain count must be positive")
        self.code = code
        self.num_chains = num_chains
        self._events: List[CorrectionEvent] = []

    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[CorrectionEvent, ...]:
        """All corrections recorded so far."""
        return tuple(self._events)

    @property
    def num_corrections(self) -> int:
        """Number of corrections recorded so far."""
        return len(self._events)

    def record(self, events: Iterable[CorrectionEvent]) -> None:
        """Record correction events reported by the monitor bank."""
        self._events.extend(events)

    def clear(self) -> None:
        """Forget all recorded corrections (start of a new cycle)."""
        self._events = []

    def corrected_flops(self, chain_length: int) -> Tuple[Tuple[int, int], ...]:
        """Corrected flop coordinates as ``(chain, position)`` pairs.

        The bit corrected at decode cycle ``c`` of a chain of length
        ``l`` belongs to scan position ``l - 1 - c`` (scan-out side
        leaves first).
        """
        return tuple(sorted(
            (event.chain_index, chain_length - 1 - event.cycle)
            for event in self._events))

    # ------------------------------------------------------------------
    def build_netlist(self, num_blocks: int = 1) -> Netlist:
        """Structural netlist of the correction hardware, group ``corrector``.

        Per monitoring block: an error-location decoder (syndrome to
        one-hot) and the correction XORs on the data path; per chain:
        the feedback multiplexer that selects between the raw loop-back
        bit and the corrected bit.
        """
        netlist = Netlist("error_corrector")
        group = "corrector"
        if self.code is not None:
            gate_counter = getattr(self.code, "corrector_gate_count", None)
            per_block = (gate_counter() if callable(gate_counter)
                         else 2 * self.code.n)
            netlist.add_cells("and2", per_block * max(num_blocks, 1),
                              group=group)
            netlist.add_cells("xor2",
                              self.code.k * max(num_blocks, 1), group=group)
        # Feedback multiplexers on every chain's scan-in path.
        netlist.add_cells("mux2", self.num_chains, group=group)
        return netlist


__all__ = ["CorrectionEvent", "ErrorCorrectionBlock"]
