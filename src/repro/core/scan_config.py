"""Scan-chain configuration for dual-use monitoring and manufacturing test.

Paper Section III: the same flip-flops can be organised as

* ``W`` short chains feeding ``W / k`` state-monitoring blocks in
  parallel (monitoring mode, Fig. 5(a)), which makes the encode/decode
  latency ``l x T = ceil(N / W) x T``; and
* a smaller number of long chains matching the tester's I/O width
  (manufacturing-test mode, Fig. 5(b)), obtained by looping the
  scan-out of one group of chains back into the scan-in of the next.

The paper's worked example: 128 flip-flops in 4 chains need 32 cycles
per pass; re-ordering them into 16 chains with 4 parallel monitoring
blocks needs only 8 cycles --- a 4x speed-up --- while test mode still
sees 4 chains of length 32.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class TestModeMapping:
    """How monitoring-mode chains are concatenated for manufacturing test.

    ``groups[i]`` lists the monitoring-chain indices that are daisy
    chained (scan-out looped back to the next chain's scan-in) to form
    test chain ``i`` --- the So[3:0] -> Si[7:4] wiring of Fig. 5(b).
    """

    test_width: int
    groups: Tuple[Tuple[int, ...], ...]
    test_chain_length: int

    @property
    def num_loopbacks(self) -> int:
        """Scan-out-to-scan-in loop-back connections needed."""
        return sum(max(len(group) - 1, 0) for group in self.groups)


@dataclass(frozen=True)
class ScanChainConfig:
    """Geometry of the monitoring scan-chain configuration.

    Parameters
    ----------
    num_registers:
        Total number of scanned flip-flops ``N`` (including any padding
        cells added to balance the chains).
    num_chains:
        Number of scan chains ``W`` in monitoring mode.
    monitor_width:
        Input width of one state monitoring block (``k`` of the block
        code, e.g. 4 for Hamming(7,4); for stream codes this is simply
        how many chains share one signature register).
    test_width:
        Scan I/O width available for manufacturing test (number of test
        scan ports).
    clock_period_ns:
        Scan-shift clock period ``T`` in nanoseconds (paper: 10 ns at
        100 MHz).
    """

    num_registers: int
    num_chains: int
    monitor_width: int = 4
    test_width: int = 4
    clock_period_ns: float = 10.0

    def __post_init__(self) -> None:
        if self.num_registers <= 0:
            raise ValueError("register count must be positive")
        if self.num_chains <= 0:
            raise ValueError("chain count must be positive")
        if self.num_chains > self.num_registers:
            raise ValueError(
                f"cannot split {self.num_registers} registers into "
                f"{self.num_chains} chains")
        if self.monitor_width <= 0:
            raise ValueError("monitor width must be positive")
        if self.test_width <= 0:
            raise ValueError("test width must be positive")
        if self.test_width > self.num_chains:
            raise ValueError(
                "test width cannot exceed the number of chains")
        if self.clock_period_ns <= 0:
            raise ValueError("clock period must be positive")

    # ------------------------------------------------------------------
    # Monitoring-mode geometry
    # ------------------------------------------------------------------
    @property
    def chain_length(self) -> int:
        """Length ``l`` of each (balanced) monitoring chain."""
        return math.ceil(self.num_registers / self.num_chains)

    @property
    def padded_registers(self) -> int:
        """Register count after padding chains to equal length."""
        return self.chain_length * self.num_chains

    @property
    def padding_cells(self) -> int:
        """Dummy scan cells required to balance the chains."""
        return self.padded_registers - self.num_registers

    @property
    def num_monitor_blocks(self) -> int:
        """Number of parallel state monitoring blocks (``W / k``)."""
        return math.ceil(self.num_chains / self.monitor_width)

    @property
    def encode_cycles(self) -> int:
        """Clock cycles for one encoding (or decoding) pass."""
        return self.chain_length

    @property
    def encode_latency_ns(self) -> float:
        """Encode/decode latency ``l x T`` in nanoseconds."""
        return self.encode_cycles * self.clock_period_ns

    def block_chain_indices(self, block: int) -> Tuple[int, ...]:
        """Chain indices observed by monitoring block ``block``."""
        if not (0 <= block < self.num_monitor_blocks):
            raise IndexError(
                f"block {block} out of range "
                f"(0..{self.num_monitor_blocks - 1})")
        start = block * self.monitor_width
        stop = min(start + self.monitor_width, self.num_chains)
        return tuple(range(start, stop))

    def speedup_over(self, other: "ScanChainConfig") -> float:
        """Latency speed-up of this configuration over another.

        For the paper's example, the 16-chain configuration of 128
        flops has a speed-up of 4 over the 4-chain configuration.
        """
        return other.encode_latency_ns / self.encode_latency_ns

    # ------------------------------------------------------------------
    # Test-mode geometry (Fig. 5(b))
    # ------------------------------------------------------------------
    def test_mode_mapping(self) -> TestModeMapping:
        """Concatenate monitoring chains into ``test_width`` test chains.

        Chains are grouped round-trip so that test chain ``i`` is the
        concatenation of monitoring chains ``i, i + test_width,
        i + 2 * test_width, ...`` --- matching the So[3:0] -> Si[7:4]
        wiring shown in Fig. 5(b).
        """
        groups: List[Tuple[int, ...]] = []
        for port in range(self.test_width):
            group = tuple(range(port, self.num_chains, self.test_width))
            groups.append(group)
        longest = max(len(group) for group in groups)
        return TestModeMapping(
            test_width=self.test_width,
            groups=tuple(groups),
            test_chain_length=longest * self.chain_length)

    @property
    def test_cycles(self) -> int:
        """Clock cycles to shift a full pattern in manufacturing-test mode."""
        return self.test_mode_mapping().test_chain_length

    # ------------------------------------------------------------------
    @classmethod
    def paper_fifo(cls, num_chains: int = 80,
                   monitor_width: int = 4,
                   clock_period_ns: float = 10.0) -> "ScanChainConfig":
        """The paper's 32x32 FIFO configuration (1040 registers)."""
        return cls(num_registers=1040, num_chains=num_chains,
                   monitor_width=monitor_width, test_width=4,
                   clock_period_ns=clock_period_ns)

    def describe(self) -> str:
        """Human-readable one-paragraph description of the configuration."""
        return (
            f"{self.num_registers} registers in {self.num_chains} chains of "
            f"length {self.chain_length} ({self.padding_cells} padding "
            f"cells), {self.num_monitor_blocks} monitoring blocks of width "
            f"{self.monitor_width}; encode/decode takes "
            f"{self.encode_cycles} cycles = {self.encode_latency_ns:.0f} ns; "
            f"test mode uses {self.test_width} ports with chains of "
            f"{self.test_cycles} bits.")


__all__ = ["ScanChainConfig", "TestModeMapping"]
