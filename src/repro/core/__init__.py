"""The paper's core contribution.

* :mod:`repro.core.scan_config` -- scan-chain configuration arithmetic
  and the monitoring/test dual-mode configuration of Fig. 5;
* :mod:`repro.core.monitor` -- the state monitoring block (scan-stream
  encoding and decoding, parity/signature storage, syndrome checking);
* :mod:`repro.core.corrector` -- the error correction block that flips
  corrupted bits on the scan feedback path;
* :mod:`repro.core.controller` -- the conventional (Fig. 3a) and
  monitored (Fig. 3b) power-gating control sequences;
* :mod:`repro.core.protected` -- :class:`ProtectedDesign`, which wires a
  circuit, its power domain, the scan chains, the monitor bank, the
  corrector and the controller together and runs sleep/wake cycles with
  optional fault injection.
"""

from repro.core.scan_config import ScanChainConfig, TestModeMapping
from repro.core.monitor import (
    StateMonitorBlock,
    HammingMonitorBlock,
    CRCMonitorBlock,
    MonitorBank,
    MonitorReport,
)
from repro.core.corrector import ErrorCorrectionBlock, CorrectionEvent
from repro.core.controller import (
    ControllerState,
    ErrorCode,
    PowerGatingController,
    MonitoredPowerGatingController,
)
from repro.core.protected import ProtectedDesign, CycleOutcome
from repro.core.trace import TraceEvent, TraceEventKind, TraceLog, trace_cycles

__all__ = [
    "TraceEvent",
    "TraceEventKind",
    "TraceLog",
    "trace_cycles",
    "ScanChainConfig",
    "TestModeMapping",
    "StateMonitorBlock",
    "HammingMonitorBlock",
    "CRCMonitorBlock",
    "MonitorBank",
    "MonitorReport",
    "ErrorCorrectionBlock",
    "CorrectionEvent",
    "ControllerState",
    "ErrorCode",
    "PowerGatingController",
    "MonitoredPowerGatingController",
    "ProtectedDesign",
    "CycleOutcome",
]
