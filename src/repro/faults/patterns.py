"""Error patterns for injection campaigns.

The paper's validation (Fig. 7) distinguishes two patterns:

* **single errors** -- exactly one flip-flop is flipped per sleep/wake
  sequence (Fig. 7(a)); these are always corrected by the Hamming
  monitors;
* **multiple errors** -- a randomly placed cluster of flips
  (Fig. 7(b)); "burst errors ... are closely clustered" and defeat the
  single-error-correcting Hamming code, but are still always detected.

An :class:`ErrorPattern` is a set of ``(chain, position)`` coordinates,
where ``chain`` indexes the scan chain (the *row* of the paper's Fig. 6)
and ``position`` indexes the bit along the chain (the *column*).

The factories here draw one pattern per call from a ``random.Random``
stream; campaign groups that want a whole batch of patterns in one
vectorised draw use :func:`repro.faults.batch.sample_pattern_batch`,
which mirrors these geometries ("single", "multiple", "burst") in
coordinate-array form.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple


def _unseeded_rng() -> random.Random:
    """Fallback stream for factories called without an ``rng``.

    Interactive convenience only: every campaign and test path injects
    a seeded ``random.Random`` derived from the chunk seed.  This is
    the single sanctioned unseeded construction in the deterministic
    packages, carried by the explicit entry in
    :mod:`repro.devtools.lint.allowlist`.
    """
    return random.Random()


@dataclass(frozen=True)
class ErrorPattern:
    """A set of scan-coordinate error locations to inject.

    Attributes
    ----------
    locations:
        Frozen set of ``(chain_index, bit_position)`` pairs.
    kind:
        Free-form label ("single", "multiple", "burst", "random", ...)
        used in campaign reporting.
    """

    locations: FrozenSet[Tuple[int, int]]
    kind: str = "custom"

    def __post_init__(self) -> None:
        for chain, position in self.locations:
            if chain < 0 or position < 0:
                raise ValueError(
                    f"error locations must be non-negative, got "
                    f"({chain}, {position})")

    @property
    def num_errors(self) -> int:
        """Number of bit flips in the pattern."""
        return len(self.locations)

    def chains_touched(self) -> FrozenSet[int]:
        """Scan chains that receive at least one flip."""
        return frozenset(chain for chain, _ in self.locations)

    def offset(self, chain_offset: int = 0,
               position_offset: int = 0) -> "ErrorPattern":
        """Return the pattern translated by the given offsets."""
        return ErrorPattern(
            locations=frozenset(
                (c + chain_offset, p + position_offset)
                for c, p in self.locations),
            kind=self.kind)


def single_error_pattern(num_chains: int, chain_length: int,
                         rng: Optional[random.Random] = None) -> ErrorPattern:
    """One random single-bit error (paper Fig. 7(a))."""
    if num_chains <= 0 or chain_length <= 0:
        raise ValueError("chain geometry must be positive")
    rng = rng if rng is not None else _unseeded_rng()
    chain = rng.randrange(num_chains)
    position = rng.randrange(chain_length)
    return ErrorPattern(locations=frozenset({(chain, position)}),
                        kind="single")


def multi_error_pattern(num_chains: int, chain_length: int, num_errors: int,
                        rng: Optional[random.Random] = None) -> ErrorPattern:
    """``num_errors`` distinct uniformly random error locations."""
    if num_errors <= 0:
        raise ValueError("number of errors must be positive")
    total = num_chains * chain_length
    if num_errors > total:
        raise ValueError(
            f"cannot place {num_errors} distinct errors in {total} bits")
    rng = rng if rng is not None else _unseeded_rng()
    chosen = rng.sample(range(total), num_errors)
    locations = frozenset(
        (index // chain_length, index % chain_length) for index in chosen)
    return ErrorPattern(locations=locations, kind="multiple")


def burst_error_pattern(num_chains: int, chain_length: int, burst_size: int,
                        rng: Optional[random.Random] = None) -> ErrorPattern:
    """A closely clustered burst of errors (paper Fig. 7(b)).

    The burst hits neighbouring scan chains at the same (or adjacent)
    bit positions, mirroring how a localised supply transient corrupts
    physically adjacent retention latches in the same wake-up event.
    Because the affected chains are adjacent, several errors land in the
    same monitoring-block codeword, which is exactly the case the
    paper's Hamming monitors cannot repair.
    """
    if burst_size <= 0:
        raise ValueError("burst size must be positive")
    if burst_size > num_chains * chain_length:
        raise ValueError("burst does not fit in the scan array")
    rng = rng if rng is not None else _unseeded_rng()
    # Spread across adjacent chains first, then across adjacent cycles.
    window_chains = min(num_chains, burst_size)
    window_positions = min(chain_length,
                           -(-burst_size // window_chains))  # ceil division
    chain0 = rng.randrange(max(1, num_chains - window_chains + 1))
    pos0 = rng.randrange(max(1, chain_length - window_positions + 1))
    cells = [(chain0 + c, pos0 + p)
             for c in range(window_chains)
             for p in range(window_positions)]
    chosen = rng.sample(cells, burst_size)
    return ErrorPattern(locations=frozenset(chosen), kind="burst")


def random_pattern(num_chains: int, chain_length: int,
                   error_probability: float,
                   rng: Optional[random.Random] = None) -> ErrorPattern:
    """Independent per-bit flips with the given probability."""
    if not (0 <= error_probability <= 1):
        raise ValueError("error probability must be in [0, 1]")
    rng = rng if rng is not None else _unseeded_rng()
    locations = frozenset(
        (chain, position)
        for chain in range(num_chains)
        for position in range(chain_length)
        if rng.random() < error_probability)
    return ErrorPattern(locations=locations, kind="random")


__all__ = [
    "ErrorPattern",
    "single_error_pattern",
    "multi_error_pattern",
    "burst_error_pattern",
    "random_pattern",
]
