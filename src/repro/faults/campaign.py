"""Campaign bookkeeping for fault-injection experiments.

The paper's FPGA test bench (Fig. 8) contains a "Counter" block that
"records each event when the errors are reported by FIFO_A and when the
mismatches are reported by comparator".  :class:`CampaignStats` is that
counter: it accumulates per-sequence outcomes and produces the
detection / correction / silent-corruption statistics quoted in
Section IV.

Since the streaming-campaign rework the implementation lives in
:mod:`repro.campaigns.stats`: the counters are O(1)-memory and
mergeable (the historical per-sequence ``records`` list is gone --
campaigns at paper scale cannot afford it), while every rate and
summary API keeps its original name and semantics.  This module
remains the import location for fault-injection consumers.
"""

from __future__ import annotations

from repro.campaigns.stats import InjectionRecord, StreamingCampaignStats


class CampaignStats(StreamingCampaignStats):
    """Aggregated statistics over a fault-injection campaign.

    A thin alias of
    :class:`~repro.campaigns.stats.StreamingCampaignStats` kept for the
    fault-injection API: ``add`` per-sequence records, read the
    ``*_sequences`` counters, the three rates and ``summary()`` exactly
    as before -- in constant memory, and mergeable across shards.
    """


__all__ = ["InjectionRecord", "CampaignStats"]
