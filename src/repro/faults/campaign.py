"""Campaign bookkeeping for fault-injection experiments.

The paper's FPGA test bench (Fig. 8) contains a "Counter" block that
"records each event when the errors are reported by FIFO_A and when the
mismatches are reported by comparator".  :class:`CampaignStats` is that
counter: it accumulates per-sequence records and produces the
detection / correction / silent-corruption statistics quoted in
Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class InjectionRecord:
    """Outcome of one sleep/wake test sequence with injection.

    Attributes
    ----------
    injected:
        Number of bit errors injected in this sequence.
    detected:
        Whether the monitoring logic reported *any* error.
    corrected:
        Whether the monitoring + correction logic repaired every
        injected error (i.e. the post-decode state equals the
        pre-sleep state).
    state_intact:
        Whether the architectural state after the sequence matches the
        reference (from the comparator, independent of what the monitor
        reported).
    residual_errors:
        Number of register bits still wrong after correction.
    """

    injected: int
    detected: bool
    corrected: bool
    state_intact: bool
    residual_errors: int = 0

    @property
    def silent_corruption(self) -> bool:
        """True when state was corrupted but nothing was reported."""
        return (not self.state_intact) and (not self.detected)


@dataclass
class CampaignStats:
    """Aggregated statistics over a fault-injection campaign."""

    records: List[InjectionRecord] = field(default_factory=list)

    def add(self, record: InjectionRecord) -> None:
        """Append one sequence's outcome."""
        self.records.append(record)

    # ------------------------------------------------------------------
    @property
    def num_sequences(self) -> int:
        """Number of test sequences run."""
        return len(self.records)

    @property
    def total_injected(self) -> int:
        """Total number of injected bit errors across the campaign."""
        return sum(r.injected for r in self.records)

    @property
    def sequences_with_errors(self) -> int:
        """Sequences in which at least one error was injected."""
        return sum(1 for r in self.records if r.injected > 0)

    @property
    def detected_sequences(self) -> int:
        """Sequences in which the monitor reported an error."""
        return sum(1 for r in self.records if r.detected)

    @property
    def corrected_sequences(self) -> int:
        """Sequences in which every injected error was corrected."""
        return sum(1 for r in self.records if r.corrected)

    @property
    def silent_corruptions(self) -> int:
        """Sequences with corrupted state and no report (the bad case)."""
        return sum(1 for r in self.records if r.silent_corruption)

    @property
    def intact_sequences(self) -> int:
        """Sequences whose final state matches the reference."""
        return sum(1 for r in self.records if r.state_intact)

    # ------------------------------------------------------------------
    def detection_rate(self) -> float:
        """Fraction of error-carrying sequences that were detected."""
        with_errors = self.sequences_with_errors
        if with_errors == 0:
            return 1.0
        detected = sum(
            1 for r in self.records if r.injected > 0 and r.detected)
        return detected / with_errors

    def correction_rate(self) -> float:
        """Fraction of error-carrying sequences fully corrected."""
        with_errors = self.sequences_with_errors
        if with_errors == 0:
            return 1.0
        corrected = sum(
            1 for r in self.records if r.injected > 0 and r.corrected)
        return corrected / with_errors

    def bit_correction_rate(self) -> float:
        """Fraction of injected *bits* that ended up corrected.

        This is the metric plotted in the paper's Fig. 10 ("errors
        corrected %").
        """
        injected = self.total_injected
        if injected == 0:
            return 1.0
        residual = sum(r.residual_errors for r in self.records)
        return (injected - residual) / injected

    def summary(self) -> str:
        """Human-readable multi-line summary of the campaign."""
        lines = [
            f"sequences run            : {self.num_sequences}",
            f"sequences with injection : {self.sequences_with_errors}",
            f"total bits injected      : {self.total_injected}",
            f"detection rate           : {self.detection_rate():.4%}",
            f"full-correction rate     : {self.correction_rate():.4%}",
            f"bit correction rate      : {self.bit_correction_rate():.4%}",
            f"silent corruptions       : {self.silent_corruptions}",
        ]
        return "\n".join(lines)


__all__ = ["InjectionRecord", "CampaignStats"]
