"""Scan-stream error injector (paper Fig. 6).

The paper validates the methodology by injecting errors *through the
scan chains themselves*: a column injector (a shift register advancing
with the scan clock) selects the bit position along the chains, a row
injector selects which chains are hit, and an AND/XOR network flips the
selected scan-out bits as they are fed back into the scan-in ports.
After one full circulation the flipped bits have been latched back into
the circuit, i.e. the architectural state now contains the errors.

:class:`ScanErrorInjector` reproduces that behaviour against
:class:`~repro.circuit.scan.ScanChain` objects.  It can be driven either
by an explicit :class:`~repro.faults.patterns.ErrorPattern` or by the
LFSR-based random location generator the paper's hardware uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.circuit.scan import ScanChain
from repro.faults.lfsr import LFSR
from repro.faults.patterns import ErrorPattern


@dataclass(frozen=True)
class InjectionPlan:
    """Resolved injection coordinates for one injection cycle.

    ``row_vector`` and ``column_vector`` are the contents of the paper's
    row and column injector registers: ``row_vector[c]`` is 1 when chain
    ``c`` is targeted, ``column_vector[p]`` is 1 when bit position ``p``
    is targeted.  The actual flipped coordinates are their conjunction,
    restricted to the requested pattern.
    """

    pattern: ErrorPattern
    row_vector: Tuple[int, ...]
    column_vector: Tuple[int, ...]
    flipped: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)

    @property
    def num_flipped(self) -> int:
        """Number of bits actually flipped by this injection."""
        return len(self.flipped)


class ScanErrorInjector:
    """Injects errors into a set of scan chains by flipping recirculated bits.

    Parameters
    ----------
    chains:
        The scan chains of the design under attack.  All chains must
        have the same length (the paper's monitoring configuration uses
        balanced chains).
    lfsr_seed:
        Seed of the internal LFSRs used when random locations are
        requested.
    """

    def __init__(self, chains: Sequence[ScanChain], lfsr_seed: int = 0xACE1):
        if not chains:
            raise ValueError("at least one scan chain is required")
        lengths = {len(chain) for chain in chains}
        if len(lengths) != 1:
            raise ValueError(
                f"all chains must have equal length for injection, got "
                f"lengths {sorted(lengths)}")
        self.chains = list(chains)
        self.chain_length = lengths.pop()
        self.num_chains = len(self.chains)
        seed = lfsr_seed if lfsr_seed != 0 else 1
        width = max(4, (self.num_chains * self.chain_length).bit_length() + 1)
        width = min(width, 32)
        if width not in (4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
                         18, 19, 20, 24, 32):
            width = 16
        self._row_lfsr = LFSR(width, seed=(seed % ((1 << width) - 1)) or 1)
        self._col_lfsr = LFSR(width, seed=((seed * 3) % ((1 << width) - 1)) or 1)
        self._history: List[InjectionPlan] = []

    # ------------------------------------------------------------------
    @property
    def history(self) -> List[InjectionPlan]:
        """All injections performed so far."""
        return list(self._history)

    def random_single_pattern(self) -> ErrorPattern:
        """Draw a single-error pattern from the hardware-style LFSRs."""
        chain = self._row_lfsr.randrange(self.num_chains)
        position = self._col_lfsr.randrange(self.chain_length)
        return ErrorPattern(locations=frozenset({(chain, position)}),
                            kind="single")

    def random_multi_pattern(self, num_errors: int) -> ErrorPattern:
        """Draw a multi-error pattern from the hardware-style LFSRs."""
        if num_errors <= 0:
            raise ValueError("number of errors must be positive")
        total = self.num_chains * self.chain_length
        if num_errors > total:
            raise ValueError(
                f"cannot place {num_errors} errors in {total} bits")
        chosen: Set[Tuple[int, int]] = set()
        while len(chosen) < num_errors:
            chain = self._row_lfsr.randrange(self.num_chains)
            position = self._col_lfsr.randrange(self.chain_length)
            chosen.add((chain, position))
        return ErrorPattern(locations=frozenset(chosen), kind="multiple")

    # ------------------------------------------------------------------
    def _vectors_for(self, pattern: ErrorPattern
                     ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        row = [0] * self.num_chains
        col = [0] * self.chain_length
        for chain, position in pattern.locations:
            if chain >= self.num_chains or position >= self.chain_length:
                raise ValueError(
                    f"error location ({chain}, {position}) outside the "
                    f"{self.num_chains}x{self.chain_length} scan array")
            row[chain] = 1
            col[position] = 1
        return tuple(row), tuple(col)

    def inject(self, pattern: ErrorPattern) -> InjectionPlan:
        """Inject a pattern by circulating the chains once and flipping bits.

        The chains are shifted through one full rotation with the
        scan-out looped back to the scan-in; bits at the pattern's
        coordinates are inverted on the loop-back path (the XOR of the
        paper's Fig. 6), so after ``chain_length`` cycles the circuit
        state carries exactly the requested flips and everything else is
        unchanged.
        """
        row_vector, column_vector = self._vectors_for(pattern)
        wanted: Dict[int, Set[int]] = {}
        for chain, position in pattern.locations:
            wanted.setdefault(chain, set()).add(position)

        flipped: List[Tuple[int, int]] = []
        length = self.chain_length
        for cycle in range(length):
            for chain_index, chain in enumerate(self.chains):
                out_bit = chain.flops[-1].q
                # The bit leaving scan-out on this cycle originated from
                # scan position (length - 1 - cycle) counting from the
                # scan-in side.
                source_position = length - 1 - cycle
                inject_here = (chain_index in wanted
                               and source_position in wanted[chain_index])
                if inject_here and out_bit is not None:
                    out_bit ^= 1
                    flipped.append((chain_index, source_position))
                chain.shift(out_bit)

        plan = InjectionPlan(pattern=pattern, row_vector=row_vector,
                             column_vector=column_vector,
                             flipped=tuple(sorted(flipped)))
        self._history.append(plan)
        return plan

    def inject_direct(self, pattern: ErrorPattern) -> InjectionPlan:
        """Flip the targeted flip-flops in place, without circulating.

        Functionally equivalent to :meth:`inject` (the architectural
        state ends up with the same flips) but without the
        ``chain_length`` scan cycles; used by large Monte-Carlo
        campaigns where the scan traffic itself is not under test.
        """
        row_vector, column_vector = self._vectors_for(pattern)
        flipped: List[Tuple[int, int]] = []
        for chain_index, position in sorted(pattern.locations):
            flop = self.chains[chain_index].flops[position]
            if flop.q is not None:
                flop.flip()
                flipped.append((chain_index, position))
        plan = InjectionPlan(pattern=pattern, row_vector=row_vector,
                             column_vector=column_vector,
                             flipped=tuple(flipped))
        self._history.append(plan)
        return plan

    def inject_retention(self, pattern: ErrorPattern) -> InjectionPlan:
        """Flip the targeted *retention latches* (sleep-mode corruption).

        This models the actual physical failure: the upset happens in
        the always-on retention latch while the domain sleeps, and only
        becomes architectural state after the restore.  Only meaningful
        for chains built from retention flip-flops.
        """
        row_vector, column_vector = self._vectors_for(pattern)
        flipped: List[Tuple[int, int]] = []
        for chain_index, position in sorted(pattern.locations):
            flop = self.chains[chain_index].flops[position]
            corrupt = getattr(flop, "corrupt_retention", None)
            if corrupt is None:
                raise TypeError(
                    f"flop {flop.name!r} has no retention latch to corrupt")
            corrupt()
            flipped.append((chain_index, position))
        plan = InjectionPlan(pattern=pattern, row_vector=row_vector,
                             column_vector=column_vector,
                             flipped=tuple(flipped))
        self._history.append(plan)
        return plan


__all__ = ["ScanErrorInjector", "InjectionPlan"]
