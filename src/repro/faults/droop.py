"""Droop-driven fault injection.

The paper injects errors with LFSRs, i.e. the error arrival process is
an experimental knob rather than a physical consequence.  This module
closes the loop: it evaluates the rush-current model for a wake-up event
and converts the resulting supply droop into retention-latch upsets via
:class:`~repro.power.retention.RetentionUpsetModel`.  It is used in the
examples and in the ablation benchmarks to compare the paper's uniform
random injection against a physically motivated fault source.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circuit.flipflop import RetentionFlipFlop
from repro.faults.patterns import ErrorPattern
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters, RushCurrentModel


class DroopFaultInjector:
    """Derives retention-latch upsets from the wake-up droop.

    Parameters
    ----------
    rlc:
        Electrical parameters of the wake-up transient.
    upset_model:
        Converts droop magnitude into per-latch flip probability.
    num_switch_stages:
        Staggered turn-on stages; more stages lower the droop and hence
        the upset rate (the mitigation of the paper's references
        [7]/[8]).
    """

    def __init__(self, rlc: Optional[RLCParameters] = None,
                 upset_model: Optional[RetentionUpsetModel] = None,
                 num_switch_stages: int = 1,
                 seed: Optional[int] = None):
        self.rlc = rlc if rlc is not None else RLCParameters()
        self.upset_model = (upset_model if upset_model is not None
                            else RetentionUpsetModel(seed=seed))
        self.num_switch_stages = num_switch_stages

    def peak_droop(self) -> float:
        """Peak supply droop (volts) for the configured wake-up."""
        model = RushCurrentModel(self.rlc,
                                 num_switch_stages=self.num_switch_stages)
        return model.peak_droop()

    def inject(self, flops: Sequence[RetentionFlipFlop],
               chain_length: Optional[int] = None) -> ErrorPattern:
        """Corrupt retention latches according to the droop and margins.

        Returns the upsets as an :class:`ErrorPattern`.  When
        ``chain_length`` is provided the flat flop indices are converted
        to ``(chain, position)`` coordinates, otherwise chain 0 is used
        with the flat index as the position.
        """
        droop = self.peak_droop()
        flipped = self.upset_model.sample_upsets(flops, droop)
        if chain_length:
            locations = frozenset(
                (index // chain_length, index % chain_length)
                for index in flipped)
        else:
            locations = frozenset((0, index) for index in flipped)
        return ErrorPattern(locations=locations, kind="droop")

    def expected_upsets(self, num_latches: int) -> float:
        """Expected number of upsets per wake-up for nominal latches."""
        return self.upset_model.expected_upsets(num_latches,
                                                self.peak_droop())


__all__ = ["DroopFaultInjector"]
