"""Batch fault injection over bit-plane state.

One :class:`~repro.faults.patterns.ErrorPattern` per sequence of a
batch is turned into per-``(chain, position)`` *sequence masks*: bit
``b`` of the mask says "flip this scan cell in sequence ``b``".
Applying a whole batch's worth of injections then costs one XOR per
targeted scan cell -- independent of the batch size -- which is the
injection-side counterpart of the bit-plane engine's batched passes
(:mod:`repro.engines.bitplane`).

Flips are gated by the chains' known masks, matching the reference
injector's no-op on unknown (``None``) flops, and the per-sequence
count of *effective* flips is returned so campaign statistics see the
same ``injected_errors`` the reference path reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.patterns import ErrorPattern

#: Per-(chain, position) sequence masks of a batch injection.
BatchFlips = Dict[Tuple[int, int], int]


def batch_pattern_flips(patterns: Sequence[Optional[ErrorPattern]],
                        num_chains: int, chain_length: int) -> BatchFlips:
    """Resolve one pattern per sequence into per-cell sequence masks.

    ``None`` entries are clean sequences.  Raises ``ValueError`` when a
    pattern addresses a cell outside the ``num_chains x chain_length``
    scan array (same eager check as the scalar injectors).
    """
    flips: BatchFlips = {}
    for b, pattern in enumerate(patterns):
        if pattern is None:
            continue
        bit = 1 << b
        for chain, position in pattern.locations:
            if chain >= num_chains or position >= chain_length:
                raise ValueError(
                    f"error location ({chain}, {position}) outside the "
                    f"{num_chains}x{chain_length} scan array")
            key = (chain, position)
            flips[key] = flips.get(key, 0) | bit
    return flips


def apply_batch_flips(planes: Sequence[List[int]], knowns: Sequence[int],
                      flips: BatchFlips, batch_size: int) -> List[int]:
    """XOR a batch's flips into the planes; returns per-sequence counts.

    Flips landing on unknown positions are dropped (the reference
    injector cannot flip an X), so ``counts[b]`` equals the Hamming
    distance the reference path would report for sequence ``b``'s
    injection.
    """
    counts = [0] * batch_size
    for (chain, position), mask in flips.items():
        if not (knowns[chain] >> position) & 1:
            continue
        planes[chain][position] ^= mask
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            counts[low.bit_length() - 1] += 1
    return counts


__all__ = ["BatchFlips", "batch_pattern_flips", "apply_batch_flips"]
