"""Batch fault injection over bit-plane state.

One :class:`~repro.faults.patterns.ErrorPattern` per sequence of a
batch is turned into per-``(chain, position)`` *sequence masks*: bit
``b`` of the mask says "flip this scan cell in sequence ``b``".
Applying a whole batch's worth of injections then costs one XOR per
targeted scan cell -- independent of the batch size -- which is the
injection-side counterpart of the bit-plane engine's batched passes
(:mod:`repro.engines.bitplane`).

Flips are gated by the chains' known masks, matching the reference
injector's no-op on unknown (``None``) flops, and the per-sequence
count of *effective* flips is returned so campaign statistics see the
same ``injected_errors`` the reference path reports.

Two application forms share the same resolution
(:func:`batch_pattern_flips`): :func:`apply_batch_flips` XORs into the
Python-int bit planes of the engine protocol (what
``sleep_wake_cycle_batch`` uses), and :func:`apply_batch_flips_words`
/ :func:`batch_flips_arrays` apply the same flips to the ``(C, L, W)``
uint64 word layout of :mod:`repro.engines.simd` -- for pipelines that
keep batch state in ndarray form end to end.  The two forms are
asserted equivalent by ``tests/faults/test_batch_arrays.py`` and
cross-checked at campaign scale by the dense-error benchmark; numpy is
imported lazily, so the plane path stays stdlib-only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.patterns import ErrorPattern

#: Per-(chain, position) sequence masks of a batch injection.
BatchFlips = Dict[Tuple[int, int], int]


def batch_pattern_flips(patterns: Sequence[Optional[ErrorPattern]],
                        num_chains: int, chain_length: int) -> BatchFlips:
    """Resolve one pattern per sequence into per-cell sequence masks.

    ``None`` entries are clean sequences.  Raises ``ValueError`` when a
    pattern addresses a cell outside the ``num_chains x chain_length``
    scan array (same eager check as the scalar injectors).
    """
    flips: BatchFlips = {}
    for b, pattern in enumerate(patterns):
        if pattern is None:
            continue
        bit = 1 << b
        for chain, position in pattern.locations:
            if chain >= num_chains or position >= chain_length:
                raise ValueError(
                    f"error location ({chain}, {position}) outside the "
                    f"{num_chains}x{chain_length} scan array")
            key = (chain, position)
            flips[key] = flips.get(key, 0) | bit
    return flips


def batch_flips_arrays(flips: BatchFlips, knowns: Sequence[int],
                       batch_size: int):
    """Resolve a :data:`BatchFlips` dict into ndarray coordinate form.

    Returns ``(chains, positions, masks, counts)`` where the first
    three are parallel arrays -- ``masks`` is ``(N, W)`` uint64 in the
    word-packed layout of :mod:`repro.engines.simd` -- and ``counts``
    is the per-sequence number of *effective* flips (flips landing on
    unknown positions are dropped, exactly like
    :func:`apply_batch_flips`).  Requires numpy (the ``[simd]``
    extra); the plain-plane path never imports it.
    """
    import numpy as np

    num_words = (batch_size + 63) // 64
    chains: List[int] = []
    positions: List[int] = []
    mask_bytes = bytearray()
    for (chain, position), mask in sorted(flips.items()):
        if not (knowns[chain] >> position) & 1:
            continue
        chains.append(chain)
        positions.append(position)
        mask_bytes += mask.to_bytes(num_words * 8, "little")
    masks = np.frombuffer(bytes(mask_bytes), dtype=np.uint64)
    masks = masks.reshape(len(chains), num_words)
    if len(chains):
        counts = np.unpackbits(
            np.ascontiguousarray(masks).view(np.uint8),
            axis=-1, bitorder="little")[:, :batch_size].sum(axis=0)
    else:
        counts = np.zeros(batch_size, dtype=np.intp)
    return (np.array(chains, dtype=np.int64),
            np.array(positions, dtype=np.int64), masks, counts)


def apply_batch_flips_words(words, knowns: Sequence[int],
                            flips: BatchFlips, batch_size: int):
    """XOR a batch's flips into a ``(C, L, W)`` word array in place.

    The ndarray counterpart of :func:`apply_batch_flips` for the SIMD
    engine's word-packed state: one vectorised XOR scatter covers the
    whole batch.  Returns the per-sequence effective-flip counts as an
    ndarray (same values as :func:`apply_batch_flips`).
    """
    chains, positions, masks, counts = batch_flips_arrays(
        flips, knowns, batch_size)
    if chains.size:
        words[chains, positions] ^= masks
    return counts


def apply_batch_flips(planes: Sequence[List[int]], knowns: Sequence[int],
                      flips: BatchFlips, batch_size: int) -> List[int]:
    """XOR a batch's flips into the planes; returns per-sequence counts.

    Flips landing on unknown positions are dropped (the reference
    injector cannot flip an X), so ``counts[b]`` equals the Hamming
    distance the reference path would report for sequence ``b``'s
    injection.
    """
    counts = [0] * batch_size
    for (chain, position), mask in flips.items():
        if not (knowns[chain] >> position) & 1:
            continue
        planes[chain][position] ^= mask
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            counts[low.bit_length() - 1] += 1
    return counts


__all__ = [
    "BatchFlips",
    "batch_pattern_flips",
    "apply_batch_flips",
    "batch_flips_arrays",
    "apply_batch_flips_words",
]
