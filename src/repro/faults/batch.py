"""Batch fault injection over bit-plane state.

One :class:`~repro.faults.patterns.ErrorPattern` per sequence of a
batch is turned into per-``(chain, position)`` *sequence masks*: bit
``b`` of the mask says "flip this scan cell in sequence ``b``".
Applying a whole batch's worth of injections then costs one XOR per
targeted scan cell -- independent of the batch size -- which is the
injection-side counterpart of the bit-plane engine's batched passes
(:mod:`repro.engines.bitplane`).

Flips are gated by the chains' known masks, matching the reference
injector's no-op on unknown (``None``) flops, and the per-sequence
count of *effective* flips is returned so campaign statistics see the
same ``injected_errors`` the reference path reports.

Two application forms share the same resolution
(:func:`batch_pattern_flips`): :func:`apply_batch_flips` XORs into the
Python-int bit planes of the engine protocol (what
``sleep_wake_cycle_batch`` uses), and :func:`apply_batch_flips_words`
/ :func:`batch_flips_arrays` apply the same flips to the ``(C, L, W)``
uint64 word layout of :mod:`repro.engines.simd` -- for pipelines that
keep batch state in ndarray form end to end.  The two forms are
asserted equivalent by ``tests/faults/test_batch_arrays.py`` and
cross-checked at campaign scale by the dense-error benchmark; numpy is
imported lazily, so the plane path stays stdlib-only.

The module also hosts the **vectorised pattern sampler** of the
campaign summary path (:func:`sample_pattern_batch` /
:class:`PatternBatch`): one ``numpy.random.Generator`` call draws a
whole group's single/burst/multi patterns as coordinate arrays, the
batch counterpart of the scalar factories in
:mod:`repro.faults.patterns`.  The sampled batch converts losslessly
both ways -- :meth:`PatternBatch.flips` for the array-native engines,
:meth:`PatternBatch.patterns` for the per-sequence object path -- which
is what lets campaign tasks fall back to the object path on
non-summary engines with bit-identical statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.patterns import ErrorPattern

#: Per-(chain, position) sequence masks of a batch injection.
BatchFlips = Dict[Tuple[int, int], int]


def batch_pattern_flips(patterns: Sequence[Optional[ErrorPattern]],
                        num_chains: int, chain_length: int) -> BatchFlips:
    """Resolve one pattern per sequence into per-cell sequence masks.

    ``None`` entries are clean sequences.  Raises ``ValueError`` when a
    pattern addresses a cell outside the ``num_chains x chain_length``
    scan array (same eager check as the scalar injectors).
    """
    flips: BatchFlips = {}
    for b, pattern in enumerate(patterns):
        if pattern is None:
            continue
        bit = 1 << b
        for chain, position in pattern.locations:
            if chain >= num_chains or position >= chain_length:
                raise ValueError(
                    f"error location ({chain}, {position}) outside the "
                    f"{num_chains}x{chain_length} scan array")
            key = (chain, position)
            flips[key] = flips.get(key, 0) | bit
    return flips


def batch_flips_arrays(flips: BatchFlips, knowns: Sequence[int],
                       batch_size: int):
    """Resolve a :data:`BatchFlips` dict into ndarray coordinate form.

    Returns ``(chains, positions, masks, counts)`` where the first
    three are parallel arrays -- ``masks`` is ``(N, W)`` uint64 in the
    word-packed layout of :mod:`repro.engines.simd` -- and ``counts``
    is the per-sequence number of *effective* flips (flips landing on
    unknown positions are dropped, exactly like
    :func:`apply_batch_flips`).  Requires numpy (the ``[simd]``
    extra); the plain-plane path never imports it.
    """
    import numpy as np

    num_words = (batch_size + 63) // 64
    chains: List[int] = []
    positions: List[int] = []
    mask_bytes = bytearray()
    for (chain, position), mask in sorted(flips.items()):
        if not (knowns[chain] >> position) & 1:
            continue
        chains.append(chain)
        positions.append(position)
        mask_bytes += mask.to_bytes(num_words * 8, "little")
    masks = np.frombuffer(bytes(mask_bytes), dtype=np.uint64)
    masks = masks.reshape(len(chains), num_words)
    if len(chains):
        counts = np.unpackbits(
            np.ascontiguousarray(masks, dtype=np.uint64).view(np.uint8),
            axis=-1, bitorder="little")[:, :batch_size].sum(axis=0)
    else:
        counts = np.zeros(batch_size, dtype=np.intp)
    return (np.array(chains, dtype=np.int64),
            np.array(positions, dtype=np.int64), masks, counts)


def apply_batch_flips_words(words, knowns: Sequence[int],
                            flips: BatchFlips, batch_size: int):
    """XOR a batch's flips into a ``(C, L, W)`` word array in place.

    The ndarray counterpart of :func:`apply_batch_flips` for the SIMD
    engine's word-packed state: one vectorised XOR scatter covers the
    whole batch.  Returns the per-sequence effective-flip counts as an
    ndarray (same values as :func:`apply_batch_flips`).
    """
    chains, positions, masks, counts = batch_flips_arrays(
        flips, knowns, batch_size)
    if chains.size:
        words[chains, positions] ^= masks
    return counts


def apply_batch_flips(planes: Sequence[List[int]], knowns: Sequence[int],
                      flips: BatchFlips, batch_size: int) -> List[int]:
    """XOR a batch's flips into the planes; returns per-sequence counts.

    Flips landing on unknown positions are dropped (the reference
    injector cannot flip an X), so ``counts[b]`` equals the Hamming
    distance the reference path would report for sequence ``b``'s
    injection.
    """
    counts = [0] * batch_size
    for (chain, position), mask in flips.items():
        if not (knowns[chain] >> position) & 1:
            continue
        planes[chain][position] ^= mask
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            counts[low.bit_length() - 1] += 1
    return counts


# ----------------------------------------------------------------------
# Vectorised pattern sampling (the campaign summary path's front end)
# ----------------------------------------------------------------------
class PatternBatch:
    """A whole group's sampled error patterns in coordinate-array form.

    ``seqs[f]``, ``chains[f]`` and ``positions[f]`` describe flip ``f``:
    sequence ``seqs[f]`` of the batch flips scan cell ``(chains[f],
    positions[f])``.  Within one sequence the cells are distinct (the
    :class:`~repro.faults.patterns.ErrorPattern` set semantics), so the
    coordinate arrays carry exactly the information of one pattern per
    sequence without materialising any per-sequence object.

    Two lossless views exist: :meth:`flips` for the batch injectors and
    the engines' array-native summary passes, and :meth:`patterns` for
    the per-sequence object path -- a campaign group routed through
    either view produces bit-identical statistics (property-tested in
    ``tests/campaigns/test_summary_path.py``).
    """

    __slots__ = ("num_chains", "chain_length", "batch_size", "kind",
                 "seqs", "chains", "positions")

    def __init__(self, num_chains: int, chain_length: int, batch_size: int,
                 kind: str, seqs, chains, positions):
        if not (len(seqs) == len(chains) == len(positions)):
            raise ValueError("coordinate arrays must have equal lengths")
        self.num_chains = num_chains
        self.chain_length = chain_length
        self.batch_size = batch_size
        self.kind = kind
        self.seqs = seqs
        self.chains = chains
        self.positions = positions

    @property
    def num_flips(self) -> int:
        """Total flips across the whole batch."""
        return len(self.seqs)

    def flips(self) -> BatchFlips:
        """The batch as per-cell sequence masks (:data:`BatchFlips`)."""
        flips: BatchFlips = {}
        for b, chain, position in zip(self.seqs.tolist(),
                                      self.chains.tolist(),
                                      self.positions.tolist()):
            key = (chain, position)
            flips[key] = flips.get(key, 0) | (1 << b)
        return flips

    def patterns(self) -> List[Optional[ErrorPattern]]:
        """The batch as one :class:`ErrorPattern` (or ``None``) per
        sequence -- the object-path fallback's input."""
        locations: List[Optional[list]] = [None] * self.batch_size
        for b, chain, position in zip(self.seqs.tolist(),
                                      self.chains.tolist(),
                                      self.positions.tolist()):
            if locations[b] is None:
                locations[b] = []
            locations[b].append((chain, position))
        return [None if cells is None
                else ErrorPattern(locations=frozenset(cells), kind=self.kind)
                for cells in locations]


def _distinct_cells(rng, batch_size: int, population: int, draws: int):
    """``draws`` distinct uniform indices out of ``population`` for each
    of ``batch_size`` sequences, as a ``(batch_size, draws)`` array.

    Random-key selection: each sequence ranks one row of i.i.d. keys
    and keeps the ``draws`` smallest, which is a uniform without-
    replacement sample.  Memory is ``batch_size x population`` floats
    -- fine for scan arrays of a few thousand cells; campaigns over
    vastly larger state should shrink the group size accordingly.
    """
    import numpy as np

    if draws > population:
        raise ValueError(
            f"cannot place {draws} distinct errors in {population} cells")
    if draws == population:
        return np.broadcast_to(np.arange(population, dtype=np.int64),
                               (batch_size, population))
    keys = rng.random((batch_size, population))
    return np.argpartition(keys, draws - 1, axis=1)[:, :draws] \
        .astype(np.int64)


def pattern_batch_arrays(batch: "PatternBatch", knowns: Sequence[int],
                         batch_size: int):
    """Resolve a :class:`PatternBatch` straight into ndarray scatter
    form, skipping the :data:`BatchFlips` dict round-trip.

    Returns ``(chains, positions, masks, counts)`` with exactly the
    contract of :func:`batch_flips_arrays` (one row per distinct
    targeted cell, cells in ascending order, flips on unknown cells
    dropped from both masks and counts) -- asserted equivalent by
    ``tests/faults/test_pattern_batch.py``.  Unlike the dict path,
    every step is a vector operation, so resolving a batch's injection
    costs no per-flip Python work.
    """
    import numpy as np

    from repro.engines.summary import bits_matrix

    length = batch.chain_length
    chains, positions, seqs = batch.chains, batch.positions, batch.seqs
    if len(chains):
        keep = bits_matrix(knowns, length)[chains, positions]
        chains, positions, seqs = chains[keep], positions[keep], seqs[keep]
    num_words = (batch_size + 63) // 64
    if not len(chains):
        empty = np.empty(0, dtype=np.int64)
        return (empty, empty.copy(),
                np.empty((0, num_words), dtype=np.uint64),
                np.zeros(batch_size, dtype=np.int64))
    cells = chains * length + positions
    # Enforce the set semantics of ErrorPattern: a caller-built batch
    # repeating a (sequence, cell) pair must count (and flip) the cell
    # once, exactly like the flips()/patterns() views collapse it.
    unique_flips = np.unique(seqs * (batch.num_chains * length) + cells,
                             return_index=True)[1]
    if unique_flips.size != cells.size:
        cells, seqs = cells[unique_flips], seqs[unique_flips]
    unique_cells, inverse = np.unique(cells, return_inverse=True)
    masks = np.zeros((len(unique_cells), num_words), dtype=np.uint64)
    np.bitwise_or.at(masks, (inverse, seqs >> 6),
                     np.left_shift(np.uint64(1),
                                   (seqs & 63).astype(np.uint64)))
    counts = np.bincount(seqs, minlength=batch_size).astype(np.int64)
    return (unique_cells // length, unique_cells % length, masks, counts)


def pattern_batch_coords(batch: "PatternBatch", known_bits,
                         batch_size: int):
    """Resolve a :class:`PatternBatch` into flat flip *coordinates* --
    the sparse-delta summary path's input form.

    Returns ``(seqs, cells, counts)``: parallel int64 arrays with flip
    ``f`` hitting flat scan cell ``cells[f]`` (``chain * chain_length +
    position``) in sequence ``seqs[f]``, sorted by ``(sequence,
    cell)``, plus the per-sequence effective-flip counts.  The same
    gating/dedup contract as :func:`pattern_batch_arrays` (flips on
    unknown cells dropped, repeated (sequence, cell) pairs collapsed to
    the :class:`~repro.faults.patterns.ErrorPattern` set semantics), so
    the two resolutions describe the identical injection --
    ``known_bits`` is the expanded ``(C, L)`` bool known matrix the
    summary pass already holds.
    """
    import numpy as np

    length = batch.chain_length
    chains, positions, seqs = batch.chains, batch.positions, batch.seqs
    if len(chains):
        keep = known_bits[chains, positions]
        chains, positions, seqs = chains[keep], positions[keep], seqs[keep]
    if not len(chains):
        empty = np.empty(0, dtype=np.int64)
        return (empty, empty.copy(),
                np.zeros(batch_size, dtype=np.int64))
    num_cells = batch.num_chains * length
    unique_flips = np.unique(seqs * num_cells
                             + (chains * length + positions))
    seqs = unique_flips // num_cells
    cells = unique_flips - seqs * num_cells
    counts = np.bincount(seqs, minlength=batch_size).astype(np.int64)
    return seqs, cells, counts


def _coords_to_csr(cells, counts, batch_size: int, starts_out=None):
    """Row pointers of (sequence, cell)-sorted flip coordinates.

    ``counts`` is the per-sequence flip count; because the coordinate
    resolvers emit cells sorted by (sequence, cell), the exclusive
    prefix sum of ``counts`` is exactly the CSR row-pointer array:
    sequence ``b``'s flips are ``cells[starts[b]:starts[b + 1]]``.
    ``starts_out`` (shape ``(batch_size + 1,)``, int64) is fully
    overwritten when given -- the engines' workspace-buffer hook.
    """
    import numpy as np

    if starts_out is None:
        starts_out = np.empty(batch_size + 1, dtype=np.int64)
    starts_out[0] = 0
    np.cumsum(counts, out=starts_out[1:])
    return starts_out


def pattern_batch_csr(batch: "PatternBatch", known_bits, batch_size: int,
                      starts_out=None):
    """Resolve a :class:`PatternBatch` into CSR flip slices -- the
    fused summary kernels' input form (:mod:`repro.engines.jit`).

    Returns ``(starts, cells, counts)``: ``starts`` is the
    ``(batch_size + 1,)`` int64 row-pointer array with sequence ``b``'s
    flips at ``cells[starts[b]:starts[b + 1]]`` (cells ascending within
    a sequence), and ``cells``/``counts`` carry exactly the
    gating/dedup contract of :func:`pattern_batch_coords` (flips on
    unknown cells dropped, repeated (sequence, cell) pairs collapsed).
    A per-sequence kernel thus walks its slice with no sorting, no
    searching and no per-flip Python work.
    """
    seqs, cells, counts = pattern_batch_coords(batch, known_bits,
                                               batch_size)
    del seqs  # implied by the row pointers
    return (_coords_to_csr(cells, counts, batch_size, starts_out),
            cells, counts)


def batch_flips_csr(flips: BatchFlips, knowns: Sequence[int],
                    batch_size: int, chain_length: int, starts_out=None):
    """Resolve a :data:`BatchFlips` dict into the CSR slice form of
    :func:`pattern_batch_csr` (``(starts, cells, counts)``)."""
    seqs, cells, counts = batch_flips_coords(flips, knowns, batch_size,
                                             chain_length)
    del seqs
    return (_coords_to_csr(cells, counts, batch_size, starts_out),
            cells, counts)


def batch_flips_coords(flips: BatchFlips, knowns: Sequence[int],
                       batch_size: int, chain_length: int):
    """Resolve a :data:`BatchFlips` dict into the flat flip-coordinate
    form of :func:`pattern_batch_coords` (``(seqs, cells, counts)``,
    flips on unknown positions dropped).

    A dict already holds one mask per distinct cell, so no dedup is
    needed; the masks simply unpack into (sequence, cell) pairs.
    """
    import numpy as np

    chains, positions, masks, counts = batch_flips_arrays(
        flips, knowns, batch_size)
    if not chains.size:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), counts.astype(np.int64)
    bits = np.unpackbits(
        np.ascontiguousarray(masks, dtype=np.uint64).view(np.uint8),
        axis=-1, bitorder="little")[:, :batch_size]
    rows, seqs = np.nonzero(bits)
    cells = chains[rows] * chain_length + positions[rows]
    order = np.argsort(seqs * (len(knowns) * chain_length) + cells,
                       kind="stable")
    return seqs[order].astype(np.int64), cells[order], \
        counts.astype(np.int64)


def sample_pattern_batch(kind: str, num_chains: int, chain_length: int,
                         batch_size: int, rng,
                         num_errors: int = 4) -> PatternBatch:
    """Draw one error pattern per sequence of a batch, vectorised.

    The array counterpart of the scalar factories in
    :mod:`repro.faults.patterns`: ``kind`` selects the same geometry
    ("single" -- one uniform flip; "multiple" -- ``num_errors``
    distinct uniform flips; "burst" -- ``num_errors`` distinct flips
    clustered in an adjacent-chain window placed uniformly; "none" --
    clean sequences), and ``rng`` is a ``numpy.random.Generator``.  The
    draws are a pure function of the generator state, so campaign
    chunks seeded through :mod:`repro.campaigns.seeding` stay
    bit-identical for any worker count -- but the streams are *not*
    flip-for-flip identical to the scalar ``random.Random`` factories
    (the two modes are statistically equivalent samplings).
    """
    import numpy as np

    if num_chains <= 0 or chain_length <= 0:
        raise ValueError("chain geometry must be positive")
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    empty = np.empty(0, dtype=np.int64)
    if kind == "none":
        return PatternBatch(num_chains, chain_length, batch_size, "none",
                            empty, empty, empty)
    total = num_chains * chain_length
    if kind == "single":
        cells = rng.integers(0, total, size=batch_size, dtype=np.int64)
        return PatternBatch(
            num_chains, chain_length, batch_size, "single",
            np.arange(batch_size, dtype=np.int64),
            cells // chain_length, cells % chain_length)
    if num_errors <= 0:
        raise ValueError("number of errors must be positive")
    seqs = np.repeat(np.arange(batch_size, dtype=np.int64), num_errors)
    if kind == "multiple":
        cells = _distinct_cells(rng, batch_size, total, num_errors)
        return PatternBatch(
            num_chains, chain_length, batch_size, "multiple", seqs,
            (cells // chain_length).reshape(-1),
            (cells % chain_length).reshape(-1))
    if kind == "burst":
        # Same window geometry as patterns.burst_error_pattern: spread
        # across adjacent chains first, then across adjacent cycles.
        if num_errors > total:
            raise ValueError("burst does not fit in the scan array")
        window_chains = min(num_chains, num_errors)
        window_positions = min(chain_length,
                               -(-num_errors // window_chains))
        chain0 = rng.integers(0, max(1, num_chains - window_chains + 1),
                              size=batch_size, dtype=np.int64)
        pos0 = rng.integers(0, max(1, chain_length - window_positions + 1),
                            size=batch_size, dtype=np.int64)
        window = window_chains * window_positions
        cells = _distinct_cells(rng, batch_size, window, num_errors)
        chains = chain0[:, None] + cells // window_positions
        positions = pos0[:, None] + cells % window_positions
        return PatternBatch(
            num_chains, chain_length, batch_size, "burst", seqs,
            chains.reshape(-1), positions.reshape(-1))
    raise ValueError(
        f"unknown pattern kind {kind!r}; choose from "
        f"('single', 'burst', 'multiple', 'none')")


__all__ = [
    "BatchFlips",
    "batch_pattern_flips",
    "apply_batch_flips",
    "batch_flips_arrays",
    "apply_batch_flips_words",
    "PatternBatch",
    "batch_flips_coords",
    "batch_flips_csr",
    "pattern_batch_arrays",
    "pattern_batch_coords",
    "pattern_batch_csr",
    "sample_pattern_batch",
]
