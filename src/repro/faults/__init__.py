"""Fault injection substrate.

Implements the paper's validation machinery (Section IV):

* :mod:`repro.faults.lfsr` -- linear feedback shift registers used to
  pick random injection locations;
* :mod:`repro.faults.injector` -- the row/column error-injection
  circuit of Fig. 6 which flips scan-out bits as the chains circulate;
* :mod:`repro.faults.patterns` -- single-error and clustered multi-error
  (burst) patterns of Fig. 7;
* :mod:`repro.faults.droop` -- a physically motivated injector that
  derives upsets from the rush-current droop model instead of an LFSR;
* :mod:`repro.faults.batch` -- batch fault injection over bit-plane
  state: one XOR per targeted scan cell injects a whole batch of
  per-sequence patterns (the injection side of
  :mod:`repro.engines.bitplane`);
* :mod:`repro.faults.campaign` -- bookkeeping of injected / detected /
  corrected counts across a campaign.
"""

from repro.faults.lfsr import LFSR, GaloisLFSR, DEFAULT_TAPS
from repro.faults.injector import ScanErrorInjector, InjectionPlan
from repro.faults.patterns import (
    ErrorPattern,
    single_error_pattern,
    multi_error_pattern,
    burst_error_pattern,
    random_pattern,
)
from repro.faults.batch import apply_batch_flips, batch_pattern_flips
from repro.faults.droop import DroopFaultInjector
from repro.faults.campaign import CampaignStats, InjectionRecord

__all__ = [
    "LFSR",
    "GaloisLFSR",
    "DEFAULT_TAPS",
    "ScanErrorInjector",
    "InjectionPlan",
    "ErrorPattern",
    "single_error_pattern",
    "multi_error_pattern",
    "burst_error_pattern",
    "random_pattern",
    "apply_batch_flips",
    "batch_pattern_flips",
    "DroopFaultInjector",
    "CampaignStats",
    "InjectionRecord",
]
