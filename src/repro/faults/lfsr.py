"""Linear feedback shift registers.

The paper's error-injection circuit (Fig. 6) sets its row and column
injection vectors "using linear feedback shift registers" so that the
injected error locations are pseudo-random but cheap to generate in
hardware.  Both the Fibonacci (external XOR) and Galois (internal XOR)
forms are provided; maximal-length tap sets are included for common
register widths.

Tap and polynomial conventions
------------------------------

A tap set ``(w, t2, t3, ...)`` names the exponents of the feedback
polynomial ``p(x) = x**w + x**t2 + x**t3 + ... + 1`` (the standard
table convention, e.g. ``(16, 15, 13, 4)`` for CRC-style
``x^16+x^15+x^13+x^4+1``).  Concretely, in this implementation:

* the **Fibonacci** form shifts left with the output at the MSB; tap
  ``t`` reads register bit ``t - 1`` (so the highest tap, ``t = w``,
  is the output bit itself).  The generated output sequence obeys the
  recurrence ``a[n] = a[n-t2] ^ ... ^ a[n-w]``, i.e. the *reciprocal*
  polynomial of ``p`` is its characteristic polynomial -- the usual
  situation for table-driven Fibonacci LFSRs, and maximal-length
  whenever ``p`` is (a polynomial is primitive iff its reciprocal is);
* the **Galois** form shifts right with the output at the LSB and XORs
  ``poly`` into the register when a 1 falls out; mask bit ``i``
  corresponds to the monomial ``x**(i+1)``, so the mask for a tap set
  is ``p`` with the constant term dropped and divided by ``x`` --
  exactly ``1 << (t - 1)`` per tap.

With these orientations the two forms are *sequence-equivalent*: for
any tap set the Galois output stream is a phase-shifted copy of the
Fibonacci output stream, and both achieve the full period
``2**w - 1`` for every width in :data:`DEFAULT_TAPS`.  Both properties
are enforced by the test suite -- by brute force for small widths and
through :func:`is_maximal_length` (a GF(2) polynomial-order check) for
widths 24 and 32, whose periods are too long to enumerate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Maximal-length feedback tap positions for common LFSR widths: the
#: exponents of a primitive feedback polynomial (see the module
#: docstring for the exact register orientation).  Taken from the
#: standard primitive-polynomial tables used in BIST literature.
DEFAULT_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    24: (24, 23, 22, 17),
    32: (32, 31, 30, 10),
}


def taps_to_feedback_poly(width: int, taps: Iterable[int]) -> int:
    """Feedback polynomial ``p(x)`` of a tap set, as a bit mask.

    Bit ``i`` of the result is the coefficient of ``x**i``; the
    constant term is always set.  For ``DEFAULT_TAPS[4] == (4, 3)``
    this returns ``0b11001`` (``x^4 + x^3 + 1``).
    """
    poly = 1
    for tap in taps:
        t = int(tap)
        if not (1 <= t <= width):
            raise ValueError(
                f"tap positions must be in 1..{width}, got {t}")
        poly |= 1 << t
    if not (poly >> width) & 1:
        raise ValueError(f"the highest tap must equal the width ({width})")
    return poly


def galois_mask(width: int, taps: Iterable[int]) -> int:
    """Galois XOR mask for a tap set (``taps_to_feedback_poly(...) >> 1``).

    Mask bit ``i`` corresponds to the monomial ``x**(i+1)`` of the
    feedback polynomial, matching :class:`GaloisLFSR`'s ``poly``
    parameter; the MSB (bit ``width - 1``, the ``x**width`` term) is
    always set.
    """
    return taps_to_feedback_poly(width, taps) >> 1


def _poly_mul_mod(a: int, b: int, modulus: int, width: int) -> int:
    """GF(2) polynomial product ``a * b mod modulus`` (degree ``width``)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if (a >> width) & 1:
            a ^= modulus
    return result


def _poly_pow_mod(base: int, exponent: int, modulus: int, width: int) -> int:
    """GF(2) polynomial power ``base ** exponent mod modulus``."""
    result = 1
    while exponent:
        if exponent & 1:
            result = _poly_mul_mod(result, base, modulus, width)
        base = _poly_mul_mod(base, base, modulus, width)
        exponent >>= 1
    return result


def _prime_factors(n: int) -> List[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_maximal_length(width: int,
                      taps: Optional[Iterable[int]] = None) -> bool:
    """Whether a tap set generates the full period ``2**width - 1``.

    Checks that the feedback polynomial is *primitive* over GF(2): the
    multiplicative order of ``x`` modulo ``p(x)`` must be exactly
    ``2**width - 1``.  This decides maximality for widths whose periods
    are far too long to enumerate (the brute-force check for width 32
    would need ~4 * 10^9 steps; this needs a few hundred modular
    multiplications).  Because a polynomial is primitive iff its
    reciprocal is, the verdict applies to both the Fibonacci and the
    Galois register orientation.
    """
    if width <= 1:
        raise ValueError("LFSR width must be at least 2")
    if taps is None:
        if width not in DEFAULT_TAPS:
            raise ValueError(f"no default taps for width {width}")
        taps = DEFAULT_TAPS[width]
    poly = taps_to_feedback_poly(width, taps)
    order = (1 << width) - 1
    x = 0b10
    if _poly_pow_mod(x, order, poly, width) != 1:
        return False
    for factor in _prime_factors(order):
        if _poly_pow_mod(x, order // factor, poly, width) == 1:
            return False
    return True


class LFSR:
    """A Fibonacci (external-XOR) linear feedback shift register.

    Parameters
    ----------
    width:
        Register width in bits.
    taps:
        Feedback polynomial exponents (see the module docstring); tap
        ``t`` reads register bit ``t - 1`` and the highest tap must
        equal ``width``.  Defaults to a maximal-length set from
        :data:`DEFAULT_TAPS` when available.
    seed:
        Initial register contents; must be non-zero (the all-zero state
        is a fixed point of an LFSR).
    """

    def __init__(self, width: int, taps: Optional[Sequence[int]] = None,
                 seed: int = 1):
        if width <= 1:
            raise ValueError("LFSR width must be at least 2")
        if taps is None:
            if width not in DEFAULT_TAPS:
                raise ValueError(
                    f"no default taps for width {width}; supply taps "
                    f"explicitly (known widths: {sorted(DEFAULT_TAPS)})")
            taps = DEFAULT_TAPS[width]
        taps_t = tuple(sorted(set(int(t) for t in taps), reverse=True))
        if not taps_t or taps_t[0] != width:
            raise ValueError(
                f"the highest tap must equal the width ({width}), got {taps_t}")
        if any(t < 1 for t in taps_t):
            raise ValueError("tap positions are 1-based and must be >= 1")
        if seed == 0:
            raise ValueError("the all-zero seed locks up an LFSR")
        if not (0 < seed < (1 << width)):
            raise ValueError(f"seed must fit in {width} bits and be non-zero")
        self.width = width
        self.taps = taps_t
        self._state = seed

    @property
    def state(self) -> int:
        """Current register contents as an integer."""
        return self._state

    @property
    def state_bits(self) -> List[int]:
        """Current register contents as a list of bits, MSB first."""
        return [(self._state >> (self.width - 1 - i)) & 1
                for i in range(self.width)]

    def step(self) -> int:
        """Advance by one clock; returns the output (MSB) bit shifted out."""
        out = (self._state >> (self.width - 1)) & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & ((1 << self.width) - 1)
        return out

    def next_value(self, bits: Optional[int] = None) -> int:
        """Advance and return the register value (or ``bits`` output bits)."""
        if bits is None:
            self.step()
            return self._state
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.step()
        return value

    def randrange(self, upper: int) -> int:
        """Pseudo-random integer in ``[0, upper)`` drawn from the LFSR.

        Uses rejection sampling over ``ceil(log2(upper))`` output bits so
        the distribution over the LFSR's sequence is unbiased.
        """
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        if upper == 1:
            return 0
        nbits = (upper - 1).bit_length()
        while True:
            candidate = self.next_value(bits=nbits)
            if candidate < upper:
                return candidate

    def period_upper_bound(self) -> int:
        """Maximum possible sequence period (``2**width - 1``)."""
        return (1 << self.width) - 1


class GaloisLFSR:
    """A Galois (internal-XOR) LFSR defined by a polynomial mask.

    Parameters
    ----------
    width:
        Register width in bits.
    poly:
        Feedback polynomial as a bit mask (bit ``i`` set means the
        monomial ``x**(i+1)`` participates, so bit ``width - 1`` -- the
        ``x**width`` term -- must be set).  Defaults to
        :func:`galois_mask` over :data:`DEFAULT_TAPS` for the width,
        which makes the output stream a phase-shifted copy of the
        matching Fibonacci :class:`LFSR`'s.
    seed:
        Non-zero initial value.
    """

    def __init__(self, width: int, poly: Optional[int] = None, seed: int = 1):
        if width <= 1:
            raise ValueError("LFSR width must be at least 2")
        if poly is None:
            if width not in DEFAULT_TAPS:
                raise ValueError(
                    f"no default polynomial for width {width}")
            poly = galois_mask(width, DEFAULT_TAPS[width])
        if not (0 < poly < (1 << width)):
            raise ValueError(
                f"polynomial mask 0x{poly:x} does not fit in {width} bits")
        if not (poly >> (width - 1)) & 1:
            raise ValueError(
                f"polynomial mask 0x{poly:x} lacks the x**{width} term "
                f"(bit {width - 1} must be set)")
        if seed == 0:
            raise ValueError("the all-zero seed locks up an LFSR")
        if not (0 < seed < (1 << width)):
            raise ValueError(f"seed must fit in {width} bits and be non-zero")
        self.width = width
        self.poly = poly
        self._state = seed

    @property
    def state(self) -> int:
        """Current register contents as an integer."""
        return self._state

    def step(self) -> int:
        """Advance by one clock; returns the bit shifted out (LSB)."""
        out = self._state & 1
        self._state >>= 1
        if out:
            self._state ^= self.poly
        return out

    def next_value(self, bits: Optional[int] = None) -> int:
        """Advance and return the register value (or ``bits`` output bits)."""
        if bits is None:
            self.step()
            return self._state
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.step()
        return value


__all__ = [
    "LFSR",
    "GaloisLFSR",
    "DEFAULT_TAPS",
    "taps_to_feedback_poly",
    "galois_mask",
    "is_maximal_length",
]
