"""Linear feedback shift registers.

The paper's error-injection circuit (Fig. 6) sets its row and column
injection vectors "using linear feedback shift registers" so that the
injected error locations are pseudo-random but cheap to generate in
hardware.  Both the Fibonacci (external XOR) and Galois (internal XOR)
forms are provided; maximal-length tap sets are included for common
register widths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Maximal-length feedback tap positions (1-based, from the MSB side) for
#: common LFSR widths.  Taken from the standard primitive-polynomial
#: tables used in BIST literature.
DEFAULT_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    24: (24, 23, 22, 17),
    32: (32, 31, 30, 10),
}


class LFSR:
    """A Fibonacci (external-XOR) linear feedback shift register.

    Parameters
    ----------
    width:
        Register width in bits.
    taps:
        Feedback tap positions, 1-based counting from the output (MSB)
        side.  Defaults to a maximal-length set from
        :data:`DEFAULT_TAPS` when available.
    seed:
        Initial register contents; must be non-zero (the all-zero state
        is a fixed point of an LFSR).
    """

    def __init__(self, width: int, taps: Optional[Sequence[int]] = None,
                 seed: int = 1):
        if width <= 1:
            raise ValueError("LFSR width must be at least 2")
        if taps is None:
            if width not in DEFAULT_TAPS:
                raise ValueError(
                    f"no default taps for width {width}; supply taps "
                    f"explicitly (known widths: {sorted(DEFAULT_TAPS)})")
            taps = DEFAULT_TAPS[width]
        taps_t = tuple(sorted(set(int(t) for t in taps), reverse=True))
        if not taps_t or taps_t[0] != width:
            raise ValueError(
                f"the highest tap must equal the width ({width}), got {taps_t}")
        if any(t < 1 for t in taps_t):
            raise ValueError("tap positions are 1-based and must be >= 1")
        if seed == 0:
            raise ValueError("the all-zero seed locks up an LFSR")
        if not (0 < seed < (1 << width)):
            raise ValueError(f"seed must fit in {width} bits and be non-zero")
        self.width = width
        self.taps = taps_t
        self._state = seed

    @property
    def state(self) -> int:
        """Current register contents as an integer."""
        return self._state

    @property
    def state_bits(self) -> List[int]:
        """Current register contents as a list of bits, MSB first."""
        return [(self._state >> (self.width - 1 - i)) & 1
                for i in range(self.width)]

    def step(self) -> int:
        """Advance by one clock; returns the output (MSB) bit shifted out."""
        out = (self._state >> (self.width - 1)) & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & ((1 << self.width) - 1)
        return out

    def next_value(self, bits: Optional[int] = None) -> int:
        """Advance and return the register value (or ``bits`` output bits)."""
        if bits is None:
            self.step()
            return self._state
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.step()
        return value

    def randrange(self, upper: int) -> int:
        """Pseudo-random integer in ``[0, upper)`` drawn from the LFSR.

        Uses rejection sampling over ``ceil(log2(upper))`` output bits so
        the distribution over the LFSR's sequence is unbiased.
        """
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        if upper == 1:
            return 0
        nbits = (upper - 1).bit_length()
        while True:
            candidate = self.next_value(bits=nbits)
            if candidate < upper:
                return candidate

    def period_upper_bound(self) -> int:
        """Maximum possible sequence period (``2**width - 1``)."""
        return (1 << self.width) - 1


class GaloisLFSR:
    """A Galois (internal-XOR) LFSR defined by a polynomial mask.

    Parameters
    ----------
    width:
        Register width in bits.
    poly:
        Feedback polynomial as a bit mask (bit ``i`` set means the
        monomial ``x**(i+1)`` participates).  Defaults to the mask
        equivalent of :data:`DEFAULT_TAPS` for the width.
    seed:
        Non-zero initial value.
    """

    def __init__(self, width: int, poly: Optional[int] = None, seed: int = 1):
        if width <= 1:
            raise ValueError("LFSR width must be at least 2")
        if poly is None:
            if width not in DEFAULT_TAPS:
                raise ValueError(
                    f"no default polynomial for width {width}")
            poly = 0
            for tap in DEFAULT_TAPS[width]:
                poly |= 1 << (tap - 1)
        if seed == 0:
            raise ValueError("the all-zero seed locks up an LFSR")
        if not (0 < seed < (1 << width)):
            raise ValueError(f"seed must fit in {width} bits and be non-zero")
        self.width = width
        self.poly = poly
        self._state = seed

    @property
    def state(self) -> int:
        """Current register contents as an integer."""
        return self._state

    def step(self) -> int:
        """Advance by one clock; returns the bit shifted out (LSB)."""
        out = self._state & 1
        self._state >>= 1
        if out:
            self._state ^= self.poly
        return out

    def next_value(self, bits: Optional[int] = None) -> int:
        """Advance and return the register value (or ``bits`` output bits)."""
        if bits is None:
            self.step()
            return self._state
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.step()
        return value


__all__ = ["LFSR", "GaloisLFSR", "DEFAULT_TAPS"]
