"""Plain-text rendering of measured-versus-published results.

Used by the benchmark harness and the examples to print the regenerated
tables next to the paper's numbers, and by EXPERIMENTS.md generation.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.analysis.correction_capability import CorrectionCapabilityResult
from repro.analysis.tradeoff import HammingFamilyRow
from repro.campaigns.stats import StreamingCampaignResult
from repro.core.protected import CostReport


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                  title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_measured_vs_paper(measured: Sequence[CostReport],
                             published: Sequence[Mapping[str, float]],
                             title: str = "") -> str:
    """Interleave measured table rows with the paper's published rows."""
    headers = ["W", "l", "source", "area um2", "ovh %", "enc mW", "dec mW",
               "t ns", "enc nJ", "dec nJ"]
    rows: List[List[str]] = []
    published_by_w = {int(row["W"]): row for row in published}
    for report in measured:
        row = report.as_table_row()
        rows.append([
            str(row["W"]), str(row["l"]), "measured",
            f"{row['area_um2']:.0f}", f"{row['area_overhead_percent']:.1f}",
            f"{row['enc_power_mw']:.2f}", f"{row['dec_power_mw']:.2f}",
            f"{row['latency_ns']:.0f}", f"{row['enc_energy_nj']:.2f}",
            f"{row['dec_energy_nj']:.2f}"])
        paper_row = published_by_w.get(row["W"])
        if paper_row is not None:
            rows.append([
                str(int(paper_row["W"])), str(int(paper_row["l"])), "paper",
                f"{paper_row['area_um2']:.0f}",
                f"{paper_row['area_overhead_percent']:.1f}",
                f"{paper_row['enc_power_mw']:.2f}",
                f"{paper_row['dec_power_mw']:.2f}",
                f"{paper_row['latency_ns']:.0f}",
                f"{paper_row['enc_energy_nj']:.2f}",
                f"{paper_row['dec_energy_nj']:.2f}"])
    return _format_table(headers, rows, title)


def format_family_table(measured: Sequence[HammingFamilyRow],
                        published: Sequence[Mapping[str, float]],
                        title: str = "") -> str:
    """Render Table III (measured and published) side by side."""
    headers = ["code", "W", "source", "total um2", "ovh %", "enc mW",
               "dec mW", "cap %"]
    published_by_code = {(int(r["n"]), int(r["k"])): r for r in published}
    rows: List[List[str]] = []
    for row in measured:
        rows.append([
            f"({row.n},{row.k})", str(row.num_chains), "measured",
            f"{row.total_area_um2:.0f}",
            f"{row.area_overhead_percent:.1f}",
            f"{row.enc_power_mw:.2f}", f"{row.dec_power_mw:.2f}",
            f"{row.correction_capability_percent:.2f}"])
        paper_row = published_by_code.get((row.n, row.k))
        if paper_row is not None:
            rows.append([
                f"({row.n},{row.k})", str(int(paper_row["W"])), "paper",
                f"{paper_row['total_area_um2']:.0f}",
                f"{paper_row['area_overhead_percent']:.1f}",
                f"{paper_row['enc_power_mw']:.2f}",
                f"{paper_row['dec_power_mw']:.2f}",
                f"{paper_row['correction_capability_percent']:.2f}"])
    return _format_table(headers, rows, title)


def format_fig10_table(curves: Mapping[Tuple[int, int],
                                       Sequence[CorrectionCapabilityResult]],
                       title: str = "") -> str:
    """Render the Fig. 10 curves as a table (codes x error counts)."""
    codes = sorted(curves.keys())
    if not codes:
        raise ValueError("no curves to format")
    error_counts = [r.num_errors for r in curves[codes[0]]]
    headers = ["errors"] + [f"({n},{k}) %" for n, k in codes]
    rows: List[List[str]] = []
    for index, num_errors in enumerate(error_counts):
        row = [str(num_errors)]
        for code in codes:
            row.append(f"{curves[code][index].corrected_percent:.2f}")
        rows.append(row)
    return _format_table(headers, rows, title)


def format_validation_summary(measured: Mapping[str,
                                                StreamingCampaignResult],
                              published: Mapping[str, Mapping[str, float]],
                              title: str = "") -> str:
    """Render the Section IV campaign headlines, measured vs paper.

    ``measured`` maps campaign names (``"single_error"``,
    ``"multiple_error"``) to streaming results, as produced by
    :func:`repro.analysis.tradeoff.section4_validation_rows`;
    ``published`` is
    :data:`repro.analysis.paper_data.VALIDATION_SUMMARY`.
    """
    headers = ["campaign", "source", "sequences", "det %", "corr %",
               "silent", "mismatch"]
    rows: List[List[str]] = []
    for name, result in measured.items():
        rows.append([
            name, "measured", str(result.stats.num_sequences),
            f"{result.stats.detection_rate() * 100:.2f}",
            f"{result.stats.correction_rate() * 100:.2f}",
            str(result.stats.silent_corruptions),
            str(result.mismatches_reported_by_comparator)])
        paper_row = published.get(name)
        if paper_row is not None:
            rows.append([
                name, "paper", "1e8",
                f"{paper_row['detection_rate'] * 100:.2f}",
                f"{paper_row['correction_rate'] * 100:.2f}",
                "0", "-"])
    return _format_table(headers, rows, title)


__all__ = [
    "format_measured_vs_paper",
    "format_family_table",
    "format_fig10_table",
    "format_validation_summary",
]
