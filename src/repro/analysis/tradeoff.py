"""Cost trade-off sweeps (paper Tables I--III and Fig. 9).

All sweeps operate on the paper's 32x32 FIFO case study (overridable)
and use :class:`~repro.core.protected.ProtectedDesign`'s cost reporting,
which in turn rests on the 120 nm cost model of :mod:`repro.tech`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaigns.seeding import child_seed
from repro.campaigns.stats import StreamingCampaignResult
from repro.circuit.base import SequentialCircuit
from repro.circuit.fifo import SyncFIFO
from repro.codes.hamming import PAPER_HAMMING_CODES, HammingCode
from repro.core.protected import CostReport, ProtectedDesign
from repro.tech.library import StandardCellLibrary
from repro.validation.campaign import (
    run_sharded_multiple_error_campaign,
    run_sharded_single_error_campaign,
)

#: The scan-chain counts swept in Tables I and II.
PAPER_CHAIN_SWEEP: Tuple[int, ...] = (4, 8, 16, 40, 80)

#: The chain count used for each code in Table III (a multiple of each
#: code's data width ``k`` so the monitoring blocks divide evenly).
PAPER_FAMILY_CHAINS: Dict[Tuple[int, int], int] = {
    (7, 4): 56,
    (15, 11): 55,
    (31, 26): 52,
    (63, 57): 57,
}


def _default_fifo() -> SyncFIFO:
    return SyncFIFO(width=32, depth=32, name="fifo32x32")


def sweep_code_configurations(code: str,
                              chain_counts: Sequence[int] = PAPER_CHAIN_SWEEP,
                              circuit: Optional[SequentialCircuit] = None,
                              clock_hz: float = 100e6,
                              library: Optional[StandardCellLibrary] = None
                              ) -> List[CostReport]:
    """Cost reports of one code across several scan-chain counts.

    This is the generic engine behind Tables I and II: each chain count
    yields one table row (area, overhead %, enc/dec power, latency,
    enc/dec energy).
    """
    circuit = circuit if circuit is not None else _default_fifo()
    reports: List[CostReport] = []
    for num_chains in chain_counts:
        design = ProtectedDesign(circuit, codes=code, num_chains=num_chains,
                                 clock_hz=clock_hz, library=library)
        reports.append(design.cost_report())
    return reports


def table1_crc16(chain_counts: Sequence[int] = PAPER_CHAIN_SWEEP,
                 circuit: Optional[SequentialCircuit] = None,
                 clock_hz: float = 100e6,
                 library: Optional[StandardCellLibrary] = None
                 ) -> List[CostReport]:
    """Regenerate the rows of the paper's Table I (CRC-16 monitoring)."""
    return sweep_code_configurations("crc16", chain_counts, circuit,
                                     clock_hz, library)


def table2_hamming74(chain_counts: Sequence[int] = PAPER_CHAIN_SWEEP,
                     circuit: Optional[SequentialCircuit] = None,
                     clock_hz: float = 100e6,
                     library: Optional[StandardCellLibrary] = None
                     ) -> List[CostReport]:
    """Regenerate the rows of the paper's Table II (Hamming(7,4))."""
    return sweep_code_configurations("hamming(7,4)", chain_counts, circuit,
                                     clock_hz, library)


@dataclass(frozen=True)
class HammingFamilyRow:
    """One row of the paper's Table III."""

    n: int
    k: int
    num_chains: int
    fifo_area_um2: float
    total_area_um2: float
    area_overhead_percent: float
    enc_power_mw: float
    dec_power_mw: float
    correction_capability_percent: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for table rendering and comparisons."""
        return {
            "n": self.n,
            "k": self.k,
            "W": self.num_chains,
            "fifo_area_um2": round(self.fifo_area_um2, 1),
            "total_area_um2": round(self.total_area_um2, 1),
            "area_overhead_percent": round(self.area_overhead_percent, 2),
            "enc_power_mw": round(self.enc_power_mw, 3),
            "dec_power_mw": round(self.dec_power_mw, 3),
            "correction_capability_percent": round(
                self.correction_capability_percent, 2),
        }


def table3_hamming_family(
        family: Sequence[Tuple[int, int]] = PAPER_HAMMING_CODES,
        chains_per_code: Optional[Dict[Tuple[int, int], int]] = None,
        circuit: Optional[SequentialCircuit] = None,
        clock_hz: float = 100e6,
        library: Optional[StandardCellLibrary] = None
        ) -> List[HammingFamilyRow]:
    """Regenerate the paper's Table III: cost versus Hamming redundancy.

    For each code the chain count defaults to the paper's choice (a
    multiple of the code's ``k`` near 52--57 chains).
    """
    circuit = circuit if circuit is not None else _default_fifo()
    chains_per_code = (chains_per_code if chains_per_code is not None
                       else PAPER_FAMILY_CHAINS)
    rows: List[HammingFamilyRow] = []
    for n, k in family:
        code = HammingCode(n, k)
        num_chains = chains_per_code.get((n, k), k)
        design = ProtectedDesign(circuit, codes=code, num_chains=num_chains,
                                 clock_hz=clock_hz, library=library)
        cost = design.cost_report()
        rows.append(HammingFamilyRow(
            n=n, k=k, num_chains=num_chains,
            fifo_area_um2=cost.area.base_area,
            total_area_um2=cost.area.total,
            area_overhead_percent=cost.area_overhead_percent,
            enc_power_mw=cost.encode_cost.power_mw,
            dec_power_mw=cost.decode_cost.power_mw,
            correction_capability_percent=code.correction_capability * 100.0))
    return rows


def fig9_series(chain_counts: Sequence[int] = PAPER_CHAIN_SWEEP,
                circuit: Optional[SequentialCircuit] = None,
                clock_hz: float = 100e6,
                library: Optional[StandardCellLibrary] = None
                ) -> Dict[str, Dict[str, List[float]]]:
    """Regenerate both panels of the paper's Fig. 9.

    Returns a mapping with one entry per code (``"crc16"`` and
    ``"hamming(7,4)"``); each entry holds aligned lists:

    * ``chains`` -- the swept scan-chain counts (x axis);
    * ``area_overhead_percent`` and ``coding_power_mw`` -- Fig. 9(a);
    * ``latency_ns`` and ``energy_nj`` -- Fig. 9(b).
    """
    circuit = circuit if circuit is not None else _default_fifo()
    series: Dict[str, Dict[str, List[float]]] = {}
    for code in ("crc16", "hamming(7,4)"):
        reports = sweep_code_configurations(code, chain_counts, circuit,
                                            clock_hz, library)
        series[code] = {
            "chains": [float(r.config.num_chains) for r in reports],
            "area_overhead_percent": [r.area_overhead_percent
                                      for r in reports],
            "coding_power_mw": [r.encode_cost.power_mw for r in reports],
            "latency_ns": [r.latency_ns for r in reports],
            "energy_nj": [r.encode_cost.energy_nj for r in reports],
        }
    return series


def section4_validation_rows(num_sequences: int = 100,
                             burst_size: int = 4,
                             width: int = 32, depth: int = 32,
                             num_chains: int = 80,
                             seed: Optional[int] = 20100308,
                             engine: Optional[str] = "packed",
                             batch_size: Optional[int] = None,
                             num_workers: int = 1,
                             chunk_size: Optional[int] = None
                             ) -> Dict[str, StreamingCampaignResult]:
    """Regenerate the Section IV campaign headlines, sharded.

    Runs the paper's two FPGA validation campaigns (single error per
    sequence, clustered multi-bit burst per sequence) through the
    :mod:`repro.campaigns` runner on the paper's 32x32 FIFO / 80-chain
    configuration and returns their streaming statistics, keyed
    ``"single_error"`` / ``"multiple_error"`` to match
    :data:`repro.analysis.paper_data.VALIDATION_SUMMARY`.

    ``engine`` accepts any registered simulation engine;
    ``engine="batched"`` with a ``batch_size`` runs the campaigns on
    the bit-plane batch path, the fastest way to push the sequence
    count toward the paper's 10^8.
    """
    single = run_sharded_single_error_campaign(
        num_sequences, width=width, depth=depth, num_chains=num_chains,
        seed=None if seed is None else child_seed(seed, "single"),
        engine=engine, batch_size=batch_size,
        num_workers=num_workers, chunk_size=chunk_size)
    multiple = run_sharded_multiple_error_campaign(
        num_sequences, burst_size=burst_size, clustered=True,
        width=width, depth=depth, num_chains=num_chains,
        seed=None if seed is None else child_seed(seed, "multiple"),
        engine=engine, batch_size=batch_size,
        num_workers=num_workers, chunk_size=chunk_size)
    return {"single_error": single, "multiple_error": multiple}


__all__ = [
    "PAPER_CHAIN_SWEEP",
    "PAPER_FAMILY_CHAINS",
    "sweep_code_configurations",
    "table1_crc16",
    "table2_hamming74",
    "table3_hamming_family",
    "HammingFamilyRow",
    "fig9_series",
    "section4_validation_rows",
]
