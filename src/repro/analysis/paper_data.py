"""Published results from the paper, for side-by-side comparison.

Every table/figure the reproduction regenerates has its published
counterpart recorded here.  Absolute values come from the authors'
Synopsys/STMicro 120 nm flow and are *not* expected to match the Python
cost model exactly; the benchmark harness compares shapes (orderings,
ratios, trends) and EXPERIMENTS.md records both sets of numbers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Paper Table I: 32x32 FIFO, CRC-16, 120 nm, 100 MHz.
#: Columns: W, l, area um^2, overhead %, enc mW, dec mW, t ns, enc nJ, dec nJ.
TABLE1_CRC16: List[Dict[str, float]] = [
    {"W": 4, "l": 260, "area_um2": 73658, "area_overhead_percent": 2.8,
     "enc_power_mw": 4.99, "dec_power_mw": 4.99, "latency_ns": 2600,
     "enc_energy_nj": 12.97, "dec_energy_nj": 12.97},
    {"W": 8, "l": 130, "area_um2": 73928, "area_overhead_percent": 3.2,
     "enc_power_mw": 4.96, "dec_power_mw": 4.97, "latency_ns": 1300,
     "enc_energy_nj": 6.45, "dec_energy_nj": 6.46},
    {"W": 16, "l": 65, "area_um2": 74614, "area_overhead_percent": 4.2,
     "enc_power_mw": 4.96, "dec_power_mw": 4.98, "latency_ns": 650,
     "enc_energy_nj": 3.22, "dec_energy_nj": 3.24},
    {"W": 40, "l": 26, "area_um2": 75762, "area_overhead_percent": 5.8,
     "enc_power_mw": 5.13, "dec_power_mw": 5.17, "latency_ns": 260,
     "enc_energy_nj": 1.33, "dec_energy_nj": 1.34},
    {"W": 80, "l": 13, "area_um2": 78208, "area_overhead_percent": 9.2,
     "enc_power_mw": 5.14, "dec_power_mw": 5.25, "latency_ns": 130,
     "enc_energy_nj": 0.67, "dec_energy_nj": 0.68},
]

#: Paper Table II: 32x32 FIFO, Hamming(7,4), 120 nm, 100 MHz.
TABLE2_HAMMING74: List[Dict[str, float]] = [
    {"W": 4, "l": 260, "area_um2": 120594, "area_overhead_percent": 68.4,
     "enc_power_mw": 6.76, "dec_power_mw": 6.72, "latency_ns": 2600,
     "enc_energy_nj": 17.58, "dec_energy_nj": 17.47},
    {"W": 8, "l": 130, "area_um2": 121552, "area_overhead_percent": 69.7,
     "enc_power_mw": 6.91, "dec_power_mw": 6.86, "latency_ns": 1300,
     "enc_energy_nj": 8.98, "dec_energy_nj": 8.92},
    {"W": 16, "l": 65, "area_um2": 123303, "area_overhead_percent": 72.1,
     "enc_power_mw": 7.11, "dec_power_mw": 7.00, "latency_ns": 650,
     "enc_energy_nj": 4.62, "dec_energy_nj": 4.55},
    {"W": 40, "l": 26, "area_um2": 126811, "area_overhead_percent": 77.0,
     "enc_power_mw": 7.72, "dec_power_mw": 7.45, "latency_ns": 260,
     "enc_energy_nj": 2.00, "dec_energy_nj": 1.94},
    {"W": 80, "l": 13, "area_um2": 134141, "area_overhead_percent": 87.3,
     "enc_power_mw": 8.43, "dec_power_mw": 8.05, "latency_ns": 130,
     "enc_energy_nj": 1.08, "dec_energy_nj": 1.05},
]

#: Paper Table III: 32x32 FIFO, Hamming code family.
#: Columns: code (n, k), W, FIFO area, total area, overhead %, enc mW,
#: dec mW, correction capability %.
TABLE3_HAMMING_FAMILY: List[Dict[str, float]] = [
    {"n": 7, "k": 4, "W": 56, "fifo_area_um2": 71628,
     "total_area_um2": 132338, "area_overhead_percent": 84.8,
     "enc_power_mw": 8.21, "dec_power_mw": 7.84,
     "correction_capability_percent": 14.3},
    {"n": 15, "k": 11, "W": 55, "fifo_area_um2": 71628,
     "total_area_um2": 101681, "area_overhead_percent": 42.0,
     "enc_power_mw": 6.52, "dec_power_mw": 6.34,
     "correction_capability_percent": 6.67},
    {"n": 31, "k": 26, "W": 52, "fifo_area_um2": 71628,
     "total_area_um2": 88311, "area_overhead_percent": 23.2,
     "enc_power_mw": 5.89, "dec_power_mw": 5.82,
     "correction_capability_percent": 3.23},
    {"n": 63, "k": 57, "W": 57, "fifo_area_um2": 71628,
     "total_area_um2": 82987, "area_overhead_percent": 15.9,
     "enc_power_mw": 5.64, "dec_power_mw": 5.62,
     "correction_capability_percent": 1.59},
]

#: Paper Fig. 10 reference points: correction rate (%) of each Hamming
#: code for 2 and 10 injected errors over a 1000-flip-flop sequence.
FIG10_REFERENCE: Dict[Tuple[int, int], Dict[int, float]] = {
    (7, 4): {2: 98.81, 10: 94.14},
    (15, 11): {2: None, 10: None},     # curve shown, endpoints not quoted
    (31, 26): {2: None, 10: None},     # curve shown, endpoints not quoted
    (63, 57): {2: 88.65, 10: 52.96},
}

#: The FPGA validation campaign headline results (Section IV).
VALIDATION_SUMMARY = {
    "single_error": {"detection_rate": 1.0, "correction_rate": 1.0},
    "multiple_error": {"detection_rate": 1.0, "correction_rate": 0.0},
}

#: The Fig. 5 / Section III worked example on scan-chain configuration.
SCAN_SPEEDUP_EXAMPLE = {
    "num_registers": 128,
    "baseline_chains": 4,
    "baseline_cycles": 32,
    "reconfigured_chains": 16,
    "reconfigured_cycles": 8,
    "speedup": 4.0,
}

#: Base FIFO area reported by the paper (um^2) and the clock frequency.
FIFO_BASE_AREA_UM2 = 71628.0
CLOCK_MHZ = 100.0


__all__ = [
    "TABLE1_CRC16",
    "TABLE2_HAMMING74",
    "TABLE3_HAMMING_FAMILY",
    "FIG10_REFERENCE",
    "VALIDATION_SUMMARY",
    "SCAN_SPEEDUP_EXAMPLE",
    "FIFO_BASE_AREA_UM2",
    "CLOCK_MHZ",
]
