"""Analysis sweeps that regenerate the paper's tables and figures.

* :mod:`repro.analysis.tradeoff` -- the scan-chain-configuration cost
  sweeps behind Table I (CRC-16), Table II (Hamming(7,4)), Table III
  (the Hamming family) and both panels of Fig. 9;
* :mod:`repro.analysis.correction_capability` -- the Monte-Carlo
  correction-capability study of Fig. 10;
* :mod:`repro.analysis.paper_data` -- the numbers published in the
  paper, for side-by-side comparison in EXPERIMENTS.md and in the
  benchmark output;
* :mod:`repro.analysis.tables` -- plain-text rendering of measured
  versus published results.
"""

from repro.analysis.tradeoff import (
    sweep_code_configurations,
    table1_crc16,
    table2_hamming74,
    table3_hamming_family,
    fig9_series,
    section4_validation_rows,
    HammingFamilyRow,
)
from repro.analysis.correction_capability import (
    CorrectionCapabilityResult,
    CorrectionCapabilityTask,
    correction_capability_curve,
    analytic_correction_probability,
    fig10_curves,
)
from repro.analysis import paper_data
from repro.analysis.sensitivity import (
    BreakEvenPoint,
    SensitivityOutcome,
    format_break_even_table,
    library_scaling_sensitivity,
    sleep_break_even,
)
from repro.analysis.tables import (
    format_measured_vs_paper,
    format_family_table,
    format_fig10_table,
    format_validation_summary,
)

__all__ = [
    "BreakEvenPoint",
    "SensitivityOutcome",
    "format_break_even_table",
    "library_scaling_sensitivity",
    "sleep_break_even",
    "sweep_code_configurations",
    "table1_crc16",
    "table2_hamming74",
    "table3_hamming_family",
    "fig9_series",
    "section4_validation_rows",
    "HammingFamilyRow",
    "CorrectionCapabilityResult",
    "CorrectionCapabilityTask",
    "correction_capability_curve",
    "analytic_correction_probability",
    "fig10_curves",
    "paper_data",
    "format_measured_vs_paper",
    "format_family_table",
    "format_fig10_table",
    "format_validation_summary",
]
