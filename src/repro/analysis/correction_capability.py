"""Correction-capability study (paper Fig. 10).

The paper injects 1--10 random errors into a test sequence of 1000 bits
(emulating 1000 flip-flops), passes the sequence through four Hamming
implementations and reports the percentage of injected errors that each
code corrects, over one million simulated sequences.

The mechanism behind the curves: the 1000-bit state is carved into
consecutive codewords; a single-error-correcting code repairs an
injected error only when it is the *only* error in its codeword.
Longer codewords (lower redundancy) make collisions more likely, so
Hamming(63,57) degrades much faster than Hamming(7,4) as the error
count grows.

Both a Monte-Carlo campaign (matching the paper's methodology) and the
closed-form expectation are provided; the property-based tests check
they agree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaigns.runner import CampaignTask
from repro.campaigns.scheduler import CampaignScheduler
from repro.campaigns.seeding import child_seed
from repro.codes.hamming import PAPER_HAMMING_CODES, HammingCode


@dataclass(frozen=True)
class CorrectionCapabilityResult:
    """Correction statistics of one code at one injected-error count.

    Attributes
    ----------
    code_n, code_k:
        The Hamming code parameters.
    num_errors:
        Errors injected per test sequence.
    sequences:
        Monte-Carlo sample size.
    corrected_fraction:
        Fraction of injected error bits that were corrected (the y axis
        of the paper's Fig. 10).
    sequences_fully_corrected:
        Number of sequences in which every injected error was corrected.
    """

    code_n: int
    code_k: int
    num_errors: int
    sequences: int
    corrected_fraction: float
    sequences_fully_corrected: int

    @property
    def corrected_percent(self) -> float:
        """Corrected fraction as a percentage."""
        return self.corrected_fraction * 100.0


def analytic_correction_probability(code: HammingCode, num_bits: int,
                                    num_errors: int) -> float:
    """Expected fraction of corrected errors, in closed form.

    With the ``num_bits`` state carved into codewords of ``n`` bits, an
    error is corrected exactly when none of the other ``num_errors - 1``
    errors falls into its codeword.  For errors placed uniformly at
    random without replacement this probability is

    ``prod_{i=1..m-1} (num_bits - n - i + 1) / (num_bits - i)``

    with ``m = num_errors`` and ``n`` the codeword length (capped at the
    sequence size).
    """
    if num_errors <= 0:
        return 1.0
    if num_bits <= 0:
        raise ValueError("the sequence must contain at least one bit")
    n = min(code.n, num_bits)
    probability = 1.0
    for i in range(1, num_errors):
        remaining_outside = num_bits - n - (i - 1)
        remaining_total = num_bits - i
        if remaining_total <= 0 or remaining_outside <= 0:
            return 0.0
        probability *= remaining_outside / remaining_total
    return probability


def _simulate_sequence(code: HammingCode, num_bits: int, num_errors: int,
                       rng: random.Random) -> Tuple[int, bool]:
    """One Monte-Carlo trial; returns (corrected bits, fully corrected)."""
    positions = rng.sample(range(num_bits), num_errors)
    codeword_of = [pos // code.n for pos in positions]
    counts: Dict[int, int] = {}
    for word in codeword_of:
        counts[word] = counts.get(word, 0) + 1
    corrected = sum(1 for word in codeword_of if counts[word] == 1)
    return corrected, corrected == num_errors


def _simulate_sequence_packed(code: HammingCode, num_bits: int,
                              num_errors: int,
                              rng: random.Random) -> Tuple[int, bool]:
    """Bitmask variant of :func:`_simulate_sequence` (same RNG draws).

    Codeword hits are tracked in two integers -- ``seen`` (word hit at
    least once) and ``multi`` (word hit more than once) -- instead of a
    dict, so the per-trial cost is a handful of shift/mask operations.
    The random draw is identical, so for the same ``rng`` state the two
    simulators return exactly the same result.
    """
    positions = rng.sample(range(num_bits), num_errors)
    n = code.n
    seen = 0
    multi = 0
    for pos in positions:
        bit = 1 << (pos // n)
        multi |= seen & bit
        seen |= bit
    corrected = sum(1 for pos in positions
                    if not (multi >> (pos // n)) & 1)
    return corrected, corrected == num_errors


#: Sequence simulators selectable via this study's ``engine`` option.
#: Deliberately separate from the design-engine registry of
#: :mod:`repro.engines`: these simulate abstract codeword collisions
#: over a 1000-bit sequence, not a protected design, so engines
#: registered there do not apply here.
SEQUENCE_ENGINES = {
    "reference": _simulate_sequence,
    "packed": _simulate_sequence_packed,
}


@dataclass
class CorrectionCounters:
    """Mergeable counters of one correction-capability shard."""

    sequences: int = 0
    corrected_bits: int = 0
    fully_corrected: int = 0

    def merge(self, other: "CorrectionCounters") -> "CorrectionCounters":
        """Add another shard's counters into this one (in place)."""
        self.sequences += other.sequences
        self.corrected_bits += other.corrected_bits
        self.fully_corrected += other.fully_corrected
        return self

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form (JSON-safe) for checkpoints."""
        return {"sequences": self.sequences,
                "corrected_bits": self.corrected_bits,
                "fully_corrected": self.fully_corrected}

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "CorrectionCounters":
        """Rebuild the counters from :meth:`to_dict` output."""
        return cls(sequences=int(payload["sequences"]),
                   corrected_bits=int(payload["corrected_bits"]),
                   fully_corrected=int(payload["fully_corrected"]))


@dataclass(frozen=True)
class CorrectionCapabilityTask(CampaignTask):
    """One chunk of the Fig. 10 Monte-Carlo study, for the sharded
    runner of :mod:`repro.campaigns`."""

    code_n: int
    code_k: int
    num_bits: int
    num_errors: int
    engine: str = "reference"

    def empty_result(self) -> CorrectionCounters:
        return CorrectionCounters()

    def run_chunk(self, chunk_seed: int,
                  num_sequences: int) -> CorrectionCounters:
        simulate = SEQUENCE_ENGINES[self.engine]
        code = HammingCode(self.code_n, self.code_k)
        rng = random.Random(chunk_seed)
        counters = CorrectionCounters()
        for _ in range(num_sequences):
            corrected, full = simulate(code, self.num_bits,
                                       self.num_errors, rng)
            counters.sequences += 1
            counters.corrected_bits += corrected
            counters.fully_corrected += 1 if full else 0
        return counters


def _submit_curve(scheduler: CampaignScheduler, code: HammingCode,
                  error_counts: Sequence[int], num_bits: int,
                  sequences: int, seed: Optional[Union[int, str]],
                  engine: str, chunk_size: Optional[int],
                  progress_callback=None) -> list:
    """Queue one code's curve (one job per error count) on a scheduler."""
    jobs = []
    for num_errors in error_counts:
        task = CorrectionCapabilityTask(
            code_n=code.n, code_k=code.k, num_bits=num_bits,
            num_errors=num_errors, engine=engine)
        jobs.append((num_errors, scheduler.submit(
            task, sequences,
            seed=None if seed is None else child_seed(seed, "errors",
                                                      num_errors),
            chunk_size=chunk_size,
            progress_callback=progress_callback)))
    return jobs


def _curve_results(code: HammingCode,
                   jobs: list) -> List[CorrectionCapabilityResult]:
    """Collect one code's finished scheduler jobs into curve points."""
    results = []
    for num_errors, job in jobs:
        counters = job.result
        results.append(CorrectionCapabilityResult(
            code_n=code.n, code_k=code.k,
            num_errors=num_errors,
            sequences=counters.sequences,
            corrected_fraction=(
                counters.corrected_bits / (counters.sequences * num_errors)
                if num_errors > 0 else 1.0),
            sequences_fully_corrected=counters.fully_corrected))
    return results


def correction_capability_curve(code: HammingCode,
                                error_counts: Sequence[int] = tuple(
                                    range(1, 11)),
                                num_bits: int = 1000,
                                sequences: int = 2000,
                                seed: Optional[Union[int, str]] = 1234,
                                engine: str = "reference",
                                num_workers: int = 1,
                                chunk_size: Optional[int] = None,
                                progress_callback=None,
                                executor=None,
                                scheduler: Optional[CampaignScheduler] = None
                                ) -> List[CorrectionCapabilityResult]:
    """Monte-Carlo correction-capability curve for one code.

    Parameters mirror the paper's setup (1000-bit sequences, 1--10
    injected errors); ``sequences`` trades accuracy against runtime
    (the paper used 10^6, the default here is CI-sized and the
    benchmark harness can raise it).  ``engine="packed"`` selects the
    bitmask trial simulator, which draws the same random positions and
    therefore returns identical statistics, just faster.

    The per-error-count campaigns run as jobs of one
    :class:`~repro.campaigns.scheduler.CampaignScheduler` sharing a
    single executor (``executor`` accepts ``"serial"``/``"thread"``/
    ``"process"`` or an instance, sized by ``num_workers``), their
    chunks interleaved fair-share and their merged results memoized --
    re-requesting a curve point on the same scheduler is free.  Each
    error count keeps its own seed-split campaign root, so the
    statistics are bit-identical to the historical one-runner-per-point
    execution for any worker count and executor kind (given the same
    ``chunk_size``).
    """
    if num_bits < max(error_counts):
        raise ValueError("cannot inject more errors than there are bits")
    if engine not in SEQUENCE_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from "
            f"{tuple(SEQUENCE_ENGINES)}")
    if scheduler is None:
        scheduler = CampaignScheduler(executor=executor,
                                      num_workers=num_workers)
    jobs = _submit_curve(scheduler, code, error_counts, num_bits,
                         sequences, seed, engine, chunk_size,
                         progress_callback=progress_callback)
    scheduler.run()
    return _curve_results(code, jobs)


def fig10_curves(error_counts: Sequence[int] = tuple(range(1, 11)),
                 num_bits: int = 1000,
                 sequences: int = 2000,
                 seed: Optional[Union[int, str]] = 1234,
                 family: Sequence[Tuple[int, int]] = PAPER_HAMMING_CODES,
                 engine: str = "reference",
                 num_workers: int = 1,
                 chunk_size: Optional[int] = None,
                 executor=None
                 ) -> Dict[Tuple[int, int], List[CorrectionCapabilityResult]]:
    """Regenerate all four curves of the paper's Fig. 10.

    All ``len(family) * len(error_counts)`` campaigns are submitted to
    **one** scheduler and executed fair-share over one shared executor
    pool -- the Fig. 10 figure is exactly the many-jobs-one-pool shape
    the campaign service is built for.

    Each curve derives its root seed with hash-based seed-splitting
    (``child_seed(seed, "fig10", n, k)``) instead of the historical
    ``seed + offset`` scheme, under which the same integer seed could
    serve two different (code, error count) campaigns -- e.g. curve 0
    with user seed ``s + 1`` and curve 1 with user seed ``s`` --
    silently correlating samples that the statistics assume are
    independent.
    """
    if num_bits < max(error_counts):
        raise ValueError("cannot inject more errors than there are bits")
    if engine not in SEQUENCE_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from "
            f"{tuple(SEQUENCE_ENGINES)}")
    scheduler = CampaignScheduler(executor=executor,
                                  num_workers=num_workers)
    submitted = []
    for n, k in family:
        code = HammingCode(n, k)
        curve_seed = (None if seed is None
                      else child_seed(seed, "fig10", n, k))
        submitted.append((code, _submit_curve(
            scheduler, code, error_counts, num_bits, sequences,
            curve_seed, engine, chunk_size)))
    scheduler.run()
    return {(code.n, code.k): _curve_results(code, jobs)
            for code, jobs in submitted}


__all__ = [
    "CorrectionCapabilityResult",
    "CorrectionCapabilityTask",
    "CorrectionCounters",
    "SEQUENCE_ENGINES",
    "analytic_correction_probability",
    "correction_capability_curve",
    "fig10_curves",
]
