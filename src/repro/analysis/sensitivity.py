"""Sensitivity and break-even analyses around the paper's trade-offs.

Two questions a user of the methodology asks that the paper only touches
implicitly:

1. **How robust are the conclusions to the cost model?**  The published
   tables come from one 120 nm library.
   :func:`library_scaling_sensitivity` re-runs the Table I/II comparison
   under scaled library assumptions (area, switching energy, leakage)
   and reports whether the qualitative orderings survive.

2. **When is protected power gating worth it at all?**  Encode/decode
   costs energy on every sleep cycle; gating saves leakage while
   asleep.  :func:`sleep_break_even` computes the minimum sleep duration
   for which gating plus monitoring still saves energy, per
   configuration -- the "is it worth sleeping for this long?" curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.circuit.base import SequentialCircuit
from repro.circuit.fifo import SyncFIFO
from repro.core.protected import ProtectedDesign
from repro.power.leakage import LeakageModel
from repro.power.rush_current import RushCurrentModel
from repro.tech.library import StandardCellLibrary, default_library


@dataclass(frozen=True)
class SensitivityOutcome:
    """Result of one scaled-library re-evaluation."""

    scale_label: str
    area_scale: float
    energy_scale: float
    crc_overhead_percent: float
    hamming_overhead_percent: float
    power_ratio: float

    @property
    def orderings_hold(self) -> bool:
        """The paper's qualitative claims under this scaling.

        Hamming costs (much) more area than CRC, and its coding power is
        above CRC's but well below 2x.
        """
        return (self.hamming_overhead_percent
                > 2 * self.crc_overhead_percent
                and 1.0 < self.power_ratio < 2.0)


def library_scaling_sensitivity(
        scales: Sequence[Tuple[str, float, float]] = (
            ("nominal", 1.0, 1.0),
            ("dense-library", 0.7, 0.85),
            ("fast-library", 1.2, 1.3),
            ("low-power-library", 1.1, 0.6),
        ),
        circuit: Optional[SequentialCircuit] = None,
        num_chains: int = 80) -> List[SensitivityOutcome]:
    """Re-evaluate the CRC-vs-Hamming comparison under scaled libraries."""
    circuit = circuit if circuit is not None else SyncFIFO(32, 32)
    base = default_library()
    outcomes: List[SensitivityOutcome] = []
    for label, area_scale, energy_scale in scales:
        library = base.scaled(f"st120nm-{label}", area_scale=area_scale,
                              energy_scale=energy_scale)
        crc = ProtectedDesign(circuit, codes="crc16", num_chains=num_chains,
                              library=library).cost_report()
        ham = ProtectedDesign(circuit, codes="hamming(7,4)",
                              num_chains=num_chains,
                              library=library).cost_report()
        outcomes.append(SensitivityOutcome(
            scale_label=label,
            area_scale=area_scale,
            energy_scale=energy_scale,
            crc_overhead_percent=crc.area_overhead_percent,
            hamming_overhead_percent=ham.area_overhead_percent,
            power_ratio=(ham.encode_cost.power_mw
                         / crc.encode_cost.power_mw)))
    return outcomes


@dataclass(frozen=True)
class BreakEvenPoint:
    """Break-even sleep duration of one configuration."""

    num_chains: int
    code: str
    overhead_energy_nj: float
    leakage_saved_mw: float
    break_even_us: float


def sleep_break_even(codes: Sequence[str] = ("crc16", "hamming(7,4)"),
                     chain_counts: Sequence[int] = (4, 16, 80),
                     circuit: Optional[SequentialCircuit] = None,
                     library: Optional[StandardCellLibrary] = None
                     ) -> List[BreakEvenPoint]:
    """Minimum sleep duration for which gating + monitoring saves energy.

    The per-cycle overhead is the encode pass plus the decode pass plus
    the wake-up recharge energy; the per-second saving is the leakage
    difference between staying awake and sleeping.
    """
    circuit = circuit if circuit is not None else SyncFIFO(32, 32)
    library = library if library is not None else default_library()
    leakage = LeakageModel(library)
    points: List[BreakEvenPoint] = []
    for code in codes:
        for num_chains in chain_counts:
            design = ProtectedDesign(circuit, codes=code,
                                     num_chains=num_chains, library=library)
            cost = design.cost_report()
            rush = RushCurrentModel(design.domain.rlc)
            overhead_j = (cost.encode_cost.energy_j + cost.decode_cost.energy_j
                          + rush.wakeup_energy())
            report = leakage.report(design.full_netlist())
            saved_w = report.active_leakage - report.sleep_leakage
            break_even_s = (overhead_j / saved_w) if saved_w > 0 else float("inf")
            points.append(BreakEvenPoint(
                num_chains=num_chains,
                code=code,
                overhead_energy_nj=overhead_j * 1e9,
                leakage_saved_mw=saved_w * 1e3,
                break_even_us=break_even_s * 1e6))
    return points


def format_break_even_table(points: Sequence[BreakEvenPoint]) -> str:
    """Render break-even points as a text table."""
    lines = ["code          |  W | overhead nJ | leak saved mW | break-even us"]
    lines.append("-" * len(lines[0]))
    for point in points:
        lines.append(
            f"{point.code:13s} | {point.num_chains:2d} "
            f"| {point.overhead_energy_nj:11.2f} "
            f"| {point.leakage_saved_mw:13.4f} "
            f"| {point.break_even_us:13.2f}")
    return "\n".join(lines)


__all__ = [
    "SensitivityOutcome",
    "library_scaling_sensitivity",
    "BreakEvenPoint",
    "sleep_break_even",
    "format_break_even_table",
]
