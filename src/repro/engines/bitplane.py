"""The bit-plane batched engine: B sequences per pass.

The packed engine (:mod:`repro.fastpath.engine`) collapses the bit
axis -- one chain becomes one integer -- but still pays its per-pass
Python overhead once per test sequence, which is what dominates a
Monte-Carlo campaign at the paper's 10^8-sequence scale.  This engine
collapses the *sequence* axis as well: scan position ``i`` of chain
``c`` is stored for **all B sequences of a batch in one Python int**
(``planes[c][i]``, bit ``b`` = sequence ``b``), so every parity
equation, CRC step and syndrome comparison is computed for the whole
batch with a constant number of bitwise operations.

The monitoring codes are linear over GF(2), so the plane forms in
:mod:`repro.codes.plane` are exact; bit-exactness with the reference is
preserved by letting the planes do only the *batch-parallel* work
(parities, signatures, "which sequences disagree at this slice") and
delegating every disagreeing sequence to the same packed scalar
decoder the packed engine uses.  Error-carrying sequences are sparse in
real campaigns (one slice in error out of ``l x blocks``), so the
per-sequence work is proportional to the number of *errors*, not the
batch size -- exactly the overhead the packed engine could not amortize.

Report objects are only materialised for sequences that saw an event;
clean sequences share one cached per-block report tuple
(:class:`~repro.core.monitor.MonitorReport` is frozen), keeping the
per-clean-sequence cost at a few bit tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.codes.base import DecodeStatus
from repro.codes.plane import (
    extract_word,
    plane_block_code,
    plane_stream_code,
)
from repro.core.corrector import CorrectionEvent
from repro.core.monitor import MonitorBank, MonitorReport
from repro.engines.base import (
    BatchDecodeResult,
    EngineCapabilities,
    SimulationEngine,
)
from repro.engines.packing import (
    pack_chains,
    replicate_states,
    states_from_planes,
    write_back_chains,
)
from repro.engines.reporting import assemble_batch_result, clean_report_tuple
from repro.fastpath.engine import (
    classify_monitors,
    replay_overlapping_feedback,
)


class _PlaneBlockMonitor:
    """Plane state of one correcting (block-code) monitoring block."""

    def __init__(self, block):
        self.block = block
        self.chain_indices = block.chain_indices
        self.width = block.width
        self.plane = plane_block_code(block.code)
        self.packed = self.plane.packed
        self.k = self.plane.k
        self.r = self.plane.r
        #: Per decode-cycle parity planes (r planes each), cycle order.
        self.stored: List[List[int]] = []

    def gather(self, planes: Sequence[Sequence[int]],
               position: int) -> List[int]:
        """The block's k data planes at one scan position (MSB first).

        Chains beyond ``width`` are the tied-off padding inputs; their
        planes are constant zero.
        """
        data = [planes[chain_index][position]
                for chain_index in self.chain_indices]
        if self.width < self.k:
            data.extend([0] * (self.k - self.width))
        return data


class _PlaneStreamMonitor:
    """Plane state of one detection-only (stream-code) block."""

    def __init__(self, block):
        self.block = block
        self.chain_indices = block.chain_indices
        self.width = block.width
        self.plane = plane_stream_code(block.code)
        self.stored_signature: Optional[list] = None

    def fold(self, planes: Sequence[Sequence[int]], length: int, full: int):
        """Fold the block's whole observation stream; returns the state.

        Cycle ``t`` contributes the observed chains' planes at scan
        position ``l - 1 - t`` in chain order, matching the packed and
        reference stream layouts.
        """
        state = self.plane.new_state(full)
        step = self.plane.step
        indices = self.chain_indices
        for position in range(length - 1, -1, -1):
            for chain_index in indices:
                step(state, planes[chain_index][position])
        return state


class BitPlaneBatchedEngine(SimulationEngine):
    """Bit-plane simulation of B independent sequences per pass.

    Parameters
    ----------
    bank:
        The monitor bank whose structure (blocks, codes, chain
        assignments, report order) this engine mirrors.  Check bits are
        stored inside the engine; the bank's blocks are left untouched.
    num_chains, chain_length:
        Geometry of the chain set the passes run over.
    """

    capabilities = EngineCapabilities(batch=True, summary=True)

    @property
    def supports_summary(self) -> bool:
        """Columnar output needs numpy; the batch interface itself stays
        pure stdlib, so summary support is probed at use time rather
        than import time."""
        import importlib.util
        return importlib.util.find_spec("numpy") is not None

    def __init__(self, bank: MonitorBank, num_chains: int,
                 chain_length: int):
        self.num_chains = num_chains
        self.chain_length = chain_length
        (self._order, self._correcting, self._observing,
         self._overlapping_correctors) = classify_monitors(
            bank, _PlaneBlockMonitor, _PlaneStreamMonitor)
        self._encoded_batch: Optional[int] = None
        self._clean_reports: Optional[Tuple[MonitorReport, ...]] = None

    # ------------------------------------------------------------------
    def _check_geometry(self, planes: Sequence[Sequence[int]],
                        knowns: Sequence[int], batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if len(planes) != self.num_chains or len(knowns) != self.num_chains:
            raise ValueError(
                f"expected {self.num_chains} plane chains, got "
                f"{len(planes)}")
        full = (1 << batch_size) - 1
        chain_full = (1 << self.chain_length) - 1
        for chain_planes, known in zip(planes, knowns):
            if len(chain_planes) != self.chain_length:
                raise ValueError(
                    f"expected {self.chain_length} planes per chain, got "
                    f"{len(chain_planes)}")
            if not 0 <= known <= chain_full:
                raise ValueError("known mask exceeds the chain length")
            # Aggregate checks: one OR over the chain bounds every
            # plane at once (negative planes keep the OR negative), and
            # only the (rare) unknown positions are inspected per slot.
            accumulated = 0
            for plane in chain_planes:
                accumulated |= plane
            if accumulated < 0 or accumulated > full:
                raise ValueError(
                    f"plane has bits outside the {batch_size}-sequence "
                    f"batch")
            unknown = chain_full & ~known
            while unknown:
                low = unknown & -unknown
                unknown ^= low
                if chain_planes[low.bit_length() - 1]:
                    raise ValueError(
                        "unknown positions must hold all-zero planes")

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def encode_pass_batch(self, planes: Sequence[Sequence[int]],
                          knowns: Sequence[int], batch_size: int) -> int:
        """Run one batched encoding pass; returns the cycle count."""
        self._check_geometry(planes, knowns, batch_size)
        full = (1 << batch_size) - 1
        length = self.chain_length
        for monitor in self._correcting:
            parity_planes = monitor.plane.parity_planes
            gather = monitor.gather
            monitor.stored = [
                parity_planes(gather(planes, position), full)
                for position in range(length - 1, -1, -1)]
        for monitor in self._observing:
            state = monitor.fold(planes, length, full)
            monitor.stored_signature = state.snapshot()
        self._encoded_batch = batch_size
        return length

    def decode_pass_batch(self, planes: Sequence[Sequence[int]],
                          knowns: Sequence[int],
                          batch_size: int) -> BatchDecodeResult:
        """Run one batched decoding pass with on-the-fly correction."""
        if self._encoded_batch is None:
            raise RuntimeError("no stored check bits: encode first")
        if batch_size != self._encoded_batch:
            raise RuntimeError(
                f"decode batch size {batch_size} does not match the "
                f"encoded batch size {self._encoded_batch}")
        self._check_geometry(planes, knowns, batch_size)
        full = (1 << batch_size) - 1
        corrected = [list(chain_planes) for chain_planes in planes]

        block_results = self._decode_blocks(planes, corrected, full,
                                            collect_events=True)
        stream_results = self._decode_streams(corrected, full)
        return self._build_result(block_results, stream_results, corrected,
                                  batch_size)

    def _decode_blocks(self, planes: Sequence[Sequence[int]],
                       corrected: List[List[int]], full: int,
                       collect_events: bool) -> Dict[int, tuple]:
        """Decode every correcting block over the batch.

        Corrections are applied to ``corrected`` in place (including
        the overlapping-correctors replay).  With ``collect_events``
        the per-sequence correction/bad-slice values are the event
        lists the object path's reports need; without it they are plain
        counts -- the summary path's bookkeeping, costing no event
        objects.
        """
        length = self.chain_length
        block_results: Dict[int, tuple] = {}
        for monitor in self._correcting:
            if len(monitor.stored) != length:
                raise RuntimeError(
                    "decode pass is longer than the stored encode pass")
            detected_mask = 0
            uncorrectable_mask = 0
            corrections: Dict[int, object] = {}
            bad_slices: Dict[int, List[int]] = {}
            parity_planes = monitor.plane.parity_planes
            decode_slice = monitor.packed.decode_slice
            gather = monitor.gather
            stored = monitor.stored
            width = monitor.width
            k = monitor.k
            block_index = monitor.block.block_index
            indices = monitor.chain_indices
            for cycle in range(length):
                position = length - 1 - cycle
                data_planes = gather(planes, position)
                fresh = parity_planes(data_planes, full)
                err_mask = 0
                for fresh_plane, stored_plane in zip(fresh, stored[cycle]):
                    err_mask |= fresh_plane ^ stored_plane
                if not err_mask:
                    continue
                remaining = err_mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    b = low.bit_length() - 1
                    data = extract_word(data_planes, b)
                    stored_word = extract_word(stored[cycle], b)
                    status, corrected_data, positions = decode_slice(
                        data, stored_word)
                    detected_mask |= low
                    if collect_events:
                        bad_slices.setdefault(b, []).append(cycle)
                    if status is DecodeStatus.DETECTED:
                        uncorrectable_mask |= low
                        continue
                    for p in positions:
                        if p < width:
                            chain_index = indices[p]
                            if (corrected_data >> (k - 1 - p)) & 1:
                                corrected[chain_index][position] |= low
                            else:
                                corrected[chain_index][position] &= ~low
                            if collect_events:
                                corrections.setdefault(b, []).append(
                                    CorrectionEvent(block_index=block_index,
                                                    chain_index=chain_index,
                                                    cycle=cycle))
                            else:
                                corrections[b] = corrections.get(b, 0) + 1
                        elif p >= k:
                            # Stored parity bit flipped: state is fine.
                            pass
                        else:
                            # Correction lands on tied-off padding.
                            uncorrectable_mask |= low
            block_results[id(monitor)] = (detected_mask, uncorrectable_mask,
                                          corrections, bad_slices)

        if self._overlapping_correctors:
            flagged = 0
            for det, _unc, _corr, _bad in block_results.values():
                flagged |= det
            self._replay_overlapping(planes, length, flagged, corrected)
        return block_results

    def _decode_streams(self, corrected: List[List[int]],
                        full: int) -> Dict[int, int]:
        """Fold every stream block over the corrected planes."""
        stream_results: Dict[int, int] = {}
        for monitor in self._observing:
            if monitor.stored_signature is None:
                raise RuntimeError("no stored signature: encode first")
            state = monitor.fold(corrected, self.chain_length, full)
            stream_results[id(monitor)] = state.mismatch_mask(
                monitor.stored_signature)
        return stream_results

    # ------------------------------------------------------------------
    def _build_result(self, block_results: Dict[int, tuple],
                      stream_results: Dict[int, int],
                      corrected: List[List[int]],
                      batch_size: int) -> BatchDecodeResult:
        return assemble_batch_result(self._order,
                                     self._clean_report_tuple(),
                                     block_results, stream_results,
                                     corrected, batch_size)

    def _clean_report_tuple(self) -> Tuple[MonitorReport, ...]:
        if self._clean_reports is None:
            self._clean_reports = clean_report_tuple(self._order)
        return self._clean_reports

    # ------------------------------------------------------------------
    # Summary interface (columnar counters, no report/event objects)
    # ------------------------------------------------------------------
    def run_batch_summary(self, states: Sequence[int],
                          knowns: Sequence[int], flips, batch_size: int,
                          path: str = "auto"):
        """Run a whole batch through the plane path, returning columnar
        verdicts and skipping every report/event materialisation.

        The plane arithmetic is exactly that of
        :meth:`encode_pass_batch` / :meth:`decode_pass_batch`; only the
        bookkeeping differs (counts instead of event lists, ndarrays
        instead of reports).  Requires numpy (see
        :attr:`supports_summary`).  The bit-plane engine has a single
        summary implementation: ``path`` accepts ``"auto"``/``"dense"``
        and raises for the simd engine's ``"delta"`` fast path.
        """
        if path not in ("auto", "dense"):
            raise ValueError(
                f"engine 'batched' has no summary path {path!r}; the "
                f"sparse-delta fast path needs engine='simd'")
        from repro.engines.base import BatchOutcomeArrays
        from repro.engines.summary import (
            counts_array,
            mask_bools,
            planes_to_words,
            residual_counts_words,
        )
        from repro.faults.batch import PatternBatch, apply_batch_flips

        import numpy as np

        if isinstance(flips, PatternBatch):
            flips = flips.flips()
        full = (1 << batch_size) - 1
        length = self.chain_length
        planes = replicate_states(states, length, full)
        self.encode_pass_batch(planes, knowns, batch_size)
        injected = apply_batch_flips(planes, knowns, flips, batch_size)
        corrected = [list(chain_planes) for chain_planes in planes]
        block_results = self._decode_blocks(planes, corrected, full,
                                            collect_events=False)
        stream_results = self._decode_streams(corrected, full)

        detected_mask = 0
        uncorrectable_mask = 0
        corrections: Dict[int, int] = {}
        for det, unc, corr, _bad in block_results.values():
            detected_mask |= det
            uncorrectable_mask |= unc
            for b, count in corr.items():
                corrections[b] = corrections.get(b, 0) + count
        for mismatch in stream_results.values():
            detected_mask |= mismatch
            uncorrectable_mask |= mismatch

        residuals = residual_counts_words(
            states, knowns, planes_to_words(corrected, batch_size),
            batch_size)
        return BatchOutcomeArrays(
            injected=np.array(injected, dtype=np.int64),
            detected=mask_bools(detected_mask, batch_size),
            uncorrectable=mask_bools(uncorrectable_mask, batch_size),
            residual_errors=residuals,
            corrections_applied=counts_array(corrections, batch_size))

    # ------------------------------------------------------------------
    def _replay_overlapping(self, planes: Sequence[Sequence[int]],
                            length: int, flagged: int,
                            corrected: List[List[int]]) -> None:
        """Per-sequence feedback replay when correcting blocks share
        chains, through the single shared implementation of the
        last-block-wins rule
        (:func:`repro.fastpath.engine.replay_overlapping_feedback`).

        Only sequences in the ``flagged`` mask (some block detected an
        error) are replayed -- for clean sequences the replay is
        provably the identity, so the sparse-cost property holds even
        for overlapping configurations.  Flagged sequences' bits of
        ``corrected`` are overwritten in place with the replay result.
        """
        remaining_sequences = flagged
        while remaining_sequences:
            low = remaining_sequences & -remaining_sequences
            remaining_sequences ^= low
            b = low.bit_length() - 1
            states = replay_overlapping_feedback(
                self._correcting, states_from_planes(planes, b), length,
                lambda monitor, cycle: extract_word(monitor.stored[cycle],
                                                    b))
            for c, state in enumerate(states):
                chain_planes = corrected[c]
                for i in range(length):
                    if (state >> i) & 1:
                        chain_planes[i] |= low
                    else:
                        chain_planes[i] &= ~low

    # ------------------------------------------------------------------
    # Scalar interface (a batch of one, through the same plane path)
    # ------------------------------------------------------------------
    def encode_pass(self, design) -> int:
        states, knowns = pack_chains(design.chains)
        planes = replicate_states(states, self.chain_length, 1)
        return self.encode_pass_batch(planes, knowns, 1)

    def decode_pass(self, design) -> List[MonitorReport]:
        states, knowns = pack_chains(design.chains)
        planes = replicate_states(states, self.chain_length, 1)
        result = self.decode_pass_batch(planes, knowns, 1)
        corrected_states = states_from_planes(result.corrected, 0)
        write_back_chains(design.chains, states, knowns, corrected_states)
        return list(result.reports[0])


__all__ = ["BitPlaneBatchedEngine"]
