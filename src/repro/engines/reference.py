"""The bit-serial reference engine.

A thin adapter driving the per-flop models of
:mod:`repro.core.monitor` -- the faithful-to-hardware path every other
engine is property-tested against.  It keeps no state of its own: the
check bits live in the design's monitor blocks, exactly as before the
engine subsystem existed.
"""

from __future__ import annotations

from typing import List

from repro.core.monitor import MonitorReport
from repro.engines.base import EngineCapabilities, SimulationEngine


class ReferenceEngine(SimulationEngine):
    """Bit-serial per-flop simulation (the hardware-faithful baseline)."""

    capabilities = EngineCapabilities(batch=False)

    def encode_pass(self, design) -> int:
        return design.monitor_bank.encode_pass(design.chains)

    def decode_pass(self, design) -> List[MonitorReport]:
        return design.monitor_bank.decode_pass(design.chains)


__all__ = ["ReferenceEngine"]
