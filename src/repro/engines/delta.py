"""Sparse-delta superposition fast path for the columnar summary pass.

Every registered monitoring code is linear over GF(2), and the dense
summary pipeline of :mod:`repro.engines.simd` computes its stored
check words from the *same* replicated baseline it later decodes
against.  Superposition therefore collapses the whole pass: the
syndrome a decode slice observes is exactly the XOR of the **response
columns** of the cells flipped in that slice (the affine constants and
the baseline cancel in every fresh-versus-stored comparison), and a
CRC signature mismatches exactly when the XOR of the flipped cells'
signature columns is non-zero.  Nothing about the baseline needs to be
encoded, injected, decoded or compared at all -- a batch's verdicts
are a pure function of its flip coordinates:

* per (code, geometry) this module precomputes, **once per process**,
  the syndrome->verdict lookup tables and the per-cell column tables
  (one GF(2) matrix column per flippable bit position, exported by
  :meth:`repro.codes.plane.GF2Matrix.column_responses`);
* per batch, :func:`delta_summary` does O(#flips log #flips) sort/
  XOR-gather work -- independent of ``chains x chain_length x words``
  -- and reproduces the dense pass bit for bit: detected /
  uncorrectable verdicts, correction counts, correction *feedback*
  into the CRC streams (miscorrections included), and the state-domain
  residual comparator.

The dense pass stays the authority for structures superposition cannot
shortcut (correcting blocks sharing chains, whose last-block-wins
replay is order-dependent) and for dense batches, where folding whole
words is cheaper than sorting millions of coordinates -- the engine
falls back automatically above :data:`DELTA_CROSSOVER_FLIPS_PER_SEQ`.
Bit-identity across the crossover is property-tested in
``tests/engines/test_delta_path.py``.

The process-wide LUT cache here also serves the dense kernels
(:class:`repro.engines.simd._HammingKernel` /
``_SECDEDKernel``): sharded campaign workers rebuild
``ProtectedDesign`` -- and with it every engine -- per chunk, and
before this cache each rebuild re-derived the same syndrome->position
tables (the same treatment PR 5 gave the GF(2) matrices).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.codes.hamming import HammingCode
from repro.codes.parity import ParityCode
from repro.codes.plane import block_parity_matrix
from repro.codes.secded import SECDEDCode
from repro.engines.base import BatchOutcomeArrays

#: Auto-crossover between the sparse-delta and dense summary paths, in
#: mean flips per sequence.  The delta pass costs ~O(F log F) on F
#: total flips while the dense pass costs a geometry-proportional
#: constant, so the true break-even scales with the scan-cell count:
#: measured ~32 flips/seq on the paper's 32x32-FIFO configuration (80
#: chains x 13 cells, Hamming(7,4)+CRC-16, B=1024; single-error
#: batches run ~12x faster on delta) but only ~4 on toy geometries
#: (16 chains x 17 cells).  8.0 is the conservative fixed point:
#: every realistic campaign density (the paper's 1-4 flips/seq curves)
#: lands on delta on any geometry without ever losing more than a few
#: percent where dense would have won, and dense keeps the burst-storm
#: regime it is built for.  Batches at *exactly* the threshold take
#: the delta path (``<=``); ``engine.delta_crossover`` overrides per
#: instance.
DELTA_CROSSOVER_FLIPS_PER_SEQ = 8.0


# ----------------------------------------------------------------------
# Process-wide (code -> table) cache
# ----------------------------------------------------------------------
#: Shared verdict/column tables memoised on the code *parameters*,
#: like the GF(2) matrix cache of :mod:`repro.codes.plane`: only the
#: exact built-in code types are cached (a subclass may override the
#: defining equations), keys carry the type object itself, and the
#: cached ndarrays are frozen read-only so sharing one instance across
#: engines and processes is safe.
_TABLE_CACHE: Dict[tuple, np.ndarray] = {}


def _code_key(code, kind: str) -> Optional[tuple]:
    if type(code) in (HammingCode, SECDEDCode):
        return (kind, type(code), code.n, code.k)
    if type(code) is ParityCode:
        return (kind, type(code), code.k, code.odd)
    return None


def _shared_table(key: Optional[tuple],
                  build: Callable[[], np.ndarray]) -> np.ndarray:
    if key is not None:
        cached = _TABLE_CACHE.get(key)
        if cached is not None:
            return cached
    table = build()
    table.setflags(write=False)
    if key is not None:
        _TABLE_CACHE[key] = table
    return table


def correction_lut(code) -> np.ndarray:
    """The syndrome -> systematic-position correction LUT of a
    correcting block code, shared process-wide.

    Exactly the table the dense kernels index (``-1`` clean, ``-2``
    detected-uncorrectable, ``0..n-1`` the systematic position to
    flip): Hamming codes get the full ``1 << r`` table with the clean
    entry, SECDED codes the ``1 << base_r`` single-error table of the
    base code (the overall-parity case split happens outside the
    table).  The returned array is read-only; every engine instance of
    a same-parameter code shares one copy.
    """
    if isinstance(code, SECDEDCode):
        def build() -> np.ndarray:
            base_r = code.n - code.k - 1
            lut = np.full(1 << base_r, -2, dtype=np.int16)
            for position in range(1, code.n):
                lut[position] = code._position_to_systematic[position]
            return lut
    elif isinstance(code, HammingCode):
        def build() -> np.ndarray:
            lut = np.full(1 << code.r, -2, dtype=np.int16)
            lut[0] = -1
            for position in range(1, code.n + 1):
                lut[position] = code._position_to_systematic[position]
            return lut
    else:
        raise ValueError(
            f"{type(code).__name__} has no syndrome correction LUT")
    return _shared_table(_code_key(code, "correction"), build)


def verdict_lut(code) -> np.ndarray:
    """The *extended-syndrome* verdict LUT of the delta path.

    Indexed by the slice's whole observable mismatch (for SECDED the
    base syndrome plus the overall-parity mismatch as the top bit),
    the entry is the verdict position of the dense kernels: ``-1``
    clean, ``-2`` detected-uncorrectable, ``0..n-1`` the systematic
    position the decoder would flip (``>= k`` meaning a check-bit
    position: detected, corrected outside the data word, no data
    action).  For Hamming the extended syndrome *is* the syndrome, so
    this is :func:`correction_lut` itself; for SECDED the four case
    splits of the dense kernel become table entries; a parity bit has
    a one-bit syndrome.
    """
    if isinstance(code, SECDEDCode):
        def build() -> np.ndarray:
            base_r = code.n - code.k - 1
            base = correction_lut(code)
            lut = np.full(1 << (base_r + 1), -2, dtype=np.int16)
            lut[0] = -1
            # Overall-parity mismatch set: a single error, either the
            # overall bit itself (syndrome 0) or the base LUT's call.
            overall = 1 << base_r
            lut[overall:] = base
            lut[overall] = code.n - 1
            return lut
    elif isinstance(code, HammingCode):
        return correction_lut(code)
    elif isinstance(code, ParityCode):
        def build() -> np.ndarray:
            return np.array([-1, -2], dtype=np.int16)
    else:
        raise ValueError(
            f"{type(code).__name__} has no structured GF(2) form; the "
            f"delta path only serves the dense kernels' code families")
    return _shared_table(_code_key(code, "verdict"), build)


def syndrome_columns(code) -> np.ndarray:
    """Per data-bit extended-syndrome response columns, ``(k,)`` uint32.

    Entry ``i`` is the extended syndrome a *single* flip of systematic
    data bit ``i`` produces -- one column of the code's GF(2) parity
    matrix (:meth:`~repro.codes.plane.GF2Matrix.column_responses`),
    with SECDED's overall-parity mismatch packed as the top bit (every
    data flip toggles the received overall parity, regardless of the
    expanded encode row).  Any slice's extended syndrome is the XOR of
    its flipped bits' columns.
    """
    if isinstance(code, SECDEDCode):
        def build() -> np.ndarray:
            base_r = code.n - code.k - 1
            base_mask = (1 << base_r) - 1
            overall = 1 << base_r
            responses = block_parity_matrix(code).column_responses()
            return np.array([(column & base_mask) | overall
                             for column in responses], dtype=np.uint32)
    elif isinstance(code, (HammingCode, ParityCode)):
        def build() -> np.ndarray:
            responses = block_parity_matrix(code).column_responses()
            return np.array(responses, dtype=np.uint32)
    else:
        raise ValueError(
            f"{type(code).__name__} has no structured GF(2) form; the "
            f"delta path only serves the dense kernels' code families")
    return _shared_table(_code_key(code, "columns"), build)


# ----------------------------------------------------------------------
# The per-(bank, geometry) plan
# ----------------------------------------------------------------------
class DeltaPlan:
    """Precomputed delta-path structure of one engine's monitor bank.

    Built once per engine instance from the dense engine's own monitor
    wrappers (duck-typed: code groups with ``kernel``/``monitors``/
    ``gather_idx``, stream monitors with ``rows_flat``); per batch only
    :func:`delta_summary` runs.  ``supported`` is ``False`` -- with
    ``reason`` saying why -- for structures superposition cannot
    shortcut; the engine then serves every batch on the dense path.
    """

    __slots__ = ("supported", "reason", "num_chains", "chain_length",
                 "num_monitors", "mon_width", "mon_k", "mon_group",
                 "mon_chain", "chain_monitor", "chain_col", "luts",
                 "obs_cols")

    def __init__(self) -> None:
        self.supported = False
        self.reason: Optional[str] = None


def _unsupported(reason: str) -> DeltaPlan:
    plan = DeltaPlan()
    plan.reason = reason
    return plan


def build_plan(groups: Sequence[Any], observing: Sequence[Any],
               overlapping_correctors: bool, num_chains: int,
               chain_length: int, xp: Any = None) -> DeltaPlan:
    """Precompute the delta path's gather tables for one monitor bank.

    ``groups`` / ``observing`` are the dense engine's code groups and
    stream monitors (see :class:`DeltaPlan`); ``xp`` is the injected
    array namespace (default numpy) the per-batch arrays should live
    in -- the shared LUT/column tables are built on the host and
    converted once here.
    """
    xp = np if xp is None else xp
    if overlapping_correctors:
        return _unsupported(
            "correcting blocks share scan chains; their last-block-wins "
            "replay is order-dependent, which superposition cannot "
            "express")
    if not hasattr(getattr(xp, "bitwise_xor", None), "reduceat"):
        return _unsupported(
            f"array backend {getattr(xp, '__name__', xp)!r} provides no "
            f"ufunc.reduceat for the per-slice XOR folds")

    chain_monitor = np.full(num_chains, -1, dtype=np.int64)
    chain_col = np.zeros(num_chains, dtype=np.uint32)
    mon_width: List[int] = []
    mon_k: List[int] = []
    mon_group: List[int] = []
    mon_chain_rows: List[np.ndarray] = []
    luts: List[Any] = []
    for g, group in enumerate(groups):
        code = group.kernel.code
        try:
            luts.append(xp.asarray(verdict_lut(code)))
            columns = syndrome_columns(code)
        except ValueError as exc:
            return _unsupported(str(exc))
        for local, monitor in enumerate(group.monitors):
            index = len(mon_width)
            mon_width.append(monitor.width)
            mon_k.append(group.kernel.k)
            mon_group.append(g)
            mon_chain_rows.append(np.asarray(group.gather_idx[local],
                                             dtype=np.int64))
            for slot, chain in enumerate(monitor.chain_idx_arr.tolist()):
                if chain_monitor[chain] != -1:
                    return _unsupported(
                        f"chain {chain} is covered by more than one "
                        f"correcting block")
                chain_monitor[chain] = index
                chain_col[chain] = columns[slot]

    plan = DeltaPlan()
    plan.supported = True
    plan.num_chains = num_chains
    plan.chain_length = chain_length
    plan.num_monitors = len(mon_width)
    plan.mon_width = xp.asarray(np.array(mon_width, dtype=np.int16))
    plan.mon_k = xp.asarray(np.array(mon_k, dtype=np.int16))
    plan.mon_group = xp.asarray(np.array(mon_group, dtype=np.int64))
    kmax = max((row.size for row in mon_chain_rows), default=0)
    mon_chain = np.zeros((len(mon_chain_rows), kmax), dtype=np.int64)
    for index, row in enumerate(mon_chain_rows):
        mon_chain[index, :row.size] = row
    plan.mon_chain = xp.asarray(mon_chain)
    plan.chain_monitor = xp.asarray(chain_monitor)
    plan.chain_col = xp.asarray(chain_col)
    plan.luts = tuple(luts)

    obs_cols: List[Any] = []
    for monitor in observing:
        column = np.zeros(num_chains * chain_length, dtype=np.uint64)
        width = len(monitor.rows_flat)
        for j, row in enumerate(monitor.rows_flat):
            if row.size:
                column[np.asarray(row, dtype=np.int64)] |= \
                    np.uint64(1 << (width - 1 - j))
        obs_cols.append(xp.asarray(column))
    plan.obs_cols = tuple(obs_cols)
    return plan


# ----------------------------------------------------------------------
# The per-batch pass
# ----------------------------------------------------------------------
def _run_starts(keys: Any, xp: Any) -> Any:
    """Start indices of the equal-value runs of a sorted key array."""
    head = xp.ones(1, dtype=bool)
    return xp.flatnonzero(xp.concatenate((head, keys[1:] != keys[:-1])))


def delta_summary(plan: DeltaPlan, known_bits: Any, seqs: Any, cells: Any,
                  injected: Any, batch_size: int,
                  xp: Any = None) -> BatchOutcomeArrays:
    """One batch's columnar verdicts from its flip coordinates alone.

    ``seqs``/``cells`` are the known-gated, per-sequence-deduplicated
    flip coordinates (``cells = chain * chain_length + position``, any
    order) and ``injected`` the per-sequence effective-flip counts --
    the contract of :func:`repro.faults.batch.pattern_batch_coords`.
    ``known_bits`` is the ``(C, L)`` bool known matrix; the baseline
    state itself never enters (it cancels by superposition).  Returns
    arrays bit-identical to the dense summary pass.
    """
    xp = np if xp is None else xp
    length = plan.chain_length
    num_cells = plan.num_chains * length
    detected = xp.zeros(batch_size, dtype=bool)
    uncorrectable = xp.zeros(batch_size, dtype=bool)
    corrections = xp.zeros(batch_size, dtype=np.int64)
    unknown_positions = int(known_bits.size) - int(known_bits.sum())
    residuals = xp.full(batch_size, unknown_positions, dtype=np.int64)

    # -- block verdicts: per (sequence, decode slice) syndrome XOR ------
    fix_seqs = fix_cells = None
    if len(cells) and plan.num_monitors:
        chains = cells // length
        monitor = plan.chain_monitor[chains]
        covered = monitor >= 0
        if covered.any():
            c_seq = seqs[covered]
            c_mon = monitor[covered]
            c_pos = cells[covered] - chains[covered] * length
            c_col = plan.chain_col[chains[covered]]
            key = (c_seq * plan.num_monitors + c_mon) * length + c_pos
            order = xp.argsort(key, kind="stable")
            sorted_key = key[order]
            starts = _run_starts(sorted_key, xp)
            syndrome = xp.bitwise_xor.reduceat(c_col[order], starts)
            slice_key = sorted_key[starts]
            err = syndrome != 0
            if err.any():
                e_syn = syndrome[err]
                e_key = slice_key[err]
                e_seq = e_key // (plan.num_monitors * length)
                remainder = e_key - e_seq * (plan.num_monitors * length)
                e_mon = remainder // length
                e_pos = remainder - e_mon * length
                detected[e_seq] = True
                verdict = xp.empty(e_syn.shape, dtype=np.int16)
                group_of = plan.mon_group[e_mon]
                for g, lut in enumerate(plan.luts):
                    in_group = group_of == g
                    if in_group.any():
                        verdict[in_group] = lut[e_syn[in_group]]
                widths = plan.mon_width[e_mon]
                ks = plan.mon_k[e_mon]
                uncorr = ((verdict == -2)
                          | ((verdict >= widths) & (verdict < ks)))
                uncorrectable[e_seq[uncorr]] = True
                fix = (verdict >= 0) & (verdict < widths)
                if fix.any():
                    fix_seqs = e_seq[fix]
                    corrections += xp.bincount(fix_seqs,
                                               minlength=batch_size)
                    fix_chain = plan.mon_chain[
                        e_mon[fix], verdict[fix].astype(np.int64)]
                    fix_cells = fix_chain * length + e_pos[fix]

    # -- net state delta: flips XOR correction feedback -----------------
    if fix_cells is not None:
        all_seqs = xp.concatenate((seqs, fix_seqs))
        all_cells = xp.concatenate((cells, fix_cells))
    else:
        all_seqs, all_cells = seqs, cells
    if len(all_cells):
        okey = all_seqs * num_cells + all_cells
        unique_keys, multiplicity = xp.unique(okey, return_counts=True)
        odd = (multiplicity & 1).astype(bool)
        if odd.any():
            d_key = unique_keys[odd]
            d_seq = d_key // num_cells
            d_cell = d_key - d_seq * num_cells
            # Residual comparator: known delta cells differ from the
            # pre-sleep state; unknown cells are already counted in the
            # per-sequence constant (the decode pass drives them).
            known_cells = known_bits.reshape(-1)[d_cell]
            if known_cells.any():
                residuals += xp.bincount(d_seq[known_cells],
                                         minlength=batch_size)
            # Stream verdicts: a signature mismatches iff the XOR of
            # the delta cells' signature columns is non-zero
            # (correction feedback -- miscorrections included -- is in
            # the delta by construction).
            if plan.obs_cols:
                run_starts = _run_starts(d_seq, xp)
                run_seqs = d_seq[run_starts]
                for sig_col in plan.obs_cols:
                    signature = xp.bitwise_xor.reduceat(sig_col[d_cell],
                                                        run_starts)
                    mismatch = run_seqs[signature != 0]
                    if len(mismatch):
                        detected[mismatch] = True
                        uncorrectable[mismatch] = True

    return BatchOutcomeArrays(
        injected=injected.astype(np.int64),
        detected=detected,
        uncorrectable=uncorrectable,
        residual_errors=residuals,
        corrections_applied=corrections)


__all__ = [
    "DELTA_CROSSOVER_FLIPS_PER_SEQ",
    "DeltaPlan",
    "build_plan",
    "correction_lut",
    "delta_summary",
    "syndrome_columns",
    "verdict_lut",
]
